"""Shared fixtures: small loop kernels used across the test suite."""

from __future__ import annotations

import pytest

from repro.ir import LoopBuilder
from repro.machine import r8000, single_issue, two_wide


def pytest_configure(config):
    # Registered in pyproject.toml too; repeated here so the marker exists
    # even when the suite runs without the project's ini options.
    config.addinivalue_line(
        "markers",
        "fuzz: fuzzing-engine sessions (bounded; run with -m fuzz)",
    )


@pytest.fixture(scope="session", autouse=True)
def _verify_by_default():
    """Cross-check every schedule the suite produces with repro.verify.

    Any pipelined loop a test builds through the drivers is independently
    verified; an ERROR diagnostic fails the test with VerificationError.
    """
    from repro.verify import set_default_verify

    set_default_verify(True)
    yield
    set_default_verify(False)


@pytest.fixture
def machine():
    return r8000()


@pytest.fixture
def tiny_machine():
    return single_issue()


@pytest.fixture
def mid_machine():
    return two_wide()


def build_sdot(machine, trip_count=1000):
    """Single-precision dot product: the alvinn-style memory-bound kernel."""
    b = LoopBuilder("sdot", machine=machine, trip_count=trip_count)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=4, width=4)
    y = b.load("y", offset=0, stride=4, width=4)
    t = b.fmul(x, y)
    s.close(b.fadd(t, s.use()))
    b.live_out_value(s)
    return b.build()


def build_daxpy(machine, trip_count=100):
    """y[i] = a * x[i] + y[i] — no recurrence, one store."""
    b = LoopBuilder("daxpy", machine=machine, trip_count=trip_count)
    a = b.invariant("a")
    x = b.load("x", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    r = b.fmadd(a, x, y)
    b.store("y", r, offset=0, stride=8)
    return b.build()


def build_first_diff(machine, trip_count=100):
    """x[i] = y[i+1] - y[i] (Livermore kernel 12 shape): shared stream."""
    b = LoopBuilder("first_diff", machine=machine, trip_count=trip_count)
    y1 = b.load("y", offset=8, stride=8)
    y0 = b.load("y", offset=0, stride=8)
    d = b.fsub(y1, y0)
    b.store("x", d, offset=0, stride=8)
    return b.build()


def build_recurrence_chain(machine, trip_count=100):
    """x[i] = z[i] * (y[i] - x[i-1]): a tight first-order recurrence."""
    b = LoopBuilder("rec1", machine=machine, trip_count=trip_count)
    x = b.recurrence("x")
    z = b.load("z", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    d = b.fsub(y, x.use())
    x.close(b.fmul(z, d))
    b.store("x_arr", x, offset=0, stride=8)
    b.live_out_value(x)
    return b.build()


def build_memory_heavy(machine, trip_count=100, n_streams=6):
    """Many independent even-aligned double streams: bank-pairing rich."""
    b = LoopBuilder("memheavy", machine=machine, trip_count=trip_count)
    acc = b.recurrence("acc")
    total = None
    for k in range(n_streams):
        v = b.load("arr", offset=16 * k, stride=16 * n_streams // 2)
        total = v if total is None else b.fadd(total, v)
    acc.close(b.fadd(total, acc.use(distance=2)))
    b.live_out_value(acc)
    return b.build()


def build_divider(machine, trip_count=100):
    """Loop with an unpipelined divide: exercises folding and blocking."""
    b = LoopBuilder("divloop", machine=machine, trip_count=trip_count)
    x = b.load("x", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    q = b.fdiv(x, y)
    r = b.fadd(q, b.invariant("c"))
    b.store("out", r, offset=0, stride=8)
    return b.build()


@pytest.fixture
def sdot(machine):
    return build_sdot(machine)


@pytest.fixture
def daxpy(machine):
    return build_daxpy(machine)


@pytest.fixture
def first_diff(machine):
    return build_first_diff(machine)


@pytest.fixture
def rec1(machine):
    return build_recurrence_chain(machine)


@pytest.fixture
def memheavy(machine):
    return build_memory_heavy(machine)


@pytest.fixture
def divloop(machine):
    return build_divider(machine)
