"""Driver option combinations and bank-repair behaviour."""

import pytest

from repro.core import BnBConfig, PipelinerOptions, pipeline_loop
from repro.core.driver import _residual_risk
from repro.core.membank import BankPairer
from repro.core.priorities import production_orders
from repro.ir import LoopBuilder
from repro.machine import r8000
from repro.sim import DataLayout, run_pipelined, run_sequential

from .conftest import build_memory_heavy, build_sdot


class TestPairingModes:
    def test_soft_pairing_produces_valid_code(self, machine, memheavy):
        res = pipeline_loop(
            memheavy, machine, PipelinerOptions(strict_pairing=False)
        )
        assert res.success
        res.schedule.validate()
        layout = DataLayout(res.loop, trip_count=30)
        assert run_sequential(res.loop, layout, 30).matches(
            run_pipelined(res.schedule, res.allocation, layout, 30)
        )

    def test_bank_repair_labels_producer(self, machine):
        # A loop with guaranteed pairable streams: repair should engage.
        b = LoopBuilder("pairable", machine=machine, trip_count=200)
        acc = b.recurrence("acc")
        t = None
        for k in range(4):
            v = b.load("arr", offset=8 * k, stride=32)
            t = v if t is None else b.fadd(t, v)
        acc.close(b.fadd(t, acc.use(distance=2)))
        loop = b.build()
        res = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
        assert res.success
        assert res.schedule.producer.startswith("sgi/")

    def test_residual_risk_zero_for_opposite_pairs(self, machine):
        b = LoopBuilder("pairable", machine=machine)
        v0 = b.load("arr", offset=0, stride=16)
        v1 = b.load("arr", offset=8, stride=16)
        b.store("o", b.fadd(v0, v1), offset=0, stride=8)
        loop = b.build()
        res = pipeline_loop(loop, machine)
        order = production_orders(loop, machine)[res.order_name]
        pairer = BankPairer(res.loop, res.ii, order)
        risk = _residual_risk(res.schedule, pairer)
        assert risk >= 0  # well-defined; zero when fully paired

    def test_membank_never_hurts_ii(self, machine):
        for builder in (build_sdot, build_memory_heavy):
            loop = builder(machine)
            on = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
            off = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=False))
            assert on.ii == off.ii, loop.name


class TestBudgets:
    def test_tiny_backtrack_budget_still_handles_simple_loops(self, machine, sdot):
        res = pipeline_loop(
            sdot, machine, PipelinerOptions(bnb=BnBConfig(max_backtracks=1))
        )
        assert res.success

    def test_order_subset(self, machine, sdot):
        res = pipeline_loop(sdot, machine, PipelinerOptions(orders=("RHMS", "HMS")))
        assert res.success
        assert res.order_name in ("RHMS", "HMS")

    def test_ii_cap_factor(self, machine):
        # With a cap factor of 1, only MinII may be tried.
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine, PipelinerOptions(ii_cap_factor=1))
        assert res.success
        assert res.ii == res.min_ii
