"""Property tests: randomized corruptions never escape the verifiers.

Hypothesis picks *which* artifact element to corrupt; the properties assert
the matching rule fires for every choice — not just the single seeded case
the example-based tests cover.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import pipeline_loop
from repro.machine import r8000, single_issue
from repro.verify import check_allocation, check_schedule, lint_ddg
from repro.verify.regcheck import _lifetimes

from .conftest import build_daxpy, build_memory_heavy, build_sdot

pytestmark = pytest.mark.verify

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _pipeline(build, machine):
    res = pipeline_loop(build(machine), machine, verify=False)
    assert res.success
    return res


class TestCorruptedOmega:
    @given(arc_index=st.integers(min_value=0, max_value=200), bad=st.integers(-8, -1))
    @_SETTINGS
    def test_negative_omega_always_flagged(self, arc_index, bad):
        loop = build_sdot(r8000())
        arc = loop.ddg.arcs[arc_index % len(loop.ddg.arcs)]
        object.__setattr__(arc, "omega", bad)
        report = lint_ddg(loop)
        assert "DDG003" in report.rules_hit()


class TestCorruptedSchedule:
    @given(pick=st.integers(min_value=0, max_value=30))
    @_SETTINGS
    def test_slot_collision_always_flagged(self, pick):
        """On a single-issue machine any two ops sharing a modulo slot
        oversubscribe the issue resource, whichever pair is chosen."""
        machine = single_issue()
        res = _pipeline(build_daxpy, machine)
        loop, sched = res.loop, res.schedule
        ops = sorted(sched.times)
        a = ops[pick % len(ops)]
        b = ops[(pick // len(ops) + 1 + a) % len(ops)]
        if a == b:
            b = ops[(ops.index(a) + 1) % len(ops)]
        times = dict(sched.times)
        times[a] = times[b]
        report = check_schedule(loop, machine, sched.ii, times, audit_min_ii=False)
        assert "SCHED002" in report.rules_hit()

    @given(delta=st.integers(min_value=1, max_value=6), pick=st.integers(0, 30))
    @_SETTINGS
    def test_pulled_forward_consumer_always_flagged(self, delta, pick):
        """Moving any consumer earlier than its producer's latency allows
        breaks the dependence constraint (SCHED001)."""
        machine = r8000()
        res = _pipeline(build_sdot, machine)
        loop, sched = res.loop, res.schedule
        arcs = [a for a in loop.ddg.arcs if a.src != a.dst and a.omega == 0]
        arc = arcs[pick % len(arcs)]
        times = dict(sched.times)
        times[arc.dst] = times[arc.src] + arc.latency - delta
        report = check_schedule(loop, machine, sched.ii, times, audit_min_ii=False)
        assert "SCHED001" in report.rules_hit()


class TestCorruptedColoring:
    @given(pick=st.integers(min_value=0, max_value=60))
    @_SETTINGS
    def test_interfering_reassignment_always_flagged(self, pick):
        """Reassigning any live range to the colour of a range it overlaps
        is caught, whichever overlapping pair hypothesis chooses.

        (Swapping two registers wholesale is *legal* renaming — the
        property must introduce a genuine interference, not a swap.)
        """
        machine = r8000()
        res = _pipeline(build_memory_heavy, machine)
        loop, sched, alloc = res.loop, res.schedule, res.allocation
        ii, times = sched.ii, sched.times
        period = alloc.kmin * ii

        # Rebuild intervals the same way the checker does, then enumerate
        # genuinely overlapping, differently coloured pairs.
        lifetimes = _lifetimes(loop, ii, times)
        defs = {d: op.index for op in loop.ops for d in op.dests}
        spans = {}
        for rng, color in alloc.fp_assignment.items():
            value = rng.rsplit("@", 1)[0]
            if rng.endswith("@in"):
                spans[rng] = (0, period)
            elif value in lifetimes:
                r = int(rng.rsplit("@", 1)[1])
                spans[rng] = (
                    (times[defs[value]] + r * ii) % period,
                    lifetimes[value],
                )

        def overlap(x, y):
            (sx, lx), (sy, ly) = spans[x], spans[y]
            if lx >= period or ly >= period:
                return True
            return ((sy - sx) % period) < lx or ((sx - sy) % period) < ly

        names = sorted(spans)
        pairs = [
            (x, y)
            for i, x in enumerate(names)
            for y in names[i + 1 :]
            if alloc.fp_assignment[x] != alloc.fp_assignment[y] and overlap(x, y)
        ]
        assert pairs, "kernel has no overlapping fp ranges to corrupt"
        victim, donor = pairs[pick % len(pairs)]
        corrupted = dict(alloc.fp_assignment)
        corrupted[victim] = corrupted[donor]

        class _Tampered:
            success = True
            kmin = alloc.kmin
            fp_assignment = corrupted
            int_assignment = alloc.int_assignment

        report = check_allocation(loop, machine, ii, times, _Tampered())
        assert "REG002" in report.rules_hit()
