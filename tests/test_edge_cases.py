"""Edge cases and cross-module consistency checks."""

import pytest

from repro.core import (
    BnBConfig,
    PipelinerOptions,
    Schedule,
    min_ii,
    modulo_schedule_bnb,
    order_by_name,
    pipeline_loop,
)
from repro.core.spill import insert_spills
from repro.ir import DDG, Dependence, DepKind, Loop, LoopBuilder, MemRef, OpClass, Operation
from repro.machine import r8000, single_issue
from repro.sim import DataLayout, run_pipelined, run_sequential

from .conftest import build_sdot


class TestLoopContainer:
    def test_index_mismatch_rejected(self, machine):
        op = Operation(index=5, opcode="fadd", opclass=OpClass.FADD, dests=("t",), srcs=("a", "b"))
        with pytest.raises(ValueError, match="index"):
            Loop(name="bad", ops=[op], ddg=DDG(1, []), live_in={"a", "b"})

    def test_double_definition_rejected(self, machine):
        ops = [
            Operation(index=0, opcode="fadd", opclass=OpClass.FADD, dests=("t",), srcs=("a", "a")),
            Operation(index=1, opcode="fmul", opclass=OpClass.FMUL, dests=("t",), srcs=("a", "a")),
        ]
        loop = Loop(name="dup", ops=ops, ddg=DDG(2, []), live_in={"a"})
        with pytest.raises(ValueError, match="twice"):
            loop.defs_of()

    def test_undefined_use_rejected(self):
        ops = [Operation(index=0, opcode="fadd", opclass=OpClass.FADD, dests=("t",), srcs=("ghost",))]
        loop = Loop(name="ghost", ops=ops, ddg=DDG(1, []))
        with pytest.raises(ValueError, match="undefined"):
            loop.check_well_formed()

    def test_use_without_flow_arc_rejected(self):
        ops = [
            Operation(index=0, opcode="fadd", opclass=OpClass.FADD, dests=("t",), srcs=("c",)),
            Operation(index=1, opcode="fmul", opclass=OpClass.FMUL, dests=("u",), srcs=("t",)),
        ]
        loop = Loop(name="noarc", ops=ops, ddg=DDG(2, []), live_in={"c"})
        with pytest.raises(ValueError, match="no flow arc"):
            loop.check_well_formed()

    def test_str_includes_every_op(self, sdot):
        text = str(sdot)
        assert text.count("\n") >= sdot.n_ops
        assert "arcs:" in text


class TestScheduleIntrospection:
    def test_ops_at_slot_partitions_ops(self, machine, sdot):
        res = pipeline_loop(sdot, machine)
        sched = res.schedule
        collected = sorted(
            op for slot in range(sched.ii) for op in sched.ops_at_slot(slot)
        )
        assert collected == list(range(sdot.n_ops))

    def test_str_mentions_all_slots(self, machine, sdot):
        res = pipeline_loop(sdot, machine)
        text = str(res.schedule)
        for slot in range(res.ii):
            assert f"slot {slot:3d}" in text

    def test_span_and_stages_consistent(self, machine, sdot):
        res = pipeline_loop(sdot, machine)
        sched = res.schedule
        assert (sched.n_stages - 1) * sched.ii < sched.span <= sched.n_stages * sched.ii


class TestBnBEdges:
    def test_single_op_loop(self, machine):
        b = LoopBuilder("one", machine=machine)
        b.load("x", offset=0, stride=8)
        loop = b.build()
        res = pipeline_loop(loop, machine)
        assert res.success
        assert res.ii == 1

    def test_all_invariant_compute(self, machine):
        b = LoopBuilder("inv", machine=machine)
        c = b.invariant("c")
        b.store("o", b.fadd(c, c), offset=0, stride=8)
        loop = b.build()
        res = pipeline_loop(loop, machine)
        assert res.success
        res.schedule.validate()

    def test_rule3_disabled_still_schedules_simple(self, machine, sdot):
        order = order_by_name(sdot, machine, "FDMS")
        res = modulo_schedule_bnb(
            sdot, machine, min_ii(sdot, machine), order, BnBConfig(use_rule3=False)
        )
        assert res.success

    def test_store_only_loop(self, machine):
        b = LoopBuilder("stores", machine=machine)
        c = b.invariant("c")
        b.store("a", c, offset=0, stride=8)
        b.store("b", c, offset=0, stride=8)
        b.store("d", c, offset=0, stride=8)
        loop = b.build()
        res = pipeline_loop(loop, machine)
        assert res.success
        assert res.ii == 2  # 3 stores over 2 ports


class TestSingleIssueMachine:
    def test_everything_serialises(self):
        machine = single_issue()
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        assert res.success
        # One op per cycle: II is at least n_ops.
        assert res.ii >= loop.n_ops
        res.schedule.validate()

    def test_functional_on_single_issue(self):
        machine = single_issue()
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        layout = DataLayout(res.loop, trip_count=20)
        assert run_sequential(res.loop, layout, 20).matches(
            run_pipelined(res.schedule, res.allocation, layout, 20)
        )


class TestSpillEdges:
    def test_invariant_spill_restores_only(self, machine):
        b = LoopBuilder("inv", machine=machine)
        c = b.invariant("c")
        x = b.load("x", offset=0, stride=8)
        b.store("o", b.fadd(x, c), offset=0, stride=8)
        loop = b.build()
        spilled = insert_spills(loop, machine, ["c"])
        spilled.check_well_formed()
        # One restore load, no spill store.
        assert sum(1 for op in spilled.ops if op.opcode == "load.spill") == 1
        assert not [op for op in spilled.ops if op.opcode == "store.spill"]
        assert "c" not in spilled.live_in

    def test_invariant_spill_functional(self, machine):
        b = LoopBuilder("invf", machine=machine, trip_count=10)
        c = b.invariant("c")
        x = b.load("x", offset=0, stride=8)
        b.store("o", b.fadd(x, c), offset=0, stride=8)
        loop = b.build()
        spilled = insert_spills(loop, machine, ["c"])
        res = pipeline_loop(spilled, machine)
        assert res.success
        layout = DataLayout(res.loop, trip_count=10)
        # The reload must return the invariant's live-in value...
        slot_base = layout.bases["__spill_c"]
        assert layout.initial_value(slot_base) == layout.live_in_value("c")
        # ...and the pipelined spilled code must match sequential semantics.
        seq = run_sequential(res.loop, layout, 10)
        pipe = run_pipelined(res.schedule, res.allocation, layout, 10)
        assert seq.matches(pipe)

    def test_spilled_value_spill_array_is_per_iteration(self, machine, sdot):
        defs = sdot.defs_of()
        target = next(v for v in defs if not any(
            a.omega > 0 and a.value == v for a in sdot.ddg.arcs
        ))
        spilled = insert_spills(sdot, machine, [target])
        store = next(op for op in spilled.ops if op.opcode == "store.spill")
        assert store.mem.stride == 8  # element per iteration

    def test_spill_slot_parities_alternate(self, machine):
        b = LoopBuilder("two", machine=machine)
        x = b.load("x", offset=0, stride=8)
        y = b.load("y", offset=0, stride=8)
        t1 = b.fadd(x, b.invariant("c"))
        t2 = b.fadd(y, b.invariant("c"))
        b.store("o", b.fadd(t1, t2), offset=0, stride=8)
        loop = b.build()
        spilled = insert_spills(loop, machine, [t1.name, t2.name])
        parities = {
            base: p for base, p in spilled.known_parity.items() if base.startswith("__spill_")
        }
        assert sorted(parities.values()) == [0, 1]


class TestMemRefGeometry:
    def test_negative_stride_addresses(self):
        m = MemRef(base="w", offset=0, stride=-8)
        assert m.address(1000, 3) == 976

    def test_dependence_requires_nonnegative_omega(self):
        with pytest.raises(ValueError):
            Dependence(src=0, dst=1, latency=1, omega=-2)

    def test_min_distance_of_mem_kind(self):
        arc = Dependence(src=0, dst=1, latency=1, omega=2, kind=DepKind.MEM)
        assert arc.min_distance(5) == -9
