"""Tests for the diagram and Graphviz export tooling."""

import pytest

from repro.core import pipeline_loop
from repro.ir.dot import to_dot
from repro.pipeline.diagram import lifetime_view, reservation_view, stage_view

from .conftest import build_divider, build_sdot


@pytest.fixture
def pipelined(machine, sdot):
    res = pipeline_loop(sdot, machine)
    assert res.success
    return res


class TestReservationView:
    def test_mentions_every_op(self, machine, pipelined):
        text = reservation_view(pipelined.schedule)
        for op in pipelined.loop.ops:
            assert f"{op.opcode}#{op.index}" in text

    def test_one_row_per_slot(self, machine, pipelined):
        text = reservation_view(pipelined.schedule)
        body = text.splitlines()[3:]
        assert len(body) == pipelined.ii

    def test_unpipelined_held_cycles_marked(self, machine, divloop):
        res = pipeline_loop(divloop, machine)
        text = reservation_view(res.schedule)
        assert "(fdiv#" in text  # held divider cycles in parentheses


class TestStageView:
    def test_grid_covers_all_ops(self, machine, pipelined):
        text = stage_view(pipelined.schedule)
        for op in pipelined.loop.ops:
            assert f"{op.opcode}#{op.index}" in text
        assert f"{pipelined.schedule.n_stages} overlapped" in text


class TestLifetimeView:
    def test_every_range_rendered(self, machine, pipelined):
        from repro.regalloc import rename_kernel

        renamed = rename_kernel(pipelined.schedule)
        text = lifetime_view(pipelined.schedule)
        for lr in renamed.ranges:
            assert lr.name in text
        # Bars are exactly period wide.
        bar_line = next(l for l in text.splitlines() if "|" in l)
        bar = bar_line.split("|")[1]
        assert len(bar) == renamed.period


class TestDotExport:
    def test_nodes_and_edges_present(self, machine, sdot):
        dot = to_dot(sdot)
        assert dot.startswith("digraph")
        for op in sdot.ops:
            assert f"n{op.index} [" in dot
        assert "->" in dot
        assert "w1" in dot  # the carried reduction arc annotation

    def test_schedule_annotations(self, machine, pipelined):
        dot = to_dot(pipelined.loop, schedule=pipelined.schedule)
        assert "t=" in dot
        assert "rank=same" in dot

    def test_memory_ops_highlighted(self, machine, sdot):
        dot = to_dot(sdot)
        assert "fillcolor" in dot

    def test_escaping(self, machine, sdot):
        dot = to_dot(sdot, name='weird"name')
        assert '\\"' in dot
