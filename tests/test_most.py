"""Tests for the MOST ILP formulation and optimal scheduler."""

import pytest

from repro.core import Schedule, min_ii, pipeline_loop
from repro.ilp import SolverOptions, Status, solve_milp
from repro.ir import LoopBuilder
from repro.machine import r8000, two_wide
from repro.most import MostOptions, build_formulation, most_pipeline_loop
from repro.most.formulation import _time_windows
from repro.sim import DataLayout, run_pipelined, run_sequential

from .conftest import build_daxpy, build_first_diff, build_recurrence_chain, build_sdot

FAST = MostOptions(time_limit=20.0, engine="scipy", priority_branching=False)


def fast_options(**kw):
    base = dict(time_limit=20.0, engine="scipy", priority_branching=False)
    base.update(kw)
    return MostOptions(**base)


class TestTimeWindows:
    def test_chain_windows(self, machine):
        loop = build_sdot(machine)
        windows = _time_windows(loop, ii=4, horizon=20)
        # Loads before fmul before fadd.
        assert windows[0][0] == 0
        assert windows[2][0] >= 6  # fmul after load latency
        assert windows[3][0] >= 10

    def test_collapsed_window_returns_none(self, machine):
        loop = build_sdot(machine)
        assert _time_windows(loop, ii=4, horizon=8) is None  # too short


class TestFormulation:
    def test_solution_decodes_to_valid_schedule(self, machine):
        loop = build_sdot(machine)
        mii = min_ii(loop, machine)
        f = build_formulation(loop, machine, mii)
        result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        assert result.status is Status.OPTIMAL
        times = f.decode_times(result)
        Schedule(loop=loop, machine=machine, ii=mii, times=times).validate()

    def test_infeasible_ii_flagged(self, machine):
        loop = build_sdot(machine)
        f = build_formulation(loop, machine, 3)  # below RecMII=4
        assert f.infeasible

    def test_resource_constraints_enforced(self, machine):
        # 3 loads cannot fit 2 ports at II=1.
        b = LoopBuilder("three", machine=machine)
        v1 = b.load("a", offset=0)
        v2 = b.load("b", offset=0)
        v3 = b.load("c", offset=0)
        b.store("o", b.fadd(b.fadd(v1, v2), v3))
        loop = b.build()
        f = build_formulation(loop, machine, 1)
        if not f.infeasible:
            result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
            assert result.status is Status.INFEASIBLE

    def test_buffer_objective_counts_buffers(self, machine):
        loop = build_first_diff(machine)
        mii = min_ii(loop, machine)
        f = build_formulation(loop, machine, mii, minimize_buffers=True)
        result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        assert result.has_solution
        times = f.decode_times(result)
        sched = Schedule(loop=loop, machine=machine, ii=mii, times=times)
        sched.validate()
        # The solver's buffer count matches the schedule-derived count
        # (the objective includes a < 1 lifetime tie-break term).
        assert int(result.objective) == sched.buffer_count()

    def test_buffer_cutoff_respected(self, machine):
        loop = build_first_diff(machine)
        mii = min_ii(loop, machine)
        f = build_formulation(loop, machine, mii, minimize_buffers=True, buffer_cutoff=0)
        result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        assert result.status is Status.INFEASIBLE  # every value needs >= 1

    def test_branch_priority_covers_assignment_vars(self, machine):
        loop = build_sdot(machine)
        f = build_formulation(loop, machine, min_ii(loop, machine))
        priority = f.branch_priority(list(range(loop.n_ops)))
        assert set(priority) <= {v.index for v in f.model.variables}
        assert len(priority) == len(f.assign)


class TestMostScheduler:
    @pytest.mark.parametrize(
        "builder", [build_sdot, build_daxpy, build_first_diff, build_recurrence_chain]
    )
    def test_achieves_min_ii_on_small_kernels(self, machine, builder):
        loop = builder(machine)
        res = most_pipeline_loop(loop, machine, fast_options())
        assert res.success
        assert not res.fallback_used
        assert res.ii == res.min_ii
        assert res.optimal
        res.schedule.validate()

    def test_never_beats_min_ii(self, machine, sdot):
        res = most_pipeline_loop(sdot, machine, fast_options())
        assert res.ii >= min_ii(sdot, machine)

    def test_matches_heuristic_ii_on_simple_kernels(self, machine, daxpy):
        most = most_pipeline_loop(daxpy, machine, fast_options())
        sgi = pipeline_loop(daxpy, machine)
        assert most.ii == sgi.ii

    def test_buffers_reported(self, machine, sdot):
        res = most_pipeline_loop(sdot, machine, fast_options())
        assert res.buffers is not None
        assert res.buffers >= 1

    def test_buffer_minimisation_not_worse_than_heuristic(self, machine, sdot):
        most = most_pipeline_loop(sdot, machine, fast_options())
        sgi = pipeline_loop(sdot, machine)
        assert most.schedule.buffer_count() <= sgi.schedule.buffer_count()

    def test_functional_correctness_of_ilp_schedule(self, machine):
        loop = build_recurrence_chain(machine)
        res = most_pipeline_loop(loop, machine, fast_options())
        assert not res.fallback_used
        layout = DataLayout(res.loop, trip_count=25)
        seq = run_sequential(res.loop, layout, 25)
        pipe = run_pipelined(res.schedule, res.allocation, layout, 25)
        assert seq.matches(pipe)

    def test_oversized_loop_falls_back(self, machine):
        b = LoopBuilder("big", machine=machine)
        t = b.load("x", offset=0, stride=8)
        for k in range(30):
            t = b.fadd(t, b.invariant("c"))
        b.store("o", t, offset=0, stride=8)
        loop = b.build()
        res = most_pipeline_loop(loop, machine, fast_options(max_ops=10))
        assert res.success
        assert res.fallback_used

    def test_no_fallback_mode_reports_failure(self, machine):
        b = LoopBuilder("big2", machine=machine)
        t = b.load("x", offset=0, stride=8)
        for k in range(20):
            t = b.fadd(t, b.invariant("c"))
        b.store("o", t, offset=0, stride=8)
        loop = b.build()
        res = most_pipeline_loop(
            loop, machine, fast_options(max_ops=5, fallback=False)
        )
        assert not res.success
        assert res.schedule is None

    def test_integrated_formulation(self, machine):
        loop = build_first_diff(machine)
        res = most_pipeline_loop(loop, machine, fast_options(integrated=True))
        assert res.success and not res.fallback_used
        assert res.buffers is not None
        res.schedule.validate()

    def test_bnb_engine_with_priority_branching(self, machine):
        loop = build_first_diff(machine)
        res = most_pipeline_loop(
            loop,
            machine,
            fast_options(engine="bnb", priority_branching=True, time_limit=30),
        )
        assert res.success
        assert not res.fallback_used
        res.schedule.validate()

    def test_two_wide_machine(self):
        machine = two_wide()
        loop = build_sdot(machine)
        res = most_pipeline_loop(loop, machine, fast_options())
        assert res.success and not res.fallback_used
        res.schedule.validate()

    def test_stats_accumulate(self, machine, sdot):
        res = most_pipeline_loop(sdot, machine, fast_options())
        assert res.stats.solves >= 1
        assert res.stats.seconds > 0
