"""Tests for ResMII / RecMII / MinII lower bounds."""

import pytest

from repro.core import max_ii, min_ii, rec_mii, res_mii
from repro.ir import LoopBuilder
from repro.machine import r8000, single_issue

from .conftest import build_memory_heavy, build_sdot


class TestResMII:
    def test_memory_bound_loop(self, machine):
        # 2 loads + 2 fp ops on a 2-port machine: mem demand 2/2 = 1,
        # fp demand 2/2 = 1, issue demand 4/4 = 1.
        loop = build_sdot(machine)
        assert res_mii(loop, machine) == 1

    def test_single_issue_counts_everything(self, tiny_machine):
        loop = build_sdot(tiny_machine)
        assert res_mii(loop, tiny_machine) == 4  # 4 ops / 1 issue

    def test_unpipelined_op_dominates(self, machine):
        b = LoopBuilder("div", machine=machine)
        x = b.load("x")
        b.store("o", b.fdiv(x, b.invariant("c")))
        loop = b.build()
        # FDIV holds the divider for 14 cycles.
        assert res_mii(loop, machine) == 14

    def test_many_streams(self, machine):
        loop = build_memory_heavy(machine, n_streams=6)
        # 6 loads on 2 ports -> at least 3.
        assert res_mii(loop, machine) >= 3


class TestRecMII:
    def test_no_arcs(self, machine):
        b = LoopBuilder("empty", machine=machine)
        b.load("x")
        loop = b.build()
        assert rec_mii(loop) == 1

    def test_self_recurrence_equals_latency(self, machine):
        loop = build_sdot(machine)
        # s = s + t with fadd latency 4, omega 1 -> RecMII = 4.
        assert rec_mii(loop) == 4

    def test_two_op_cycle(self, machine):
        b = LoopBuilder("rec", machine=machine)
        x = b.recurrence("x")
        d = b.fsub(b.load("y"), x.use())
        x.close(b.fmul(b.load("z"), d))
        loop = b.build()
        # fsub(4) + fmul(4) over distance 1 -> 8.
        assert rec_mii(loop) == 8

    def test_distance_two_recurrence_halves(self, machine):
        b = LoopBuilder("rec2", machine=machine)
        s = b.recurrence("s")
        s.close(b.fadd(b.load("x"), s.use(distance=2)))
        loop = b.build()
        # latency 4 over distance 2 -> ceil(4/2) = 2.
        assert rec_mii(loop) == 2

    def test_acyclic_chain_is_one(self, machine):
        b = LoopBuilder("chain", machine=machine)
        v = b.load("x")
        b.store("o", b.fadd(v, v))
        loop = b.build()
        assert rec_mii(loop) == 1


class TestMinMaxII:
    def test_min_ii_is_max_of_bounds(self, machine):
        loop = build_sdot(machine)
        assert min_ii(loop, machine) == max(res_mii(loop, machine), rec_mii(loop))

    def test_max_ii_doubles(self, machine):
        loop = build_sdot(machine)
        assert max_ii(loop, machine) == 2 * min_ii(loop, machine)

    def test_min_ii_positive_for_trivial_loop(self, machine):
        b = LoopBuilder("one", machine=machine)
        b.load("x")
        loop = b.build()
        assert min_ii(loop, machine) == 1
