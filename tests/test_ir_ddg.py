"""Unit tests for the data dependence graph."""

import pytest

from repro.ir import DDG, Dependence, DepKind


def arc(src, dst, lat=1, omega=0, kind=DepKind.FLOW, value=""):
    return Dependence(src=src, dst=dst, latency=lat, omega=omega, kind=kind, value=value)


class TestConstruction:
    def test_out_of_range_arc_rejected(self):
        with pytest.raises(ValueError):
            DDG(2, [arc(0, 5)])

    def test_unsatisfiable_self_arc_rejected(self):
        with pytest.raises(ValueError):
            DDG(1, [arc(0, 0, lat=2, omega=0)])

    def test_negative_omega_rejected(self):
        with pytest.raises(ValueError):
            arc(0, 1, omega=-1)

    def test_min_distance(self):
        a = arc(0, 1, lat=4, omega=1)
        assert a.min_distance(ii=3) == 1
        assert a.min_distance(ii=5) == -1


class TestAdjacency:
    def test_succs_preds(self):
        g = DDG(3, [arc(0, 1), arc(1, 2), arc(0, 2)])
        assert {a.dst for a in g.succs(0)} == {1, 2}
        assert {a.src for a in g.preds(2)} == {0, 1}

    def test_roots_and_leaves(self):
        g = DDG(3, [arc(0, 1), arc(1, 2)])
        assert g.roots() == [2]
        assert g.leaves() == [0]

    def test_self_loop_does_not_disqualify_root(self):
        g = DDG(2, [arc(0, 1), arc(1, 1, lat=1, omega=1)])
        assert g.roots() == [1]


class TestSccs:
    def test_chain_has_trivial_sccs(self):
        g = DDG(3, [arc(0, 1), arc(1, 2)])
        assert len(g.sccs) == 3
        assert not g.in_nontrivial_scc(0)

    def test_cycle_detected(self):
        g = DDG(3, [arc(0, 1), arc(1, 2), arc(2, 0, omega=1)])
        assert len(g.sccs) == 1
        assert g.in_nontrivial_scc(1)
        assert g.scc_members(0) == (0, 1, 2)

    def test_self_loop_is_nontrivial(self):
        g = DDG(2, [arc(0, 1), arc(1, 1, lat=4, omega=1)])
        assert g.in_nontrivial_scc(1)
        assert not g.in_nontrivial_scc(0)

    def test_reverse_topological_order(self):
        # 0 -> 1 -> 2: Tarjan emits sinks first.
        g = DDG(3, [arc(0, 1), arc(1, 2)])
        order = [scc[0] for scc in g.sccs]
        assert order.index(2) < order.index(1) < order.index(0)

    def test_two_sccs(self):
        # {0,1} cycle feeding {2,3} cycle.
        g = DDG(
            4,
            [
                arc(0, 1),
                arc(1, 0, omega=1),
                arc(1, 2),
                arc(2, 3),
                arc(3, 2, omega=1),
            ],
        )
        nontrivial = g.nontrivial_sccs()
        assert sorted(map(sorted, nontrivial)) == [[0, 1], [2, 3]]

    def test_condensation_order_topological(self):
        g = DDG(3, [arc(0, 1), arc(1, 2)])
        comps = g.condensation_order()
        assert comps[0] == (0,)
        assert comps[-1] == (2,)

    def test_large_chain_no_recursion_error(self):
        n = 5000
        g = DDG(n, [arc(i, i + 1) for i in range(n - 1)])
        assert len(g.sccs) == n


class TestHeights:
    def test_linear_chain_heights(self):
        g = DDG(3, [arc(0, 1, lat=4), arc(1, 2, lat=2)])
        h = g.height_map()
        assert h == {0: 6, 1: 2, 2: 0}

    def test_carried_arcs_inside_scc_ignored(self):
        g = DDG(2, [arc(0, 1, lat=3), arc(1, 1, lat=4, omega=1)])
        h = g.height_map()
        assert h[1] == 0
        assert h[0] == 3

    def test_diamond(self):
        g = DDG(4, [arc(0, 1, lat=1), arc(0, 2, lat=5), arc(1, 3, lat=1), arc(2, 3, lat=1)])
        h = g.height_map()
        assert h[0] == 6
        assert h[1] == 1
        assert h[2] == 1
