"""Tests for modulo renaming, live ranges, and Chaitin-Briggs colouring."""

import pytest

from repro.core import Schedule, min_ii, pipeline_loop
from repro.ir import LoopBuilder, RegClass
from repro.regalloc import (
    InterferenceGraph,
    LiveRange,
    allocate,
    allocate_schedule,
    color_graph,
    rename_kernel,
    value_reg_class,
)

from .conftest import build_daxpy, build_sdot


def pipelined_schedule(loop, machine):
    res = pipeline_loop(loop, machine)
    assert res.success
    return res.schedule


class TestLiveRangeGeometry:
    def test_overlap_basic(self):
        a = LiveRange("a", "a", RegClass.FP, start=0, length=4, refs=2, span=4)
        b = LiveRange("b", "b", RegClass.FP, start=2, length=4, refs=2, span=4)
        c = LiveRange("c", "c", RegClass.FP, start=4, length=2, refs=2, span=2)
        assert a.overlaps(b, period=8)
        assert not a.overlaps(c, period=8)

    def test_overlap_wraparound(self):
        a = LiveRange("a", "a", RegClass.FP, start=6, length=4, refs=1, span=4)
        b = LiveRange("b", "b", RegClass.FP, start=1, length=2, refs=1, span=2)
        assert a.overlaps(b, period=8)  # a covers [6,8)+[0,2)

    def test_full_period_overlaps_everything(self):
        inv = LiveRange("i", "i", RegClass.FP, start=0, length=8, refs=1, span=8,
                        is_invariant=True)
        b = LiveRange("b", "b", RegClass.FP, start=5, length=1, refs=1, span=1)
        assert inv.overlaps(b, period=8)

    def test_half_open_adjacent_do_not_overlap(self):
        a = LiveRange("a", "a", RegClass.FP, start=0, length=2, refs=1, span=2)
        b = LiveRange("b", "b", RegClass.FP, start=2, length=2, refs=1, span=2)
        assert not a.overlaps(b, period=8)

    def test_spill_ratio(self):
        lr = LiveRange("a", "a", RegClass.FP, start=0, length=10, refs=5, span=10)
        assert lr.spill_ratio == 2.0


class TestRenaming:
    def test_kmin_grows_with_long_lifetimes(self, machine):
        loop = build_sdot(machine)
        # Stretch the fmul->fadd gap artificially: lifetimes > II.
        sched = Schedule(loop=loop, machine=machine, ii=4,
                         times={0: 0, 1: 0, 2: 6, 3: 10})
        renamed = rename_kernel(sched)
        # Load result lives 6 cycles > II=4 -> at least 2 copies.
        assert renamed.kmin >= 2
        assert renamed.period == renamed.kmin * 4

    def test_replica_count_matches_kmin(self, machine):
        loop = build_daxpy(machine)
        sched = pipelined_schedule(loop, machine)
        renamed = rename_kernel(sched)
        per_value = {}
        for lr in renamed.ranges:
            if not lr.is_invariant:
                per_value.setdefault(lr.value, 0)
                per_value[lr.value] += 1
        assert all(n == renamed.kmin for n in per_value.values())

    def test_invariant_ranges_cover_period(self, machine):
        loop = build_daxpy(machine)
        sched = pipelined_schedule(loop, machine)
        renamed = rename_kernel(sched)
        invs = [lr for lr in renamed.ranges if lr.is_invariant]
        assert len(invs) == 1  # the scalar "a"
        assert invs[0].length == renamed.period

    def test_carried_flag(self, machine):
        loop = build_sdot(machine)
        sched = pipelined_schedule(loop, machine)
        renamed = rename_kernel(sched)
        s_ranges = [lr for lr in renamed.ranges if lr.value == "s"]
        assert s_ranges and all(lr.carried for lr in s_ranges)

    def test_lifetime_includes_carried_use(self, machine):
        loop = build_sdot(machine)
        sched = pipelined_schedule(loop, machine)
        renamed = rename_kernel(sched)
        # s is used 4 (=II at minimum) cycles after its def, one iteration on.
        assert renamed.lifetimes["s"] >= sched.ii

    def test_value_reg_class_inference(self, machine):
        b = LoopBuilder("t", machine=machine)
        i = b.invariant("addr")
        j = b.iadd(i, b.invariant("step"))
        x = b.load("x")
        b.store("o", b.fadd(x, b.invariant("c")))
        loop = b.build()
        assert value_reg_class(loop, "addr") is RegClass.INT
        assert value_reg_class(loop, "c") is RegClass.FP
        assert value_reg_class(loop, j.name) is RegClass.INT
        assert value_reg_class(loop, x.name) is RegClass.FP


class TestColoring:
    def _ranges(self, n, length, period):
        return [
            LiveRange(f"r{i}", f"r{i}", RegClass.FP, start=i, length=length,
                      refs=1, span=length)
            for i in range(n)
        ]

    def test_independent_ranges_share_nothing(self):
        ranges = [
            LiveRange("a", "a", RegClass.FP, 0, 2, 1, 2),
            LiveRange("b", "b", RegClass.FP, 4, 2, 1, 2),
        ]
        graph = InterferenceGraph.build(ranges, period=8)
        result = color_graph(graph, k=1)
        assert result.success
        assert result.colors_used == 1

    def test_clique_needs_k_colors(self):
        ranges = self._ranges(4, length=8, period=8)
        graph = InterferenceGraph.build(ranges, period=8)
        assert color_graph(graph, 4).success
        failed = color_graph(graph, 3)
        assert not failed.success
        assert len(failed.uncolored) == 1

    def test_optimistic_coloring_beats_pessimism(self):
        # A 4-cycle C4 graph: every node has degree 2 but is 2-colourable.
        ranges = [
            LiveRange("a", "a", RegClass.FP, 0, 3, 1, 3),
            LiveRange("b", "b", RegClass.FP, 2, 3, 1, 3),
            LiveRange("c", "c", RegClass.FP, 4, 3, 1, 3),
            LiveRange("d", "d", RegClass.FP, 6, 3, 1, 3),
        ]
        graph = InterferenceGraph.build(ranges, period=8)
        result = color_graph(graph, 2)
        assert result.success

    def test_coloring_is_proper(self, machine):
        loop = build_sdot(machine)
        sched = pipelined_schedule(loop, machine)
        alloc = allocate_schedule(sched, machine)
        assert alloc.success
        renamed = alloc.renamed
        by_name = {lr.name: lr for lr in renamed.ranges}
        for assignment in (alloc.fp_assignment, alloc.int_assignment):
            names = list(assignment)
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    if assignment[a] == assignment[b]:
                        assert not by_name[a].overlaps(by_name[b], renamed.period)

    def test_allocation_fails_with_tiny_register_file(self, machine):
        loop = build_sdot(machine)
        sched = pipelined_schedule(loop, machine)
        renamed = rename_kernel(sched)
        result = allocate(renamed, fp_regs=1, int_regs=1)
        assert not result.success
        assert result.uncolored

    def test_registers_used_metric(self, machine):
        loop = build_daxpy(machine)
        sched = pipelined_schedule(loop, machine)
        alloc = allocate_schedule(sched, machine)
        assert alloc.registers_used == alloc.fp_used + alloc.int_used
        assert alloc.registers_used >= 1
