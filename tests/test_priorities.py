"""Tests for the four production priority-list heuristics."""

import pytest

from repro.core import PRODUCTION_ORDER_NAMES, order_by_name, production_orders
from repro.core.priorities import folded_depth_first, heights_order, memory_sort
from repro.ir import LoopBuilder

from .conftest import build_divider, build_memory_heavy, build_recurrence_chain, build_sdot


class TestOrdersArePermutations:
    @pytest.mark.parametrize(
        "builder", [build_sdot, build_divider, build_memory_heavy, build_recurrence_chain]
    )
    def test_all_four_are_permutations(self, machine, builder):
        loop = builder(machine)
        for name, order in production_orders(loop, machine).items():
            assert sorted(order) == list(range(loop.n_ops)), name

    def test_expected_names(self, machine, sdot):
        assert set(production_orders(sdot, machine)) == set(PRODUCTION_ORDER_NAMES)

    def test_unknown_name_rejected(self, machine, sdot):
        with pytest.raises(ValueError):
            order_by_name(sdot, machine, "BOGUS")


class TestFoldedDepthFirst:
    def test_simple_case_starts_at_stores(self, machine, daxpy):
        order = folded_depth_first(daxpy, machine)
        store = next(op.index for op in daxpy.ops if op.opclass.is_memory and op.mem.is_store)
        assert order[0] == store

    def test_unpipelined_op_is_fold_point(self, machine, divloop):
        order = folded_depth_first(divloop, machine)
        div = next(op.index for op in divloop.ops if op.opcode == "fdiv")
        assert order[0] == div

    def test_large_scc_folded(self, machine):
        b = LoopBuilder("bigscc", machine=machine)
        x = b.recurrence("x")
        t1 = b.fadd(b.load("a"), x.use())
        t2 = b.fmul(t1, b.invariant("c"))
        x.close(b.fadd(t2, b.invariant("d")))
        b.store("o", x)
        loop = b.build()
        (scc,) = loop.ddg.nontrivial_sccs()
        assert len(scc) == 3
        order = folded_depth_first(loop, machine)
        # All SCC members come first.
        assert set(order[:3]) == set(scc)


class TestHeights:
    def test_heights_descend(self, machine, daxpy):
        order = heights_order(daxpy)
        h = daxpy.ddg.height_map()
        values = [h[op] for op in order]
        assert values == sorted(values, reverse=True)


class TestMemorySort:
    def test_boundary_memory_moved_to_end(self, machine, daxpy):
        order = list(range(daxpy.n_ops))
        sorted_order = memory_sort(daxpy, order)
        # daxpy: loads 0,1 have no predecessors, store 3 has no successors.
        assert sorted_order == [2, 0, 1, 3]
        # Non-memory ops keep relative order at the front.
        front = [op for op in sorted_order if not daxpy.ops[op].is_memory]
        assert front == [op for op in order if not daxpy.ops[op].is_memory]

    def test_constrained_memory_not_moved(self, machine):
        # A load feeding from a store stream (store -> load dependence)
        # has a predecessor, so the *store* moves but not... the store has a
        # successor through memory; neither is boundary.
        b = LoopBuilder("t", machine=machine)
        v = b.load("y", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8)
        w = b.load("x", offset=-8, stride=8)
        b.store("z", w, offset=0, stride=8)
        loop = b.build()
        order = memory_sort(loop, list(range(loop.n_ops)))
        # store#1 has a mem successor (load#2): stays in front section.
        assert order.index(1) < order.index(0)

    def test_rhms_is_reversed_heights_plus_sort(self, machine, daxpy):
        orders = production_orders(daxpy, machine)
        hs = heights_order(daxpy)
        assert orders["RHMS"] == memory_sort(daxpy, list(reversed(hs)))
