"""The single-owner SolveBudget invariant under the backend race.

The portfolio shares one :class:`repro.most.scheduler.SolveBudget` across
all backends and all IIs of a loop.  Slices can never exceed what
remains, and a backend overshooting its granted slice beyond the
enforcement slack is an assertion failure — the regression this file
pins down.
"""

from __future__ import annotations

import time

import pytest

from repro.core import min_ii
from repro.most.scheduler import SolveBudget
from repro.portfolio.answer import SAT, UNKNOWN, BackendAnswer
from repro.portfolio.driver import (
    SLICE_GRACE,
    PortfolioOptions,
    PortfolioStats,
    _probe_ii,
    portfolio_pipeline_loop,
)
from repro.portfolio.formulation import build_modulo_formulation

from .conftest import build_daxpy, build_sdot


def _formulation(machine, loop):
    return build_modulo_formulation(loop, machine, min_ii(loop, machine))


class TestSliceDiscipline:
    def test_slice_never_exceeds_remaining(self):
        budget = SolveBudget(total=0.5)
        granted = budget.slice(parts=2, floor=0.05)
        assert granted <= 0.5
        time.sleep(0.2)
        assert budget.slice(parts=2, floor=0.05) <= budget.remaining() + 1e-9

    def test_floor_never_lifts_above_remaining(self):
        budget = SolveBudget(total=0.05)
        time.sleep(0.06)
        assert budget.expired()
        assert budget.slice(parts=2, floor=10.0) <= 0.0 + 1e-9

    def test_overspending_backend_trips_the_assertion(self, machine, daxpy):
        f = _formulation(machine, daxpy)
        budget = SolveBudget(total=1.0)
        granted_ceiling = 1.0 + SLICE_GRACE + 0.5 * 1.0

        def rogue(formulation, limit):
            # Claims to have burned far beyond any granted slice.
            return BackendAnswer(backend="rogue", answer=UNKNOWN,
                                 seconds=granted_ceiling + 5.0)

        options = PortfolioOptions(time_limit=1.0)
        with pytest.raises(AssertionError, match="budget slice"):
            _probe_ii(f, [("rogue", rogue)], budget, options,
                      PortfolioStats(), [])

    def test_compliant_backends_pass_the_assertion(self, machine, daxpy):
        f = _formulation(machine, daxpy)
        budget = SolveBudget(total=1.0)

        def polite(formulation, limit):
            assert limit <= 1.0 + 1e-9  # a slice is capped by the total
            return BackendAnswer(backend="polite", answer=UNKNOWN,
                                 seconds=min(limit, 0.01))

        options = PortfolioOptions(time_limit=1.0, cross_check=True)
        probes = []
        answers = _probe_ii(f, [("polite", polite), ("polite2", polite)],
                            budget, options, PortfolioStats(), probes)
        assert len(answers) == 2
        assert len(probes) == 2

    def test_race_stops_once_budget_expires(self, machine, daxpy):
        f = _formulation(machine, daxpy)
        budget = SolveBudget(total=0.01)
        calls = []

        def slow(formulation, limit):
            calls.append(limit)
            time.sleep(0.02)  # exhausts the total before the next backend
            return BackendAnswer(backend="slow", answer=UNKNOWN,
                                 seconds=min(limit, 0.02))

        options = PortfolioOptions(time_limit=0.01, cross_check=True)
        _probe_ii(f, [("slow", slow), ("never", slow), ("never2", slow)],
                  budget, options, PortfolioStats(), [])
        assert len(calls) < 3  # later entrants saw an expired budget

    def test_first_definitive_ends_round_without_cross_check(self, machine, daxpy):
        f = _formulation(machine, daxpy)
        budget = SolveBudget(total=5.0)
        calls = []

        def sat_backend(formulation, limit):
            calls.append("sat")
            times = {op: formulation.windows[op][0] for op in range(formulation.n_ops)}
            return BackendAnswer(backend="fake", answer=SAT, times=times)

        def never(formulation, limit):  # pragma: no cover - must not run
            calls.append("never")
            return BackendAnswer(backend="never", answer=UNKNOWN)

        options = PortfolioOptions(time_limit=5.0, cross_check=False)
        _probe_ii(f, [("fake", sat_backend), ("never", never)], budget,
                  options, PortfolioStats(), [])
        assert calls == ["sat"]


class TestDriverLevelAccounting:
    def test_total_solver_seconds_bounded_by_budget(self, machine):
        loop = build_sdot(machine)
        options = PortfolioOptions(time_limit=2.0, cross_check=True,
                                   max_nodes=20_000)
        result = portfolio_pipeline_loop(loop, machine, options)
        # Sum of charged backend seconds can never exceed the per-loop
        # budget by more than the per-slice slack times the probe count.
        slack = len(result.probes) * (SLICE_GRACE + 2.0)
        assert result.stats.seconds <= 2.0 + slack
        assert result.stats.solves == len(
            [p for p in result.probes if p.backend != "screen"]
        )

    def test_per_backend_seconds_sum_to_total(self, machine):
        loop = build_daxpy(machine)
        options = PortfolioOptions(time_limit=2.0, cross_check=True)
        result = portfolio_pipeline_loop(loop, machine, options)
        per_backend = result.stats.backend_seconds()
        assert set(per_backend) == {"cp", "ilp"}
        assert sum(per_backend.values()) == pytest.approx(result.stats.seconds)
