"""Tests for the iterative modulo scheduler [Rau94]."""

import pytest

from repro.core import min_ii, pipeline_loop
from repro.core.sched import Schedule, SchedulingStats
from repro.ir import LoopBuilder
from repro.machine import r8000, two_wide
from repro.rau import RauOptions, height_r, iterative_modulo_schedule, rau_pipeline_loop
from repro.sim import DataLayout, run_pipelined, run_sequential
from repro.workloads import GeneratorConfig, random_loop

from .conftest import (
    build_daxpy,
    build_divider,
    build_first_diff,
    build_memory_heavy,
    build_recurrence_chain,
    build_sdot,
)

ALL_BUILDERS = [
    build_sdot,
    build_daxpy,
    build_first_diff,
    build_recurrence_chain,
    build_memory_heavy,
    build_divider,
]


class TestHeightR:
    def test_chain_heights_with_latencies(self, machine):
        loop = build_sdot(machine)
        h = height_r(loop, ii=4)
        # loads sit above fmul above fadd.
        assert h[0] > h[2] > 0
        assert h[2] > h[3] or h[3] <= 0

    def test_carried_arcs_discount_by_ii(self, machine):
        loop = build_sdot(machine)
        h4 = height_r(loop, ii=4)
        h8 = height_r(loop, ii=8)
        # Larger II shrinks (or keeps) carried contributions.
        assert h8[0] <= h4[0]


class TestIterativeScheduling:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_schedules_satisfy_all_constraints(self, machine, builder):
        loop = builder(machine)
        ii = min_ii(loop, machine)
        times = iterative_modulo_schedule(loop, machine, ii)
        assert times is not None, loop.name
        Schedule(loop=loop, machine=machine, ii=ii, times=times).validate()

    def test_infeasible_ii_fails(self, machine):
        loop = build_sdot(machine)
        # RecMII is 4; II=3 is impossible: the budget must run out.
        times = iterative_modulo_schedule(loop, machine, 3)
        if times is not None:
            with pytest.raises(ValueError):
                Schedule(loop=loop, machine=machine, ii=3, times=times).validate()

    def test_budget_limits_work(self, machine):
        loop = build_memory_heavy(machine)
        stats = SchedulingStats()
        times = iterative_modulo_schedule(
            loop, machine, min_ii(loop, machine),
            RauOptions(budget_ratio=0.1), stats,
        )
        # With a fraction of a placement per op, scheduling must fail.
        assert times is None
        assert stats.placements <= max(1, int(0.1 * loop.n_ops)) + 1

    def test_eviction_reschedules_displaced_ops(self, machine):
        # A loop that does not fit greedily at MinII forces evictions; the
        # result must still place every op exactly once.
        b = LoopBuilder("evict", machine=machine)
        x = b.load("x", offset=0, stride=8)
        y = b.load("y", offset=0, stride=8)
        q = b.fdiv(x, y)
        t = b.fadd(q, b.invariant("c"))
        for _ in range(3):
            t = b.fadd(t, b.invariant("c"))
        b.store("o", t, offset=0, stride=8)
        loop = b.build()
        ii = min_ii(loop, machine)
        times = iterative_modulo_schedule(loop, machine, ii)
        if times is not None:
            assert sorted(times) == list(range(loop.n_ops))
            Schedule(loop=loop, machine=machine, ii=ii, times=times).validate()


class TestRauDriver:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_full_pipeline_succeeds(self, machine, builder):
        loop = builder(machine)
        res = rau_pipeline_loop(loop, machine)
        assert res.success, loop.name
        res.schedule.validate()
        assert res.allocation.success
        assert res.ii >= res.min_ii

    @pytest.mark.parametrize("builder", [build_sdot, build_daxpy, build_first_diff])
    def test_matches_sgi_on_simple_kernels(self, machine, builder):
        loop = builder(machine)
        rau = rau_pipeline_loop(loop, machine)
        sgi = pipeline_loop(loop, machine)
        assert rau.ii == sgi.ii

    def test_two_wide_machine(self):
        machine = two_wide()
        loop = build_sdot(machine)
        res = rau_pipeline_loop(loop, machine)
        assert res.success
        res.schedule.validate()

    @pytest.mark.parametrize("seed", range(6))
    def test_functional_correctness_on_random_loops(self, machine, seed):
        config = GeneratorConfig(
            n_compute=6 + seed, n_streams=2, n_recurrences=seed % 2, trip_count=15
        )
        loop = random_loop(seed, config, machine)
        res = rau_pipeline_loop(loop, machine)
        assert res.success
        layout = DataLayout(res.loop, trip_count=15, seed=seed)
        seq = run_sequential(res.loop, layout, 15)
        pipe = run_pipelined(res.schedule, res.allocation, layout, 15)
        assert seq.matches(pipe)

    def test_stats_recorded(self, machine, sdot):
        res = rau_pipeline_loop(sdot, machine)
        assert res.stats.attempts >= 1
        assert res.stats.seconds > 0
