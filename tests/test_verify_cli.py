"""The ``python -m repro verify`` subcommand and the ``--strict`` flag."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.verify import default_verify, set_default_verify
from repro.verify.api import SweepEntry, SweepResult, corpus_loops

pytestmark = pytest.mark.verify


class TestVerifyCommand:
    def test_sweep_exits_zero_on_clean_corpus(self, capsys):
        # One scheduler over the smaller corpus keeps this test quick; the
        # full three-scheduler sweep is `make verify-corpus`.
        code = main(["verify", "livermore", "--schedulers", "sgi"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out
        assert "lk24_firstmin" in out

    def test_unknown_corpus_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "nonesuch"])
        assert exc.value.code == 2
        assert "unknown corpus" in capsys.readouterr().err

    def test_unknown_scheduler_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "livermore", "--schedulers", "bogus"])
        assert exc.value.code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_corpus_loops_counts(self):
        assert len(corpus_loops("livermore")) == 24
        assert len(corpus_loops("recbound")) == 6
        assert len(corpus_loops("all")) == (
            len(corpus_loops("livermore"))
            + len(corpus_loops("spec92"))
            + len(corpus_loops("recbound"))
        )


class TestSweepResult:
    def test_exit_status_tracks_errors(self):
        sweep = SweepResult(corpus="x")
        sweep.entries.append(
            SweepEntry(loop="l", scheduler="sgi", ii=2, success=True, errors=0, warnings=1)
        )
        assert sweep.ok
        sweep.entries.append(
            SweepEntry(loop="m", scheduler="rau", ii=3, success=True, errors=2, warnings=0)
        )
        assert not sweep.ok
        text = sweep.formatted()
        assert "FAIL" in text and "warn" in text


@pytest.fixture
def restore_default_verify():
    before = default_verify()
    yield
    set_default_verify(before)


class TestStrictFlag:
    def test_strict_turns_verification_on_for_experiments(
        self, monkeypatch, restore_default_verify, capsys
    ):
        import repro.__main__ as mm

        seen = {}

        def fake_experiment(config):
            seen["verify"] = default_verify()

            class _R:
                def formatted(self):
                    return "stub result"

            return _R()

        monkeypatch.setitem(mm.EXPERIMENTS, "fake", (fake_experiment, "stub"))
        set_default_verify(False)
        assert main(["fake", "--strict"]) == 0
        assert seen["verify"] is True

    def test_strict_exits_nonzero_on_verification_error(
        self, monkeypatch, restore_default_verify, capsys
    ):
        import repro.__main__ as mm
        from repro.verify import Report, Severity, VerificationError

        def failing_experiment(config):
            report = Report()
            report.add("SCHED001", Severity.ERROR, "seeded failure", loop="stub")
            raise VerificationError(report)

        monkeypatch.setitem(mm.EXPERIMENTS, "fake", (failing_experiment, "stub"))
        assert main(["fake", "--strict"]) == 1
        assert "SCHED001" in capsys.readouterr().err
        # Without --strict the error propagates instead of being swallowed.
        with pytest.raises(VerificationError):
            main(["fake"])
