"""Tests for repro.obs.diffbench — attributed bench regression diffing."""

from __future__ import annotations

import json

import pytest

from repro.exec.cells import CellResult
from repro.obs.diffbench import (
    BenchDiff,
    compare,
    diff_paths,
    diff_reports,
    load_bench,
    main as diff_main,
)


def _cell(loop="a", scheduler="sgi", **kw):
    base = CellResult(
        loop=loop, scheduler=scheduler, success=True, ii=4, min_ii=4,
        schedule_seconds=0.1, sim_cycles={"default": 100.0},
        cache_key=f"key-{loop}-{scheduler}-{kw.get('options_json', '{}')}",
    ).to_dict()
    base.update(kw)
    return base


def _payload(cells, name="pipeline", code_version="abc"):
    return {"name": name, "code_version": code_version, "cells": cells}


class TestDiffReports:
    def test_identical_runs_are_clean(self):
        payload = _payload([_cell(), _cell(loop="b")])
        diff = diff_reports(payload, payload)
        assert diff.ok
        assert not diff.warnings
        assert all(c.status == "unchanged" for c in diff.cells)
        assert diff.by_cause == {}
        assert "no regressions" in diff.formatted()

    def test_seeded_ii_regression(self):
        old = _payload([_cell(), _cell(loop="b")])
        # A real code change also moves every cache key.
        new = _payload(
            [_cell(ii=5, cache_key="k2-a"), _cell(loop="b", cache_key="k2-b")],
            code_version="def",
        )
        diff = diff_reports(old, new)
        assert not diff.ok
        assert any("II regressed" in r for r in diff.regressions)
        (changed,) = [c for c in diff.cells if c.status == "regression"]
        assert changed.loop == "a"
        assert changed.deltas["ii"] == (4, 5)
        # code_version moved, so the movement is attributed to code.
        assert changed.cause == "code"
        assert diff.by_cause == {"code": 1}

    def test_option_only_change_keeps_its_pair(self):
        old = _payload([_cell(options_json='{"x":1}')])
        new = _payload([_cell(options_json='{"x":2}', ii=5, cache_key="k2")])
        diff = diff_reports(old, new)
        # Different options => different exact keys, but the secondary
        # (loop, scheduler) alignment still pairs the cells instead of
        # reporting one removed and one added.
        (changed,) = [c for c in diff.cells if c.status != "unchanged"]
        assert changed.cause == "options"
        assert changed.deltas["options_json"] == ('{"x":1}', '{"x":2}')
        assert diff.by_cause == {"options": 1}
        # The II move still gates — refresh the baseline when the option
        # change is intentional.
        assert not diff.ok

    def test_identical_inputs_timing_delta_is_noise(self):
        old = _payload([_cell()])
        new = _payload([_cell(schedule_seconds=0.15, wall_seconds=0.3)])
        diff = diff_reports(old, new)
        (cell,) = diff.cells
        assert cell.status == "noise"
        assert cell.cause == "identical-inputs"
        assert diff.ok

    def test_identical_inputs_quality_delta_warns_nondeterminism(self):
        old = _payload([_cell()])
        new = _payload([_cell(registers_used=9)])
        diff = diff_reports(old, new)
        assert any("nondeterministic" in w for w in diff.warnings)

    def test_new_timeout_and_fallback_are_regressions(self):
        old = _payload([_cell(), _cell(loop="b")])
        new = _payload(
            [
                _cell(timeout=True, cache_key="k2-a"),
                _cell(loop="b", fallback=True, cache_key="k2-b"),
            ],
            code_version="def",
        )
        diff = diff_reports(old, new)
        text = "\n".join(diff.regressions)
        assert "new timeout" in text
        assert "new fallback" in text

    def test_removed_cell_regresses_added_cell_informs(self):
        old = _payload([_cell(), _cell(loop="b")])
        new = _payload([_cell(), _cell(loop="c")])
        diff = diff_reports(old, new)
        assert any("disappeared" in r for r in diff.regressions)
        assert any("new cell" in i for i in diff.infos)
        statuses = {c.loop: c.status for c in diff.cells}
        assert statuses["b"] == "removed"
        assert statuses["c"] == "added"

    def test_slow_schedule_time_is_warn_only(self):
        # The per-scheduler time ratio reads the report totals, the same
        # aggregation a real bench run writes.
        from repro.exec.bench import summarise

        def with_totals(cells):
            payload = _payload(cells)
            payload["totals"] = summarise([CellResult.from_dict(c) for c in cells])
            return payload

        old = with_totals([_cell(schedule_seconds=0.1)])
        new = with_totals([_cell(schedule_seconds=1.0)])
        diff = diff_reports(old, new, time_tolerance=2.0)
        assert diff.ok
        assert any("schedule time up" in w for w in diff.warnings)

    def test_to_dict_shape(self):
        old = _payload([_cell()])
        new = _payload([_cell(ii=5, cache_key="k2")], code_version="def")
        data = diff_reports(old, new).to_dict()
        assert set(data) >= {
            "old", "new", "old_code_version", "new_code_version",
            "by_cause", "regressions", "warnings", "infos", "cells",
        }
        assert json.dumps(data)  # JSON-serialisable throughout
        again = BenchDiff(
            old_name=data["old"], new_name=data["new"],
            old_code_version=data["old_code_version"],
            new_code_version=data["new_code_version"],
        )
        assert again.ok


class TestCompatSurface:
    def test_compare_matches_legacy_argument_order(self):
        baseline = _payload([_cell()])
        fresh = _payload([_cell(ii=5, cache_key="k2")], code_version="def")
        regressions, warnings, infos = compare(fresh, baseline, 2.0)
        assert any("II regressed" in r for r in regressions)
        clean_r, clean_w, clean_i = compare(baseline, baseline, 2.0)
        assert not clean_r and not clean_w and not clean_i


class TestLoadAndCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_load_bench_resolves_directories(self, tmp_path):
        payload = _payload([_cell()])
        self._write(tmp_path, "BENCH_pipeline.json", payload)
        assert load_bench(tmp_path)["cells"] == payload["cells"]
        assert load_bench(tmp_path / "BENCH_pipeline.json")["name"] == "pipeline"

    def test_load_bench_rejects_ambiguous_directories(self, tmp_path):
        self._write(tmp_path, "BENCH_a.json", _payload([], name="a"))
        self._write(tmp_path, "BENCH_b.json", _payload([], name="b"))
        with pytest.raises(FileNotFoundError):
            load_bench(tmp_path)

    def test_diff_paths(self, tmp_path):
        old = self._write(tmp_path, "old.json", _payload([_cell()]))
        new = self._write(
            tmp_path, "new.json",
            _payload([_cell(ii=5, cache_key="k2")], code_version="def"),
        )
        assert not diff_paths(old, new).ok

    def test_strict_exit_codes(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _payload([_cell()]))
        same = self._write(tmp_path, "same.json", _payload([_cell()]))
        regressed = self._write(
            tmp_path, "bad.json",
            _payload([_cell(ii=5, cache_key="k2")], code_version="def"),
        )
        assert diff_main([str(old), str(same), "--strict"]) == 0
        assert diff_main([str(old), str(regressed), "--strict"]) != 0
        # Without --strict the same regression only warns.
        assert diff_main([str(old), str(regressed)]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_json_output(self, tmp_path):
        old = self._write(tmp_path, "old.json", _payload([_cell()]))
        new = self._write(
            tmp_path, "new.json",
            _payload([_cell(ii=5, cache_key="k2")], code_version="def"),
        )
        out = tmp_path / "diff.json"
        diff_main([str(old), str(new), "--json", str(out)])
        data = json.loads(out.read_text())
        assert data["by_cause"] == {"code": 1}
