"""Tests for the Livermore, SPEC92-like, and random workload corpora."""

import os
import subprocess
import sys

import pytest

from repro.core import min_ii, pipeline_loop, rec_mii
from repro.exec.hashing import fingerprint_loop
from repro.ir import DepKind, OpClass
from repro.machine import r8000
from repro.workloads import (
    LONG_TRIPS,
    SHORT_TRIPS,
    SPEC92_FP_NAMES,
    GeneratorConfig,
    livermore_kernel,
    livermore_kernels,
    random_loop,
    random_spec,
    scaling_series,
    spec92_benchmark,
    spec92_suite,
)


class TestLivermore:
    def test_all_24_build_and_check(self, machine):
        kernels = livermore_kernels(machine)
        assert len(kernels) == 24
        for loop in kernels:
            loop.check_well_formed()

    def test_trip_tables_complete(self):
        assert set(LONG_TRIPS) == set(range(1, 25))
        assert set(SHORT_TRIPS) == set(range(1, 25))
        assert all(SHORT_TRIPS[k] < LONG_TRIPS[k] for k in LONG_TRIPS)

    def test_unknown_kernel_rejected(self, machine):
        with pytest.raises(ValueError):
            livermore_kernel(25, machine)

    def test_k5_is_first_order_recurrence(self, machine):
        loop = livermore_kernel(5, machine)
        # x[i] = z[i]*(y[i]-x[i-1]): fsub(4) + fmul(4) around the cycle.
        assert rec_mii(loop) == 8

    def test_k3_inner_product_interleaved(self, machine):
        loop = livermore_kernel(3, machine)
        carried = [a for a in loop.ddg.arcs if a.omega > 0 and a.kind is DepKind.FLOW]
        assert all(a.omega == 2 for a in carried)

    def test_k20_recurrence_through_divide(self, machine):
        loop = livermore_kernel(20, machine)
        assert any(op.opclass is OpClass.FDIV for op in loop.ops)
        # The divide's 20-cycle latency sits inside the carried cycle.
        assert rec_mii(loop) >= 20

    def test_k23_memory_recurrence_found(self, machine):
        loop = livermore_kernel(23, machine)
        carried_mem = [
            a for a in loop.ddg.arcs if a.kind is DepKind.MEM and a.omega == 1
        ]
        assert carried_mem, "za store -> za[j-1] load dependence must be discovered"

    def test_k13_has_indirection_and_alias(self, machine):
        loop = livermore_kernel(13, machine)
        indirect = [op for op in loop.memory_ops() if not op.mem.is_direct]
        assert len(indirect) >= 3
        mem_arcs = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert mem_arcs  # the scatter alias group

    def test_k7_wide_and_parallel(self, machine):
        loop = livermore_kernel(7, machine)
        assert loop.n_ops >= 15
        assert not loop.ddg.nontrivial_sccs()

    @pytest.mark.parametrize("number", [1, 5, 7, 11, 12, 19, 24])
    def test_representative_kernels_pipeline_at_min_ii(self, machine, number):
        loop = livermore_kernel(number, machine)
        res = pipeline_loop(loop, machine)
        assert res.success
        assert res.ii == min_ii(loop, machine)
        res.schedule.validate()


class TestSpec92:
    def test_all_14_benchmarks(self, machine):
        suite = spec92_suite(machine)
        assert [b.name for b in suite] == SPEC92_FP_NAMES
        for bench in suite:
            assert bench.loops
            assert bench.total_weight() == pytest.approx(1.0)
            for loop in bench.loops:
                loop.check_well_formed()

    def test_unknown_benchmark_rejected(self, machine):
        with pytest.raises(ValueError):
            spec92_benchmark("gcc", machine)

    def test_mdljdp2_matches_paper_description(self, machine):
        loop = spec92_benchmark("mdljdp2", machine).loops[0]
        # "95 instructions ... 16 memory references" with indirection.
        assert 85 <= loop.n_ops <= 105
        assert len(loop.memory_ops()) == 16
        assert any(not op.mem.is_direct for op in loop.memory_ops())

    def test_alvinn_is_single_precision_even_aligned(self, machine):
        bench = spec92_benchmark("alvinn", machine)
        for loop in bench.loops:
            assert all(op.mem.width == 4 for op in loop.memory_ops())
            assert all(p == 0 for p in loop.known_parity.values())
            assert loop.trip_count >= 1000

    def test_tomcatv_has_big_loop_and_trip_300(self, machine):
        bench = spec92_benchmark("tomcatv", machine)
        big = max(bench.loops, key=lambda l: l.n_ops)
        assert big.n_ops >= 50
        assert big.trip_count == 300

    def test_fpppp_is_huge_with_few_refs(self, machine):
        loop = spec92_benchmark("fpppp", machine).loops[0]
        assert loop.n_ops >= 80
        assert len(loop.memory_ops()) / loop.n_ops < 0.25

    def test_spice_loops_have_short_trips(self, machine):
        bench = spec92_benchmark("spice2g6", machine)
        assert all(loop.trip_count <= 20 for loop in bench.loops)

    def test_ora_is_divide_sqrt_bound(self, machine):
        loop = spec92_benchmark("ora", machine).loops[0]
        classes = {op.opclass for op in loop.ops}
        assert OpClass.FDIV in classes and OpClass.FSQRT in classes

    def test_every_spec_loop_pipelines(self, machine):
        # The whole corpus must be compilable — this is the Figure 2-5 bed.
        for bench in spec92_suite(machine):
            for loop in bench.loops:
                res = pipeline_loop(loop, machine)
                assert res.success, f"{bench.name}/{loop.name}"
                res.schedule.validate()


class TestGenerators:
    def test_deterministic(self, machine):
        a = random_loop(42, GeneratorConfig(), machine)
        b = random_loop(42, GeneratorConfig(), machine)
        assert [str(op) for op in a.ops] == [str(op) for op in b.ops]

    def test_seed_changes_loop(self, machine):
        a = random_loop(1, GeneratorConfig(), machine)
        b = random_loop(2, GeneratorConfig(), machine)
        assert [str(op) for op in a.ops] != [str(op) for op in b.ops]

    def test_recurrences_generated(self, machine):
        loop = random_loop(3, GeneratorConfig(n_recurrences=2), machine)
        carried = [a for a in loop.ddg.arcs if a.omega > 0]
        assert carried

    def test_scaling_series_sizes_grow(self, machine):
        loops = scaling_series([12, 24, 48], machine=machine)
        sizes = [l.n_ops for l in loops]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_loops_well_formed(self, machine, seed):
        loop = random_loop(seed, GeneratorConfig(p_indirect=0.3), machine)
        loop.check_well_formed()

    def test_random_spec_builds_the_same_loop(self, machine):
        config = GeneratorConfig(n_recurrences=2, p_indirect=0.2)
        spec = random_spec(9, config, name="rand9")
        via_spec = spec.build(machine)
        direct = random_loop(9, config, machine)
        assert fingerprint_loop(via_spec) == fingerprint_loop(direct)

    @pytest.mark.parametrize("config", [
        GeneratorConfig(n_compute=0),
        GeneratorConfig(n_streams=0),
        GeneratorConfig(n_compute=0, n_streams=0, n_stores=0, n_recurrences=0),
        GeneratorConfig(n_compute=5, n_recurrences=7),  # more recs than feeds
        GeneratorConfig(n_stores=3, n_streams=0, n_compute=0),
    ], ids=["no-compute", "no-streams", "all-zero", "recs-exceed-compute",
            "stores-without-values"])
    def test_degenerate_shapes_build_well_formed(self, machine, config):
        for seed in range(3):
            loop = random_loop(seed, config, machine)
            loop.check_well_formed()
            assert loop.n_ops >= 1


class TestGeneratorDeterminism:
    """Two processes given the same seed must emit byte-identical loop IR."""

    def test_fingerprints_stable_across_processes(self):
        script = (
            "from repro.exec.hashing import fingerprint_loop\n"
            "from repro.workloads import GeneratorConfig, random_loop\n"
            "cfg = GeneratorConfig(n_recurrences=2, p_indirect=0.2)\n"
            "print(','.join(fingerprint_loop(random_loop(s, cfg))"
            " for s in range(6)))\n"
        )
        outputs = []
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        assert len(outputs[0].split(",")) == 6

    def test_explicit_rng_does_not_touch_global_state(self, machine):
        import random as global_random

        global_random.seed(123)
        before = global_random.getstate()
        random_loop(4, GeneratorConfig(), machine)
        assert global_random.getstate() == before
