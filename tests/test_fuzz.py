"""Tests of the repro.fuzz harness: mutation, oracle, minimizer, engine."""

import random

import pytest

from repro.exec.cells import CellResult
from repro.fuzz import (
    INJECTIONS,
    FuzzConfig,
    ORACLE_KINDS,
    Violation,
    check_results,
    evaluate_spec,
    minimize_spec,
    run_fuzz,
)
from repro.fuzz.corpus import CorpusEntry, entry_name, load_entries, write_entry
from repro.fuzz.engine import _dedup_key
from repro.machine import r8000
from repro.workloads import (
    GeneratorConfig,
    LoopSpec,
    MUTATORS,
    OpSpec,
    crossover,
    mutate,
    normalize,
    random_spec,
    remove_position,
    spec_from_token,
    spec_to_token,
)

MACHINE = r8000()


def _pool(n=6):
    shape = GeneratorConfig(n_compute=4, n_streams=2, n_stores=1,
                            n_recurrences=1, p_indirect=0.2)
    return [
        normalize(random_spec(s, shape, name=f"p{s}", rng=random.Random(s)))
        for s in range(n)
    ]


def _assert_mem_contract(spec):
    """Every spec must stay inside the ir.memdep analysability contract."""
    store_bases = {op.base for op in spec.ops if op.kind == "store"}
    shape = {}
    for op in spec.ops:
        if op.kind not in ("load", "store"):
            continue
        if op.offset is None:
            assert op.base not in store_bases
        else:
            stride_width = shape.setdefault(op.base, (op.stride, op.width))
            assert (op.stride, op.width) == stride_width


class TestNormalize:
    def test_empty_spec_gets_minimal_body(self):
        spec = normalize(LoopSpec(name="e", ops=()))
        assert spec.n_ops == 2
        spec.build(MACHINE).check_well_formed()

    def test_idempotent_and_buildable_over_mutants(self):
        rng = random.Random(42)
        pool = _pool()
        for _ in range(60):
            spec = mutate(rng.choice(pool), rng, n=rng.randrange(1, 4))
            assert normalize(spec) == spec
            _assert_mem_contract(spec)
            spec.build(MACHINE).check_well_formed()
            pool.append(spec)

    def test_crossover_stays_normalized(self):
        rng = random.Random(7)
        pool = _pool()
        for _ in range(30):
            spec = crossover(rng.choice(pool), rng.choice(pool), rng)
            assert normalize(spec) == spec
            _assert_mem_contract(spec)
            spec.build(MACHINE).check_well_formed()

    def test_mixed_stride_stores_are_made_coherent(self):
        spec = normalize(LoopSpec(name="m", ops=(
            OpSpec("fadd", srcs=(("inv", "c0"), ("inv", "c1"))),
            OpSpec("store", srcs=(("val", 0),), base="out0", offset=0, stride=8),
            OpSpec("store", srcs=(("val", 0),), base="out0", offset=0, stride=32),
        )))
        strides = {op.stride for op in spec.ops if op.kind == "store"}
        assert strides == {8}

    def test_indirect_load_moved_off_stored_base(self):
        spec = normalize(LoopSpec(name="m", ops=(
            OpSpec("load", base="out0", offset=None),
            OpSpec("store", srcs=(("val", 0),), base="out0", offset=0),
        )))
        load = next(op for op in spec.ops if op.kind == "load")
        store = next(op for op in spec.ops if op.kind == "store")
        assert load.base != store.base

    def test_unclosed_recurrences_are_closed(self):
        spec = normalize(LoopSpec(
            name="r", n_recs=2,
            ops=(OpSpec("fadd", srcs=(("inv", "c0"), ("rec", 0, 1))),),
        ))
        assert sum(1 for op in spec.ops if op.kind == "close") == 2
        spec.build(MACHINE).check_well_formed()

    def test_every_mutator_produces_a_buildable_spec(self):
        pool = _pool(3)
        for name in MUTATORS:
            rng = random.Random(13)
            for parent in pool:
                spec = mutate(parent, rng, n=1, names=[name])
                _assert_mem_contract(spec)
                spec.build(MACHINE).check_well_formed()


class TestTokenCodec:
    def test_round_trip(self):
        for spec in _pool():
            assert spec_from_token(spec_to_token(spec)) == spec

    def test_token_is_filesystem_safe(self):
        token = spec_to_token(_pool(1)[0])
        assert all(c.isalnum() or c in "-_" for c in token)


class TestRemovePosition:
    def test_strictly_shrinks_or_stalls(self):
        spec = _pool(1)[0]
        while spec.n_ops > 1:
            nxt = remove_position(spec, 0)
            if nxt is None or nxt.n_ops >= spec.n_ops:
                break
            spec = nxt
        spec.build(MACHINE).check_well_formed()


def _result(scheduler, **kw):
    base = dict(loop="fuzz:x", scheduler=scheduler, success=True,
                ii=4, min_ii=4, optimal=False)
    base.update(kw)
    return CellResult(**base)


class TestOracle:
    def test_clean_results_yield_no_violations(self):
        results = {"sgi": _result("sgi"), "most": _result("most", optimal=True)}
        assert check_results(results) == []

    def test_crash_layer(self):
        results = {"sgi": _result("sgi", success=False, error="Boom\nValueError: x")}
        kinds = [v.kind for v in check_results(results)]
        assert kinds == ["crash"]

    def test_timeout_is_not_a_crash(self):
        results = {"sgi": _result("sgi", success=False, error="deadline",
                                  timeout=True)}
        assert check_results(results) == []

    def test_giving_up_is_not_a_violation(self):
        results = {"most": _result("most", success=False, error=None, ii=None)}
        assert check_results(results) == []

    def test_verify_layer(self):
        results = {"rau": _result("rau", verify_errors=["SCHED001: late"])}
        violations = check_results(results)
        assert [v.kind for v in violations] == ["verify"]
        assert "SCHED001" in violations[0].detail

    def test_funcsim_layer(self):
        results = {"sgi": _result("sgi", funcsim_ok=False, funcsim_detail="diff")}
        assert [v.kind for v in check_results(results)] == ["funcsim"]

    def test_min_ii_layer(self):
        results = {"sgi": _result("sgi", ii=3, min_ii=5)}
        assert [v.kind for v in check_results(results)] == ["min_ii"]

    def test_optimality_layer_fires_only_on_proved_optimal(self):
        sgi = _result("sgi", ii=4)
        assert [v.kind for v in check_results(
            {"sgi": sgi, "most": _result("most", ii=6, optimal=True)}
        )] == ["optimality"]
        # Unproved or fallback results prove nothing.
        assert check_results(
            {"sgi": sgi, "most": _result("most", ii=6, optimal=False)}) == []
        assert check_results(
            {"sgi": sgi, "most": _result("most", ii=6, optimal=True,
                                         fallback=True)}) == []

    def test_all_kinds_are_documented(self):
        assert set(ORACLE_KINDS) == {"crash", "verify", "funcsim",
                                     "min_ii", "bound", "optimality",
                                     "agreement"}

    def test_bound_layer(self):
        results = {"sgi": _result("sgi", ii=3, min_ii=3, refined_bound=5)}
        violations = check_results(results)
        assert [v.kind for v in violations] == ["bound"]
        assert "refined bound=5" in violations[0].detail

    def test_bound_layer_skips_spilled_results(self):
        # Spill rounds rewrote the loop; the pristine certificates no
        # longer bind the achieved II.
        results = {"sgi": _result("sgi", ii=3, min_ii=3, refined_bound=5,
                                  spill_rounds=1)}
        assert check_results(results) == []

    def test_bound_layer_quiet_without_analysis(self):
        results = {"sgi": _result("sgi", ii=3, min_ii=3, refined_bound=None)}
        assert check_results(results) == []


class TestMinimizer:
    def test_reduces_to_predicate_core(self):
        spec = _pool(1)[0]
        rng = random.Random(5)
        for _ in range(6):
            spec = mutate(spec, rng, n=2)

        def has_fdiv(candidate):
            return any(op.kind == "fdiv" for op in candidate.ops)

        rng2 = random.Random(9)
        while not has_fdiv(spec):
            spec = mutate(spec, rng2, n=1, names=["add_compute", "change_opcode"])
        minimized, evaluations = minimize_spec(spec, has_fdiv)
        assert has_fdiv(minimized)
        assert minimized.n_ops <= spec.n_ops
        assert minimized.n_ops <= 4
        assert evaluations >= 1

    def test_flaky_predicate_returns_unreduced(self):
        spec = _pool(1)[0]
        minimized, evaluations = minimize_spec(spec, lambda s: False)
        assert minimized == normalize(spec)
        assert evaluations == 1

    def test_terminates_on_always_true_predicate(self):
        spec = _pool(1)[0]
        minimized, _ = minimize_spec(spec, lambda s: True, max_evaluations=80)
        minimized.build(MACHINE).check_well_formed()


class TestInjectionCalibration:
    """Each seeded fault must be caught by its designed oracle layer."""

    def _rec_bound_spec(self):
        shape = GeneratorConfig(n_compute=1, n_streams=1, n_stores=0,
                                n_recurrences=2)
        return normalize(random_spec(0, shape, name="recb",
                                     rng=random.Random(0)))

    def test_latency_injection_caught_by_min_ii_layer(self):
        verdict = evaluate_spec(self._rec_bound_spec(), ("sgi",),
                                inject="latency")
        assert any(v.kind == "min_ii" for v in verdict.violations)

    def test_sched_shift_injection_caught_by_verify_layer(self):
        verdict = evaluate_spec(self._rec_bound_spec(), ("sgi",),
                                inject="sched-shift")
        assert any(v.kind == "verify" for v in verdict.violations)

    def test_reg_clobber_injection_caught(self):
        shape = GeneratorConfig(n_compute=4, n_streams=2, n_stores=1,
                                n_recurrences=1)
        spec = normalize(random_spec(1, shape, name="clob",
                                     rng=random.Random(1)))
        verdict = evaluate_spec(spec, ("sgi",), inject="reg-clobber")
        assert any(v.kind in ("verify", "funcsim") for v in verdict.violations)

    def test_clean_spec_passes_every_layer(self):
        verdict = evaluate_spec(self._rec_bound_spec(), ("sgi", "most", "rau"))
        assert verdict.violations == []
        for result in verdict.results.values():
            assert result.verify_errors == []
            assert result.funcsim_ok is not False

    def test_unknown_injection_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(inject="nope")

    def test_injection_registry_names(self):
        assert set(INJECTIONS) == {"latency", "sched-shift", "reg-clobber"}


class TestCorpusIO:
    def test_entry_round_trips_through_disk(self, tmp_path):
        spec = _pool(1)[0]
        violation = Violation("verify", "sgi", "SCHED001: x")
        entry = CorpusEntry(
            name=entry_name(violation, "ab" * 10, "sched-shift"),
            spec=spec, expect="clean", violation=violation,
            injected_fault="sched-shift", schedulers=("sgi",),
            fingerprint="ab" * 10, n_ops=spec.n_ops,
        )
        write_entry(str(tmp_path), entry)
        loaded = load_entries(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0].spec == spec
        assert loaded[0].violation == violation
        assert loaded[0].injected_fault == "sched-shift"

    def test_entry_names_distinguish_faults(self):
        violation = Violation("funcsim", "sgi", "diff")
        plain = entry_name(violation, "0" * 12)
        injected = entry_name(violation, "0" * 12, "reg-clobber")
        assert plain != injected

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_entries(str(tmp_path / "nope")) == []


class TestDedupKey:
    def test_counts_are_not_root_cause_markers(self):
        a = Violation("funcsim", "sgi", "3 memory word(s) differ")
        b = Violation("funcsim", "sgi", "17 memory word(s) differ")
        assert _dedup_key(a) == _dedup_key(b)

    def test_rule_ids_are(self):
        a = Violation("verify", "sgi", "SCHED001: late")
        b = Violation("verify", "sgi", "REG002: overlap")
        assert _dedup_key(a) != _dedup_key(b)


@pytest.mark.fuzz
class TestEngine:
    def test_bounded_session_is_clean_and_deterministic(self, tmp_path):
        config = FuzzConfig(seconds=300.0, jobs=1, seed=5, max_loops=6,
                            write=False, corpus_dir=str(tmp_path))
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.ok and second.ok
        assert first.stats.loops == second.stats.loops == 6
        assert first.stats.coverage_keys == second.stats.coverage_keys
        assert first.stats.violations == 0

    def test_injected_session_writes_a_reproducer(self, tmp_path):
        config = FuzzConfig(seconds=300.0, jobs=1, seed=7, max_loops=10,
                            inject="sched-shift", schedulers=("sgi",),
                            corpus_dir=str(tmp_path), minimize_budget=40)
        report = run_fuzz(config)
        assert report.findings
        entries = load_entries(str(tmp_path))
        assert entries
        assert all(e.injected_fault == "sched-shift" for e in entries)
        assert all(e.n_ops <= 8 for e in entries)
