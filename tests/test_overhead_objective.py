"""Tests for the §5 extension: the overhead-minimising ILP objective."""

import pytest

from repro.core import Schedule, min_ii, pipeline_loop
from repro.ilp import SolverOptions, Status, solve_milp
from repro.machine import r8000
from repro.most import MostOptions, build_formulation, most_pipeline_loop
from repro.pipeline import pipeline_overhead
from repro.sim import DataLayout, run_pipelined, run_sequential

from .conftest import build_first_diff, build_sdot


def overhead_options(**kw):
    base = dict(time_limit=20.0, engine="scipy", priority_branching=False,
                objective="overhead")
    base.update(kw)
    return MostOptions(**base)


class TestOverheadFormulation:
    def test_stage_variable_bounds_all_ops(self, machine):
        loop = build_first_diff(machine)
        mii = min_ii(loop, machine)
        f = build_formulation(loop, machine, mii, minimize_overhead=True)
        result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        assert result.status is Status.OPTIMAL
        times = f.decode_times(result)
        sched = Schedule(loop=loop, machine=machine, ii=mii, times=times)
        sched.validate()
        stage_var = next(v for v in f.model.variables if v.name == "stages")
        assert result.value(stage_var) == pytest.approx(sched.n_stages)

    def test_overhead_cutoff_binds(self, machine):
        loop = build_sdot(machine)
        mii = min_ii(loop, machine)
        f = build_formulation(
            loop, machine, mii, minimize_overhead=True, overhead_cutoff=1
        )
        result = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        # One stage cannot hold the 10+ cycle critical path at II=4.
        assert result.status is Status.INFEASIBLE

    def test_minimises_stage_count(self, machine):
        loop = build_first_diff(machine)
        mii = min_ii(loop, machine)
        plain = build_formulation(loop, machine, mii)
        r_plain = solve_milp(plain.model, SolverOptions(engine="scipy", time_limit=20))
        s_plain = Schedule(
            loop=loop, machine=machine, ii=mii, times=plain.decode_times(r_plain)
        )
        f = build_formulation(loop, machine, mii, minimize_overhead=True)
        r = solve_milp(f.model, SolverOptions(engine="scipy", time_limit=20))
        s = Schedule(loop=loop, machine=machine, ii=mii, times=f.decode_times(r))
        assert s.n_stages <= s_plain.n_stages


class TestOverheadDriver:
    def test_driver_objective_switch(self, machine, sdot):
        res = most_pipeline_loop(sdot, machine, overhead_options())
        assert res.success and not res.fallback_used
        res.schedule.validate()

    def test_never_more_overhead_than_buffer_objective(self, machine):
        for builder in (build_sdot, build_first_diff):
            loop = builder(machine)
            buf = most_pipeline_loop(
                loop, machine,
                MostOptions(time_limit=20, engine="scipy", priority_branching=False),
            )
            ovh = most_pipeline_loop(loop, machine, overhead_options())
            if buf.ii != ovh.ii:
                continue
            o_buf = pipeline_overhead(buf.schedule, buf.allocation, machine).total
            o_ovh = pipeline_overhead(ovh.schedule, ovh.allocation, machine).total
            assert o_ovh <= o_buf, loop.name

    def test_functional_correctness(self, machine):
        loop = build_first_diff(machine)
        res = most_pipeline_loop(loop, machine, overhead_options())
        assert not res.fallback_used
        layout = DataLayout(res.loop, trip_count=20)
        assert run_sequential(res.loop, layout, 20).matches(
            run_pipelined(res.schedule, res.allocation, layout, 20)
        )

    def test_overhead_schedule_not_slower_at_short_trips(self, machine):
        # The point of the extension: short-trip performance (Section 4.6).
        loop = build_sdot(machine)
        buf = most_pipeline_loop(
            loop, machine,
            MostOptions(time_limit=20, engine="scipy", priority_branching=False),
        )
        ovh = most_pipeline_loop(loop, machine, overhead_options())
        if buf.ii != ovh.ii:
            pytest.skip("different IIs; overhead comparison not like-for-like")
        from repro.sim import simulate_pipelined

        layout_b = DataLayout(buf.loop, trip_count=8)
        layout_o = DataLayout(ovh.loop, trip_count=8)
        cb = simulate_pipelined(
            buf.schedule, layout_b, machine, trips=8,
            overhead=pipeline_overhead(buf.schedule, buf.allocation, machine),
        ).cycles
        co = simulate_pipelined(
            ovh.schedule, layout_o, machine, trips=8,
            overhead=pipeline_overhead(ovh.schedule, ovh.allocation, machine),
        ).cycles
        assert co <= cb + 1
