"""Run-history store and statistical trend layer (repro.obs.{history,stats,trend}).

All history fixtures here are synthetic payloads with *explicit*
``created_at`` stamps — the trend acceptance criteria (a 2× step lands
as ``step_change`` at the right run, ±10% noise never becomes ``drift``)
must hold with no wall-clock dependence at all.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.obs import stats
from repro.obs.diffbench import apply_trend_gating, diff_reports
from repro.obs.diffbench import main as diff_main
from repro.obs.history import HistoryStore, append_history, seed_from_baselines
from repro.obs.html import render_report, validate_html
from repro.obs.trend import (
    build_trend,
    classify_series,
    history_panel_data,
    trend_report,
    trend_with_payload,
)
from repro.obs.trend import main as trend_main

SHAS = ["%040x" % (0x1111 * (i + 1)) for i in range(8)]


def _payload(i, sgi_seconds, ii=5, name="pipeline"):
    """One synthetic BENCH payload: run ``i``, deterministic timestamp."""
    return {
        "name": name,
        "created_at": f"2026-07-{i + 1:02d}T00:00:00+00:00",
        "code_version": f"cv{i}",
        "provenance": {
            "git_sha": SHAS[i],
            "host_fingerprint": "testhost00ab",
            "python_version": "3.11",
            "scipy_version": None,
            "platform": "test",
        },
        "totals": {
            "by_scheduler": {"sgi": {"schedule_seconds": sgi_seconds}},
            "service": {
                "latency_ms": {"p50_ms": 2.0, "p99_ms": 9.0},
                "hit_rate": 0.8,
            },
        },
        "cells": [{
            "loop": "livermore:lk01_hydro", "scheduler": "sgi",
            "ii": ii, "schedule_seconds": sgi_seconds,
        }],
    }


def _store(tmp_path, seconds, **kwargs):
    store = HistoryStore(tmp_path)
    for i, s in enumerate(seconds):
        store.append(_payload(i, s, **kwargs))
    return store


# ----------------------------------------------------------------------
# History store
# ----------------------------------------------------------------------
def test_history_append_order_collisions_and_index(tmp_path):
    store = _store(tmp_path, [1.0, 1.1])
    # Appending the same payload again must not overwrite the record.
    third = store.append(_payload(1, 1.1))
    assert third.exists() and third.name.endswith("-1.json")

    runs = store.runs("pipeline")
    assert [r.sha12 for r in runs] == [SHAS[0][:12], SHAS[1][:12], SHAS[1][:12]]
    assert runs[0].created_at < runs[1].created_at

    index = json.loads((tmp_path / "pipeline" / "index.json").read_text())
    assert [r["file"] for r in index["runs"]] == [r.path.name for r in runs]
    assert store.names() == ["pipeline"]
    assert store.latest("pipeline").path == runs[-1].path
    assert store.runs("pipeline", last=2)[0].path == runs[1].path


def test_append_history_disabled_and_provenance_backfill(tmp_path):
    assert append_history(_payload(0, 1.0), history_dir=None) is None
    # A payload without provenance is stamped on the way in.
    bare = {"name": "pipeline", "created_at": "2026-07-01T00:00:00+00:00"}
    path = HistoryStore(tmp_path).append(bare)
    stored = json.loads(path.read_text())
    assert stored["provenance"]["host_fingerprint"]


def test_seed_from_baselines_is_idempotent(tmp_path):
    baseline = tmp_path / "baseline"
    baseline.mkdir()
    (baseline / "BENCH_pipeline.json").write_text(json.dumps(_payload(0, 1.0)))
    history = tmp_path / "history"
    first = seed_from_baselines(baseline, history)
    assert len(first) == 1
    assert seed_from_baselines(baseline, history) == []
    assert len(HistoryStore(history).runs("pipeline")) == 1


# ----------------------------------------------------------------------
# Rank statistics
# ----------------------------------------------------------------------
def test_mann_whitney_exact_small_samples():
    res = stats.mann_whitney_u([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
    assert res.exact
    # Only the two fully separated rank assignments are as extreme:
    # p = 2 * 1/C(6,3) = 0.1.
    assert res.p_value == pytest.approx(0.1)
    mirrored = stats.mann_whitney_u([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
    assert mirrored.p_value == pytest.approx(res.p_value)
    assert stats.mann_whitney_u([], [1.0]).p_value is None


def test_cliffs_delta_bounds_and_sign():
    assert stats.cliffs_delta([1.0, 2.0], [3.0, 4.0]) == 1.0
    assert stats.cliffs_delta([3.0, 4.0], [1.0, 2.0]) == -1.0
    assert stats.cliffs_delta([1.0, 2.0], [1.0, 2.0]) == 0.0
    assert stats.cliffs_delta([], [1.0]) is None


def test_bootstrap_ci_deterministic_and_degenerate():
    values = [1.0, 1.2, 0.9, 1.5, 1.1]
    assert stats.bootstrap_ci(values) == stats.bootstrap_ci(values)
    lo, hi = stats.bootstrap_ci(values)
    assert lo <= stats.median(values) <= hi
    assert stats.bootstrap_ci([3.0]) == (3.0, 3.0)
    assert stats.bootstrap_ci([]) is None


def test_kendall_tau_monotone_series():
    assert stats.kendall_tau([1.0, 2.0, 3.0, 4.0]) == 1.0
    assert stats.kendall_tau([4.0, 3.0, 2.0, 1.0]) == -1.0
    assert abs(stats.kendall_tau([1.0, 3.0, 2.0, 4.0])) < 1.0
    assert stats.kendall_tau([1.0]) is None


# ----------------------------------------------------------------------
# Series classification — the acceptance gates
# ----------------------------------------------------------------------
def test_classify_insufficient_and_constant():
    assert classify_series([1.0, 2.0, 3.0]).classification == "stable"
    assert "insufficient" in classify_series([1.0, 2.0, 3.0]).detail
    assert classify_series([5.0] * 6).detail == "constant"


def test_injected_2x_step_lands_at_the_right_run():
    verdict = classify_series([1.0, 1.02, 0.98, 2.05, 2.1])
    assert verdict.classification == "step_change"
    assert verdict.changepoint == 3
    assert verdict.direction == "up"
    assert verdict.rel_change == pytest.approx(1.075, rel=0.05)

    down = classify_series([2.0, 2.1, 1.95, 1.0, 0.98, 1.02])
    assert down.classification == "step_change"
    assert down.changepoint == 3 and down.direction == "down"


def test_step_in_the_newest_run_is_detectable():
    """The ``repro diff --trend`` case: the fresh run is the step."""
    verdict = classify_series([1.0, 1.02, 0.98, 1.01, 2.2])
    assert verdict.classification == "step_change"
    assert verdict.changepoint == 4


def test_pure_noise_is_never_drift_or_step():
    rng = random.Random(1996)
    for _ in range(40):
        series = [1.0 * (1.0 + rng.uniform(-0.10, 0.10)) for _ in range(6)]
        verdict = classify_series(series)
        assert verdict.classification in ("stable", "noisy"), (series, verdict)


def test_monotone_ramp_is_drift_not_step():
    verdict = classify_series([1.0, 1.15, 1.32, 1.5, 1.7, 1.9])
    assert verdict.classification == "drift"
    assert verdict.direction == "up"


def test_missing_runs_map_changepoint_to_run_index():
    verdict = classify_series([None, 1.0, 1.0, 2.0, 2.0, None, 2.0])
    assert verdict.classification == "step_change"
    assert verdict.changepoint == 3


# ----------------------------------------------------------------------
# Trend reports over stored runs
# ----------------------------------------------------------------------
def test_trend_report_attributes_step_to_commit_range(tmp_path):
    _store(tmp_path, [1.0, 1.02, 0.98, 2.05, 2.1])
    report = trend_report("pipeline", history_dir=tmp_path)
    entry = next(
        e for e in report.entries if e.metric == "sgi total schedule_seconds"
    )
    assert entry.verdict.classification == "step_change"
    assert entry.regression and not entry.improvement
    assert entry.commit_range == (SHAS[2][:12], SHAS[3][:12])
    assert not report.ok
    assert "REGRESSION" in report.formatted()

    cell_ii = next(
        e for e in report.entries if e.metric.endswith("× sgi II")
    )
    assert cell_ii.kind == "quality"
    assert cell_ii.verdict.classification == "stable"


def test_timing_step_down_is_an_improvement(tmp_path):
    _store(tmp_path, [2.0, 2.1, 1.95, 1.0, 0.98])
    report = trend_report("pipeline", history_dir=tmp_path)
    entry = next(
        e for e in report.entries if e.metric == "sgi total schedule_seconds"
    )
    assert entry.improvement and not entry.regression
    assert report.ok


def test_trend_with_payload_judges_fresh_run_last(tmp_path):
    _store(tmp_path, [1.0, 1.02, 0.98, 1.01])
    report = trend_with_payload(
        "pipeline", _payload(4, 2.2), history_dir=tmp_path
    )
    assert len(report.runs) == 5
    entry = next(
        e for e in report.entries if e.metric == "sgi total schedule_seconds"
    )
    assert entry.verdict.classification == "step_change"
    assert entry.verdict.changepoint == len(report.runs) - 1


# ----------------------------------------------------------------------
# diff --trend gating
# ----------------------------------------------------------------------
def test_diff_trend_escalates_only_fresh_steps(tmp_path):
    _store(tmp_path, [1.0, 1.02, 0.98, 1.01])
    fresh = _payload(4, 2.2)
    baseline = _payload(3, 1.01)

    diff = diff_reports(baseline, fresh)
    assert diff.ok  # pairwise: quality clean, timing at most a warning
    trend = trend_with_payload("pipeline", fresh, history_dir=tmp_path)
    trend_dict = apply_trend_gating(diff, trend)
    assert any("introduced by this run" in line for line in diff.regressions)
    assert trend_dict["by_class"]["step_change"] >= 1

    # An old step (already in history before the fresh run) only warns.
    old_store = tmp_path / "old-step"
    _store(old_store, [1.0, 1.02, 2.0, 2.05])
    fresh2 = _payload(4, 2.02)
    diff2 = diff_reports(_payload(3, 2.05), fresh2)
    apply_trend_gating(
        diff2, trend_with_payload("pipeline", fresh2, history_dir=old_store)
    )
    assert not any("introduced by this run" in line for line in diff2.regressions)
    assert any(line.startswith("trend step_change") for line in diff2.warnings)


def test_diff_cli_trend_strict_fails_on_fresh_step(tmp_path, capsys):
    _store(tmp_path / "hist", [1.0, 1.02, 0.98, 1.01])
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_payload(3, 1.01)))
    new.write_text(json.dumps(_payload(4, 2.2)))

    rc = diff_main([
        str(old), str(new), "--trend",
        "--history-dir", str(tmp_path / "hist"), "--strict",
    ])
    assert rc == 1
    assert "introduced by this run" in capsys.readouterr().out

    # Same diff without the step: fresh run in line with history passes.
    new.write_text(json.dumps(_payload(4, 1.0)))
    assert diff_main([
        str(old), str(new), "--trend",
        "--history-dir", str(tmp_path / "hist"), "--strict",
    ]) == 0
    capsys.readouterr()

    # --json - emits the machine-readable diff (trend block included).
    rc = diff_main([
        str(old), str(new), "--trend",
        "--history-dir", str(tmp_path / "hist"), "--json", "-",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trend"]["name"] == "pipeline"
    assert len(payload["trend"]["runs"]) == 5


# ----------------------------------------------------------------------
# CLI + dashboard panel
# ----------------------------------------------------------------------
def test_trend_cli_check_and_json(tmp_path, capsys):
    _store(tmp_path, [1.0, 1.02, 0.98, 2.05, 2.1])
    assert trend_main(["pipeline", "--history-dir", str(tmp_path)]) == 0
    assert trend_main(["pipeline", "--history-dir", str(tmp_path), "--check"]) == 1
    capsys.readouterr()

    rc = trend_main([
        "pipeline", "--history-dir", str(tmp_path), "--json", "-",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["by_class"]["step_change"] >= 1
    assert payload["ok"] is False

    # Unknown names are an empty report, not an error.
    assert trend_main(["nonesuch", "--history-dir", str(tmp_path)]) == 0


def test_history_panel_renders_and_validates(tmp_path):
    _store(tmp_path, [1.0, 1.02, 0.98, 2.05, 2.1])
    data = history_panel_data(tmp_path)
    assert [h["name"] for h in data["histories"]] == ["pipeline"]
    panel = data["histories"][0]
    assert len(panel["runs"]) == 5
    assert panel["by_class"]["step_change"] >= 1
    assert any(r["regression"] for r in panel["entries"])

    html = render_report(meta={}, history=data)
    assert validate_html(html, ["history"]) == []
    assert "svg" in html  # sparklines made it in


def test_history_panel_placeholder_below_two_runs(tmp_path):
    empty = render_report(meta={}, history=history_panel_data(tmp_path))
    assert validate_html(empty, ["history"]) == []
    assert "Not enough stored runs yet" in empty

    _store(tmp_path, [1.0])
    single = render_report(meta={}, history=history_panel_data(tmp_path))
    assert validate_html(single, ["history"]) == []
