"""The serving cache tier: LRU bounds, in-flight pinning, disk pruning.

The load-bearing property is the pin contract: a key being solved right
now is *never* evicted, whatever the memory pressure — otherwise two
concurrent identical requests could both miss and solve the same cell
twice, breaking the dispatcher's single-flight accounting.  A hypothesis
property drives random put/get/pin/unpin interleavings against that
invariant; the deterministic tests cover the budgets, the tier
promotion, and the ``repro cache`` maintenance surface (stats + prune).
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.cache import ScheduleCache
from repro.serve.cachetier import LRUCache, TieredCache, payload_nbytes


def _payload(tag: str, pad: int = 0) -> dict:
    return {"tag": tag, "pad": "x" * pad}


# ----------------------------------------------------------------------
# LRU basics
# ----------------------------------------------------------------------
def test_lru_hit_miss_counters():
    lru = LRUCache(max_entries=4)
    assert lru.get("a") is None
    lru.put("a", _payload("a"))
    assert lru.get("a") == _payload("a")
    assert (lru.hits, lru.misses) == (1, 1)


def test_lru_entry_budget_evicts_coldest():
    lru = LRUCache(max_entries=2)
    lru.put("a", _payload("a"))
    lru.put("b", _payload("b"))
    lru.put("c", _payload("c"))
    assert "a" not in lru and "b" in lru and "c" in lru
    assert lru.evictions == 1


def test_lru_get_refreshes_recency():
    lru = LRUCache(max_entries=2)
    lru.put("a", _payload("a"))
    lru.put("b", _payload("b"))
    lru.get("a")  # a is now the hot one
    lru.put("c", _payload("c"))
    assert "a" in lru and "b" not in lru


def test_lru_byte_budget():
    one = payload_nbytes(_payload("k0", pad=100))
    lru = LRUCache(max_entries=100, max_bytes=int(one * 2.5))
    for i in range(4):
        lru.put(f"k{i}", _payload(f"k{i}", pad=100))
    assert len(lru) == 2 and lru.bytes <= lru.max_bytes
    assert "k3" in lru and "k2" in lru


def test_lru_overwrite_updates_bytes():
    lru = LRUCache(max_entries=4)
    lru.put("a", _payload("a", pad=500))
    big = lru.bytes
    lru.put("a", _payload("a"))
    assert len(lru) == 1 and lru.bytes < big
    assert lru.bytes == payload_nbytes(_payload("a"))


def test_lru_rejects_degenerate_budgets():
    with pytest.raises(ValueError):
        LRUCache(max_entries=0)
    with pytest.raises(ValueError):
        LRUCache(max_bytes=0)


# ----------------------------------------------------------------------
# Pinning: in-flight keys survive eviction
# ----------------------------------------------------------------------
def test_pinned_entry_survives_eviction_pressure():
    lru = LRUCache(max_entries=2)
    lru.put("a", _payload("a"))
    lru.pin("a")
    lru.put("b", _payload("b"))
    lru.put("c", _payload("c"))
    lru.put("d", _payload("d"))
    assert "a" in lru  # coldest, but pinned
    assert lru.pinned_skips > 0


def test_unpin_releases_and_reshrinks():
    lru = LRUCache(max_entries=1)
    lru.put("a", _payload("a"))
    lru.pin("a")
    lru.put("b", _payload("b"))
    # Everything over budget is pinned or hot; the cache may sit over
    # budget rather than evict the pinned key.
    assert "a" in lru
    lru.unpin("a")
    lru.put("c", _payload("c"))
    assert "a" not in lru and len(lru) == 1


def test_pin_is_reference_counted():
    lru = LRUCache(max_entries=1)
    lru.put("a", _payload("a"))
    lru.pin("a")
    lru.pin("a")
    lru.unpin("a")
    assert lru.pinned("a")
    lru.put("b", _payload("b"))
    assert "a" in lru
    lru.unpin("a")
    assert not lru.pinned("a")


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "pin", "unpin"]),
            st.sampled_from([f"k{i}" for i in range(6)]),
        ),
        max_size=60,
    ),
    max_entries=st.integers(min_value=1, max_value=4),
)
def test_property_pinned_keys_never_evicted(ops, max_entries):
    """Whatever the op interleaving, a key that is currently pinned and
    was inserted while pinned is still present."""
    lru = LRUCache(max_entries=max_entries)
    pins: dict = {}
    present_while_pinned: set = set()
    for op, key in ops:
        if op == "put":
            lru.put(key, _payload(key))
            if pins.get(key, 0) > 0:
                present_while_pinned.add(key)
        elif op == "get":
            lru.get(key)
        elif op == "pin":
            lru.pin(key)
            pins[key] = pins.get(key, 0) + 1
            if key in lru:
                present_while_pinned.add(key)
        elif op == "unpin" and pins.get(key, 0) > 0:
            lru.unpin(key)
            pins[key] -= 1
            if pins[key] == 0:
                present_while_pinned.discard(key)
        for pinned_key in present_while_pinned:
            assert pinned_key in lru, (pinned_key, ops)
    # And the budget holds whenever nothing pinned blocks eviction.
    if not any(count > 0 for count in pins.values()):
        assert len(lru) <= max_entries


# ----------------------------------------------------------------------
# The two tiers together
# ----------------------------------------------------------------------
def test_tiered_get_promotes_disk_hits(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    tier = TieredCache(lru=LRUCache(max_entries=8), disk=disk)
    disk.put("deadbeef00", _payload("cold"))
    assert tier.get("deadbeef00") == ("disk", _payload("cold"))
    # Promoted: the second read is a memory hit, no disk access.
    assert tier.get("deadbeef00") == ("memory", _payload("cold"))
    assert tier.lru.hits == 1


def test_tiered_put_writes_through(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    tier = TieredCache(lru=LRUCache(max_entries=1), disk=disk)
    tier.put("aa00", _payload("a"))
    tier.put("bb00", _payload("b"))  # evicts aa00 from memory
    assert "aa00" not in tier.lru
    assert tier.get("aa00") == ("disk", _payload("a"))


def test_tiered_memory_only_mode():
    tier = TieredCache(lru=LRUCache(max_entries=2), disk=None)
    assert tier.get("missing") is None
    tier.put("k", _payload("k"))
    assert tier.get("k") == ("memory", _payload("k"))
    assert tier.stats()["disk"] is None


# ----------------------------------------------------------------------
# Disk-tier maintenance: stats and pruning (``python -m repro cache``)
# ----------------------------------------------------------------------
def _fill(disk: ScheduleCache, n: int) -> list:
    keys = [f"{i:02x}{i:02x}feed{i:04x}" for i in range(n)]
    now = time.time()
    for age, key in enumerate(keys):
        disk.put(key, _payload(key, pad=50))
        # Oldest first: k0 is the stalest entry.
        path = disk._path(key)
        os.utime(path, (now - (n - age) * 100, now - (n - age) * 100))
    return keys


def test_disk_stats_counts_entries_bytes_shards(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    stats = disk.disk_stats()
    assert stats["entries"] == 0 and stats["bytes"] == 0
    keys = _fill(disk, 5)
    stats = disk.disk_stats()
    assert stats["entries"] == 5
    assert stats["bytes"] > 0
    assert stats["shards_used"] == len({k[:4] for k in keys})
    assert 0 < stats["shard_fill"] < 1


def test_prune_removes_oldest_first(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    keys = _fill(disk, 6)
    total = disk.disk_stats()["bytes"]
    per_entry = total // 6
    pruned = disk.prune(max_bytes=per_entry * 3)
    assert pruned["removed"] >= 3
    # The newest entries survive, the oldest go.
    assert disk.get(keys[-1]) is not None
    assert disk.get(keys[0]) is None
    assert disk.disk_stats()["bytes"] <= per_entry * 3
    assert pruned["kept"] == disk.disk_stats()["entries"]


def test_prune_sweeps_stale_tmp_files(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    _fill(disk, 2)
    shard = next(iter(disk.directory.glob("*/*")))
    stale = shard / "leftover.tmp"
    stale.write_text("partial write")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    fresh = shard / "inflight.tmp"
    fresh.write_text("being written right now")
    pruned = disk.prune(max_bytes=1 << 30)
    assert pruned["tmp_removed"] == 1
    assert not stale.exists() and fresh.exists()


def test_prune_to_zero_clears_empty_shard_dirs(tmp_path):
    disk = ScheduleCache(tmp_path / "cache")
    _fill(disk, 4)
    pruned = disk.prune(max_bytes=0)
    assert pruned["kept"] == 0
    assert disk.entry_count() == 0
    assert list(disk.directory.glob("*/*")) == []
