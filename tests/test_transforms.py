"""Tests for the front-end loop transformations (Section 2.1)."""

import pytest

from repro.core import min_ii, pipeline_loop, rec_mii
from repro.ir import DepKind, LoopBuilder
from repro.ir.transforms import (
    find_promotable_loads,
    interleave_reduction,
    promote_inter_iteration_loads,
    unroll,
)
from repro.machine import r8000
from repro.sim import DataLayout, run_pipelined, run_sequential

from .conftest import build_first_diff, build_sdot


def build_serial_sum(machine, trip=24):
    """s += x[i]: the serial accumulation that interleaving targets."""
    b = LoopBuilder("ssum", machine=machine, trip_count=trip)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=8)
    s.close(b.fadd(x, s.use()))
    b.live_out_value(s)
    return b.build()


class TestUnroll:
    def test_identity_factor(self, machine, sdot):
        assert unroll(sdot, 1) is sdot

    def test_op_count_scales(self, machine, sdot):
        u = unroll(sdot, 4)
        assert u.n_ops == 4 * sdot.n_ops
        assert u.trip_count == sdot.trip_count // 4

    def test_indivisible_trip_count_rejected(self, machine):
        loop = build_serial_sum(machine, trip=25)
        with pytest.raises(ValueError, match="divisible"):
            unroll(loop, 4)

    def test_memory_offsets_and_strides(self, machine):
        loop = build_first_diff(machine)
        u = unroll(loop, 2)
        loads = [op for op in u.memory_ops() if not op.mem.is_store]
        # Original strides of 8 become 16; copy 1 starts 8 bytes later.
        assert {m.mem.stride for m in loads} == {16}
        offsets = sorted(m.mem.offset for m in loads if m.mem.base == "y")
        assert offsets == [0, 8, 8, 16]

    def test_carried_arcs_rethreaded(self, machine):
        loop = build_serial_sum(machine)
        u = unroll(loop, 2)
        carried = [a for a in u.ddg.arcs if a.kind is DepKind.FLOW and a.omega > 0]
        intra = [
            a
            for a in u.ddg.arcs
            if a.kind is DepKind.FLOW and a.omega == 0 and a.value.startswith("s")
        ]
        # The serial chain alternates copies: one carried arc (copy1 ->
        # copy0 next iteration) and one intra-iteration arc (copy0 -> copy1).
        assert len(carried) == 1
        assert len(intra) == 1

    def test_unrolled_semantics_match_original(self, machine):
        # The load/store addresses and the accumulation sequence are
        # identical: N original iterations == N/f unrolled iterations.
        for builder in (build_serial_sum, build_sdot, build_first_diff):
            loop = builder(machine)
            trips = 24 if loop.trip_count % 24 == 0 else loop.trip_count
            u = unroll(loop, 2)
            layout_o = DataLayout(loop, trip_count=24, seed=5)
            layout_u = DataLayout(u, trip_count=12, seed=5)
            # Same bases in both layouts -> same concrete addresses only if
            # region sizes agree; force that by comparing live-out values
            # and store values in order.
            orig = run_sequential(loop, layout_o, 24)
            new = run_sequential(u, layout_u, 12)
            assert sorted(orig.memory.values()) == pytest.approx(
                sorted(new.memory.values())
            ), loop.name
            for name, value in orig.live_out.items():
                # The final value lands in the last copy's clone.
                candidates = [v for k, v in new.live_out.items() if k.split("~")[0] == name]
                assert any(value == pytest.approx(c) for c in candidates), loop.name

    def test_unrolled_loop_pipelines_and_verifies(self, machine):
        loop = unroll(build_serial_sum(machine), 2)
        res = pipeline_loop(loop, machine)
        assert res.success
        res.schedule.validate()
        layout = DataLayout(res.loop, trip_count=12)
        assert run_sequential(res.loop, layout, 12).matches(
            run_pipelined(res.schedule, res.allocation, layout, 12)
        )

    def test_unroll_raises_throughput(self, machine):
        # Serial sum: RecMII 4 dominates.  Unrolled x2, each new iteration
        # does two elements at the same recurrence cost per element pair.
        loop = build_serial_sum(machine)
        u = unroll(loop, 2)
        orig = pipeline_loop(loop, machine)
        new = pipeline_loop(u, machine)
        assert new.ii / 2 <= orig.ii  # cycles per element no worse


class TestInterleaveReduction:
    def test_rec_mii_drops(self, machine):
        loop = build_serial_sum(machine)
        assert rec_mii(loop) == 4
        il = interleave_reduction(loop, "s", ways=2)
        assert rec_mii(il) == 2
        il4 = interleave_reduction(loop, "s", ways=4)
        assert rec_mii(il4) == 1

    def test_requires_recurrence(self, machine, first_diff):
        with pytest.raises(ValueError):
            interleave_reduction(first_diff, "v1", ways=2)

    def test_unknown_value_rejected(self, machine, sdot):
        with pytest.raises(ValueError):
            interleave_reduction(sdot, "nope", ways=2)

    def test_interleaved_loop_pipelines_faster(self, machine):
        loop = build_serial_sum(machine)
        il = interleave_reduction(loop, "s", ways=4)
        orig = pipeline_loop(loop, machine)
        new = pipeline_loop(il, machine)
        assert new.ii < orig.ii

    def test_identity_ways(self, machine):
        loop = build_serial_sum(machine)
        assert interleave_reduction(loop, "s", ways=1) is loop


class TestLoadPromotion:
    def _rolling_loop(self, machine):
        """y[i] = x[i] + x[i-1]: x[i-1] was x[i] one iteration ago."""
        b = LoopBuilder("rolling", machine=machine, trip_count=30)
        cur = b.load("x", offset=0, stride=8)
        prev = b.load("x", offset=-8, stride=8)
        b.store("y", b.fadd(cur, prev), offset=0, stride=8)
        return b.build()

    def test_pairs_found(self, machine):
        loop = self._rolling_loop(machine)
        pairs = find_promotable_loads(loop)
        assert pairs == [(0, 1)]

    def test_promotion_removes_load(self, machine):
        loop = self._rolling_loop(machine)
        promoted = promote_inter_iteration_loads(loop)
        assert promoted.n_ops == loop.n_ops - 1
        assert len(promoted.memory_ops()) == len(loop.memory_ops()) - 1
        carried = [a for a in promoted.ddg.arcs if a.omega > 0 and a.kind is DepKind.FLOW]
        assert carried, "the reuse must become a loop-carried value"

    def test_promoted_loop_pipelines_and_selfchecks(self, machine):
        loop = self._rolling_loop(machine)
        promoted = promote_inter_iteration_loads(loop)
        res = pipeline_loop(promoted, machine)
        assert res.success
        res.schedule.validate()
        layout = DataLayout(res.loop, trip_count=30)
        assert run_sequential(res.loop, layout, 30).matches(
            run_pipelined(res.schedule, res.allocation, layout, 30)
        )

    def test_promotion_reduces_memory_pressure(self, machine):
        # 4 rolling streams: 8 loads -> 4 after promotion; ResMII halves.
        b = LoopBuilder("rolling4", machine=machine, trip_count=30)
        total = None
        for k in range(4):
            cur = b.load(f"x{k}", offset=0, stride=8)
            prev = b.load(f"x{k}", offset=-8, stride=8)
            t = b.fadd(cur, prev)
            total = t if total is None else b.fadd(total, t)
        b.store("y", total, offset=0, stride=8)
        loop = b.build()
        promoted = promote_inter_iteration_loads(loop)
        assert min_ii(promoted, machine) <= min_ii(loop, machine)
        assert len(promoted.memory_ops()) == 5

    def test_noop_without_candidates(self, machine, sdot):
        assert promote_inter_iteration_loads(sdot) is sdot


class TestUnrollLimitations:
    def test_multi_distance_use_rejected(self, machine):
        # One op reading the same value at two carried distances cannot be
        # renamed per copy unambiguously; unroll must refuse loudly.
        b = LoopBuilder("multi", machine=machine, trip_count=24)
        s = b.recurrence("s")
        s.close(b.fadd(s.use(distance=1), s.use(distance=2)))
        loop = b.build()
        with pytest.raises(ValueError, match="several iteration distances"):
            unroll(loop, 2)
