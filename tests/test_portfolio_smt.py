"""The optional-dependency seam around the Z3 SMT backend.

Two layers: seam tests that run *everywhere* (requesting smt without z3
is a recorded skip, never a crash), and the backend's own behaviour
tests, skip-marked via ``importorskip`` so a z3-less environment reports
them as skipped — visibly absent, not silently missing.  The CI matrix
runs this file both with and without ``z3-solver`` installed.
"""

from __future__ import annotations

import pytest

from repro.core import min_ii
from repro.machine import r8000, single_issue
from repro.portfolio import build_modulo_formulation, check_witness, smt_available
from repro.portfolio.answer import SAT, UNSAT
from repro.portfolio.driver import (
    PortfolioOptions,
    available_backend_names,
    portfolio_pipeline_loop,
)

from .conftest import build_daxpy, build_recurrence_chain
from .test_portfolio_backends import build_two_loads


class TestSeamWithoutAssumingZ3:
    """These must pass on every machine, z3 or not."""

    def test_smt_available_is_a_bool(self):
        assert isinstance(smt_available(), bool)

    def test_available_backends_reflect_the_seam(self):
        names = available_backend_names()
        assert names[:2] == ("cp", "ilp")
        assert ("smt" in names) == smt_available()

    def test_requesting_smt_is_a_clean_skip_or_a_run(self, machine, daxpy):
        options = PortfolioOptions(time_limit=2.0, backends="cp,ilp,smt")
        result = portfolio_pipeline_loop(daxpy, machine, options)
        assert result.success
        if smt_available():
            assert result.skipped_backends == ()
        else:
            assert result.skipped_backends == ("smt",)
            assert all(p.backend != "smt" for p in result.probes)

    def test_smt_only_without_z3_falls_back(self, machine, daxpy):
        if smt_available():
            pytest.skip("z3 installed: smt-only actually runs")
        options = PortfolioOptions(time_limit=2.0, backends="smt")
        result = portfolio_pipeline_loop(daxpy, machine, options)
        assert result.skipped_backends == ("smt",)
        assert result.fallback_used  # no usable backend: heuristic rescued it
        assert result.success

    def test_unknown_backend_is_an_error_not_a_skip(self):
        with pytest.raises(ValueError, match="unknown portfolio backends"):
            PortfolioOptions(backends="cp,cplex").backend_names()


class TestSmtBackend:
    """Behaviour of the backend itself; skipped without z3."""

    @pytest.fixture(autouse=True)
    def _require_z3(self):
        pytest.importorskip("z3")

    def test_sat_witness_passes_independent_check(self, machine, daxpy):
        from repro.portfolio.smt import solve_smt

        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        answer = solve_smt(f, time_limit=10.0)
        assert answer.answer == SAT
        assert check_witness(f, answer.times) == []

    def test_unsat_below_res_mii(self):
        from repro.portfolio.smt import solve_smt

        machine = single_issue()
        loop = build_two_loads(machine)
        f = build_modulo_formulation(loop, machine, 1)
        if f.infeasible:
            pytest.skip("screened before solve")
        answer = solve_smt(f, time_limit=10.0)
        assert answer.answer == UNSAT

    def test_infeasible_formulation_short_circuits(self, machine):
        from repro.portfolio.smt import solve_smt

        loop = build_daxpy(machine)
        f = build_modulo_formulation(loop, machine, 1, stages=1)
        answer = solve_smt(f)
        assert answer.answer == UNSAT

    def test_agrees_with_cp_on_small_kernels(self, machine):
        from repro.portfolio.cp import solve_cp
        from repro.portfolio.smt import solve_smt

        for builder in (build_daxpy, build_recurrence_chain):
            loop = builder(machine)
            mii = min_ii(loop, machine)
            for ii in (max(1, mii - 1), mii):
                f = build_modulo_formulation(loop, machine, ii)
                if f.infeasible:
                    continue
                cp = solve_cp(f, max_nodes=50_000, time_limit=2.0)
                smt = solve_smt(f, time_limit=2.0)
                if cp.definitive and smt.definitive:
                    assert cp.answer == smt.answer, (loop.name, ii)

    def test_three_way_portfolio_race(self, machine, daxpy):
        options = PortfolioOptions(time_limit=5.0, backends="cp,ilp,smt",
                                   cross_check=True)
        result = portfolio_pipeline_loop(daxpy, machine, options)
        assert result.success
        assert result.disagreements == []
        backends_seen = {p.backend for p in result.probes if p.ii == result.ii}
        assert backends_seen == {"cp", "ilp", "smt"}
