"""Tests for the ILP modelling layer and branch-and-bound MILP solver."""

import numpy as np
import pytest

from repro.ilp import Model, Sense, SolverOptions, Status, solve_milp


def knapsack(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}", binary=True) for i in range(len(values))]
    m.add_constraint({x: w for x, w in zip(xs, weights)}, Sense.LE, capacity)
    m.set_objective({x: v for x, v in zip(xs, values)}, minimize=False)
    return m, xs


class TestModel:
    def test_binary_var_bounds(self):
        m = Model()
        x = m.add_var("x", binary=True)
        assert x.lb == 0 and x.ub == 1 and x.integer

    def test_to_arrays_shapes(self):
        m, xs = knapsack([1, 2], [1, 1], 1)
        c, A_ub, b_ub, A_eq, b_eq, bounds = m.to_arrays()
        assert c.shape == (2,)
        assert A_ub.shape == (1, 2)
        assert A_eq is None
        assert len(bounds) == 2

    def test_maximize_negates_costs(self):
        m, xs = knapsack([3, 5], [1, 1], 2)
        c, *_ = m.to_arrays()
        assert c[0] == -3 and c[1] == -5

    def test_ge_constraints_flip(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10)
        m.add_constraint({x: 1.0}, Sense.GE, 4.0)
        _, A_ub, b_ub, *_ = m.to_arrays()
        assert A_ub[0, 0] == -1.0 and b_ub[0] == -4.0

    def test_extra_bounds_tighten(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10)
        *_, bounds = m.to_arrays({x.index: (2.0, 5.0)})
        assert bounds[0] == (2.0, 5.0)


class TestBranchAndBound:
    def test_knapsack_optimal(self):
        # values 6,5,4 / weights 4,3,2, cap 5 -> pick {5,4} = 9.
        m, xs = knapsack([6, 5, 4], [4, 3, 2], 5)
        result = solve_milp(m, SolverOptions(engine="bnb"))
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(9.0)
        assert result.value(xs[0]) == pytest.approx(0.0)

    def test_infeasible_detected(self):
        m = Model()
        x = m.add_var("x", binary=True)
        m.add_constraint({x: 1.0}, Sense.GE, 2.0)
        result = solve_milp(m, SolverOptions(engine="bnb"))
        assert result.status is Status.INFEASIBLE
        assert not result.has_solution

    def test_integer_rounding_needed(self):
        # LP relaxation is fractional; MILP optimum differs.
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10, integer=True)
        m.add_constraint({x: 2.0, y: 2.0}, Sense.LE, 7.0)
        m.set_objective({x: 1.0, y: 1.0}, minimize=False)
        result = solve_milp(m, SolverOptions(engine="bnb"))
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_scipy_milp(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        values = rng.integers(1, 12, n).tolist()
        weights = rng.integers(1, 8, n).tolist()
        cap = int(sum(weights) * 0.4)
        m1, _ = knapsack(values, weights, cap)
        m2, _ = knapsack(values, weights, cap)
        ours = solve_milp(m1, SolverOptions(engine="bnb"))
        ref = solve_milp(m2, SolverOptions(engine="scipy"))
        assert ours.status is Status.OPTIMAL
        assert ref.status is Status.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective)

    def test_first_solution_stops_early(self):
        m, _ = knapsack(list(range(1, 13)), [1] * 12, 6)
        full = solve_milp(m, SolverOptions(engine="bnb"))
        m2, _ = knapsack(list(range(1, 13)), [1] * 12, 6)
        quick = solve_milp(m2, SolverOptions(engine="bnb", first_solution=True))
        assert quick.status is Status.FEASIBLE
        assert quick.nodes <= full.nodes
        # A first solution may be suboptimal.
        assert quick.objective <= full.objective + 1e-9

    def test_node_limit_returns_unsolved_or_feasible(self):
        m, _ = knapsack(list(range(1, 15)), [2] * 14, 9)
        result = solve_milp(m, SolverOptions(engine="bnb", max_nodes=1))
        assert result.status in (Status.UNSOLVED, Status.FEASIBLE)

    def test_branch_priority_changes_exploration(self):
        # With first_solution, the branch priority determines which
        # solution is found first.
        m, xs = knapsack([5, 5], [1, 1], 1)
        r1 = solve_milp(
            m,
            SolverOptions(
                engine="bnb",
                first_solution=True,
                branch_up_first=True,
                branch_priority=[xs[0].index, xs[1].index],
            ),
        )
        assert r1.has_solution

    def test_equality_constraints(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=5, integer=True)
        y = m.add_var("y", lb=0, ub=5, integer=True)
        m.add_constraint({x: 1.0, y: 1.0}, Sense.EQ, 4.0)
        m.set_objective({x: 1.0, y: 2.0}, minimize=True)
        result = solve_milp(m, SolverOptions(engine="bnb"))
        assert result.objective == pytest.approx(4.0)  # x=4, y=0

    def test_continuous_variables_kept_fractional(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=1, integer=True)
        y = m.add_var("y", lb=0, ub=10)  # continuous
        m.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 2.5)
        m.set_objective({x: 1.0, y: 1.0}, minimize=False)
        result = solve_milp(m, SolverOptions(engine="bnb"))
        assert result.objective == pytest.approx(2.5)
        # x must be integral; y absorbs the fractional remainder.
        assert result.value(x) in (0.0, 1.0)
        assert result.value(y) == pytest.approx(2.5 - result.value(x))


class TestExhaustiveCrossCheck:
    @pytest.mark.parametrize("seed", range(4))
    def test_bnb_matches_exhaustive_enumeration(self, seed):
        """On tiny instances, brute force over all assignments must agree
        with the branch-and-bound optimum."""
        rng = np.random.default_rng(100 + seed)
        n = 8
        values = rng.integers(1, 20, n).tolist()
        weights = rng.integers(1, 10, n).tolist()
        cap = int(sum(weights) * 0.45)
        best = 0
        for mask in range(1 << n):
            w = sum(weights[i] for i in range(n) if mask >> i & 1)
            if w <= cap:
                v = sum(values[i] for i in range(n) if mask >> i & 1)
                best = max(best, v)
        model, _ = knapsack(values, weights, cap)
        result = solve_milp(model, SolverOptions(engine="bnb"))
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(best)
