"""Tests for the loop builder DSL and memory dependence analysis."""

import pytest

from repro.ir import DepKind, LoopBuilder, OpClass
from repro.machine import r8000

from .conftest import build_recurrence_chain, build_sdot


class TestBuilderBasics:
    def test_flow_arcs_have_producer_latency(self):
        m = r8000()
        b = LoopBuilder("t", machine=m)
        x = b.load("x")
        y = b.fadd(x, b.invariant("c"))
        b.store("o", y)
        loop = b.build()
        flow = [a for a in loop.ddg.arcs if a.kind is DepKind.FLOW]
        by_pair = {(a.src, a.dst): a for a in flow}
        assert by_pair[(0, 1)].latency == m.latency(OpClass.LOAD)
        assert by_pair[(1, 2)].latency == m.latency(OpClass.FADD)

    def test_invariants_are_live_in(self):
        b = LoopBuilder("t")
        x = b.load("x")
        b.store("o", b.fmul(x, b.invariant("a")))
        loop = b.build()
        assert "a" in loop.live_in

    def test_well_formedness_enforced(self, machine):
        loop = build_sdot(machine)
        loop.check_well_formed()  # should not raise

    def test_unclosed_recurrence_rejected(self):
        b = LoopBuilder("t")
        s = b.recurrence("s")
        b.fadd(s.use(), b.invariant("c"))
        with pytest.raises(ValueError, match="never closed"):
            b.build()

    def test_double_close_rejected(self):
        b = LoopBuilder("t")
        s = b.recurrence("s")
        v = b.fadd(s.use(), b.invariant("c"))
        s.close(v)
        with pytest.raises(ValueError, match="closed twice"):
            s.close(v)

    def test_op_mix(self, sdot):
        mix = sdot.op_mix()
        assert mix[OpClass.LOAD] == 2
        assert mix[OpClass.FMUL] == 1
        assert mix[OpClass.FADD] == 1


class TestRecurrences:
    def test_carried_arc_created(self, machine):
        loop = build_sdot(machine)
        carried = [a for a in loop.ddg.arcs if a.omega > 0 and a.kind is DepKind.FLOW]
        assert len(carried) == 1
        (arc,) = carried
        assert arc.src == arc.dst  # sum reduction: the add feeds itself
        assert arc.value == "s"

    def test_closing_op_defines_recurrence_name(self, machine):
        loop = build_sdot(machine)
        defs = loop.defs_of()
        assert "s" in defs
        assert loop.ops[defs["s"]].opclass is OpClass.FADD

    def test_multi_distance_recurrence(self):
        b = LoopBuilder("interleaved")
        s = b.recurrence("s")
        x = b.load("x")
        s.close(b.fadd(x, s.use(distance=2)))
        loop = b.build()
        carried = [a for a in loop.ddg.arcs if a.omega == 2]
        assert len(carried) == 1

    def test_recurrence_in_scc(self, machine):
        loop = build_recurrence_chain(machine)
        sccs = loop.ddg.nontrivial_sccs()
        assert len(sccs) == 1
        assert len(sccs[0]) == 2  # fsub and fmul form the cycle

    def test_zero_distance_use_rejected(self):
        b = LoopBuilder("t")
        s = b.recurrence("s")
        with pytest.raises(ValueError):
            s.use(distance=0)


class TestMemoryDependences:
    def test_store_then_later_load_same_stream(self):
        # store x[i]; load x[i-1] next iteration reads what was stored.
        b = LoopBuilder("t")
        v = b.load("y", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8)
        w = b.load("x", offset=-8, stride=8)
        b.store("z", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 1 and a.dst == 2 and a.omega == 1 for a in mem)

    def test_disjoint_streams_no_dependence(self):
        b = LoopBuilder("t")
        v = b.load("y", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8)
        loop = b.build()
        assert not [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]

    def test_load_before_store_anti(self):
        # load x[i+1]; store x[i]: the store catches up next iteration.
        b = LoopBuilder("t")
        v = b.load("x", offset=8, stride=8)
        b.store("x", b.fadd(v, b.invariant("c")), offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 0 and a.dst == 2 and a.omega == 1 for a in mem)

    def test_load_load_never_conflicts(self):
        b = LoopBuilder("t")
        a1 = b.load("x", offset=0, stride=8)
        a2 = b.load("x", offset=0, stride=8)
        b.store("o", b.fadd(a1, a2), offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert not [a for a in mem if {a.src, a.dst} == {0, 1}]

    def test_explicit_alias_group(self):
        b = LoopBuilder("t")
        v = b.load("p", offset=None)
        st = b.store("q", v, offset=None)
        b.alias(v, st)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 0 and a.dst == 1 and a.omega == 0 for a in mem)
        assert any(a.src == 1 and a.dst == 0 and a.omega == 1 for a in mem)

    def test_indirect_without_alias_independent(self):
        b = LoopBuilder("t")
        v = b.load("p", offset=None)
        b.store("q", v, offset=None)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert not mem

    def test_fixed_location_store_serialises(self):
        b = LoopBuilder("t")
        v = b.load("x", offset=0, stride=8)
        b.store("cell", v, offset=0, stride=0)
        w = b.load("cell", offset=0, stride=0)
        b.store("o", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 1 and a.dst == 2 and a.omega == 0 for a in mem)
        assert any(a.src == 2 and a.dst == 1 and a.omega == 1 for a in mem)


class TestMemoryDependenceWidths:
    def test_partial_width_overlap_detected(self):
        # A double-precision store covers bytes [0,8); a single-precision
        # load at offset 4 reads inside it: must be serialised.
        b = LoopBuilder("widths")
        v = b.load("src", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8, width=8)
        w = b.load("x", offset=4, stride=8, width=4)
        b.store("o", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 1 and a.dst == 2 for a in mem)

    def test_adjacent_nonoverlapping_accesses_independent(self):
        b = LoopBuilder("adjacent")
        v = b.load("src", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8, width=4)
        w = b.load("x", offset=4, stride=8, width=4)  # bytes [4,8): disjoint
        b.store("o", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert not any({a.src, a.dst} == {1, 2} for a in mem)

    def test_carried_distance_two(self):
        # store x[i], load x[i-2]: flow dependence at distance 2.
        b = LoopBuilder("dist2")
        v = b.load("src", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8)
        w = b.load("x", offset=-16, stride=8)
        b.store("o", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert any(a.src == 1 and a.dst == 2 and a.omega == 2 for a in mem)

    def test_far_distances_dropped(self):
        # A dependence 20 iterations away can never bind at II >= 1 with
        # unit latencies; the analyser drops it to keep graphs sparse.
        b = LoopBuilder("far")
        v = b.load("src", offset=0, stride=8)
        b.store("x", v, offset=0, stride=8)
        w = b.load("x", offset=-160, stride=8)
        b.store("o", w, offset=0, stride=8)
        loop = b.build()
        mem = [a for a in loop.ddg.arcs if a.kind is DepKind.MEM]
        assert not any(a.src == 1 and a.dst == 2 for a in mem)
