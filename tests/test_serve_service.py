"""The scheduling service core: protocol, deadlines, single-flight.

Everything here drives :class:`repro.serve.service.SchedulerService`
directly (no sockets) with thread-mode workers (``jobs=0``), which is
both the fast path and the configuration that exercises the portable
off-main-thread deadline in :mod:`repro.exec.runner` — the satellite
that replaced the SIGALRM-only per-cell deadline.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.exec.cells import Cell
from repro.exec.runner import execute_cell
from repro.obs.service import LatencyStats, ServiceMetrics
from repro.serve.protocol import (
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_line,
    parse_schedule_request,
)
from repro.serve.service import SchedulerService, ServeConfig

LOOP = "livermore:lk01_hydro"


def _request(i="r1", **overrides):
    payload = {"id": i, "op": "schedule", "loop": LOOP, "scheduler": "sgi"}
    payload.update(overrides)
    payload.pop("op", None)
    return parse_schedule_request({"op": "schedule", **payload})


def _service(**overrides) -> SchedulerService:
    config = ServeConfig(jobs=0, cache_dir=None, **overrides)
    return SchedulerService(config)


async def _with_service(service, fn):
    await service.start()
    try:
        return await fn(service)
    finally:
        await service.stop(drain=False)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def test_parse_line_roundtrip():
    payload = {"id": "a", "op": "ping"}
    assert parse_line(encode(payload).decode()) == payload


def test_parse_line_rejects_garbage():
    with pytest.raises(ProtocolError):
        parse_line("{not json")
    with pytest.raises(ProtocolError):
        parse_line("[1, 2]")


@pytest.mark.parametrize(
    "mutation",
    [
        {"id": None},
        {"id": ""},
        {"scheduler": "gcc"},
        {"loop": None},                      # neither loop nor spec
        {"spec": "also-a-loop"},             # both loop and spec
        {"budget": -1.0},
        {"budget": True},
        {"options": "not-a-dict"},
        {"trips": [0]},
        {"trips": "many"},
        {"seed": 1.5},
        {"simulate": "yes"},
        {"verify": 1},
        {"frobnicate": True},                # unknown field
    ],
)
def test_parse_schedule_request_rejects(mutation):
    payload = {"id": "r1", "op": "schedule", "loop": LOOP, "scheduler": "sgi"}
    payload.update(mutation)
    payload = {k: v for k, v in payload.items() if v is not None or k in mutation}
    with pytest.raises(ProtocolError):
        parse_schedule_request(payload)


def test_parse_schedule_request_spec_token_becomes_fuzz_key():
    from repro.serve.loadgen import DEFAULT_FUZZ_CORPUS_DIR, corpus_spec_tokens

    tokens = corpus_spec_tokens(DEFAULT_FUZZ_CORPUS_DIR)
    assert tokens, "committed fuzz corpus should yield at least one spec"
    token = tokens[0][1]
    request = parse_schedule_request(
        {"id": "r1", "op": "schedule", "spec": token, "scheduler": "rau"}
    )
    assert request.loop == f"fuzz:{token}"
    cell = request.to_cell(10.0)
    assert cell.timeout == 10.0 and cell.scheduler == "rau"


def test_parse_schedule_request_rejects_bad_spec_token():
    with pytest.raises(ProtocolError):
        parse_schedule_request(
            {"id": "r1", "op": "schedule", "spec": "!!corrupt!!", "scheduler": "sgi"}
        )


def test_response_shapes():
    ok = ok_response("r1", {"ii": 4}, cached="memory", deduped=True)
    assert ok["ok"] and ok["result"] == {"ii": 4} and ok["cached"] == "memory"
    err = error_response("r1", "overloaded", "busy", retry_after=0.25)
    assert not err["ok"] and err["error"]["retry_after"] == 0.25
    with pytest.raises(AssertionError):
        error_response("r1", "no-such-code", "nope")


# ----------------------------------------------------------------------
# The portable deadline (repro.exec satellite)
# ----------------------------------------------------------------------
def _timeout_cell() -> dict:
    return Cell.make(
        LOOP, "sgi", {"_test_sleep": 30.0}, timeout=0.3,
        simulate=False, verify=False,
    ).to_dict()


def test_deadline_off_main_thread_matches_sigalrm_statuses():
    """`execute_cell` on an executor thread (no SIGALRM) must produce the
    same timeout/fallback statuses as the signal path on the main thread."""
    main = execute_cell(_timeout_cell(), in_worker=False)

    box = {}
    thread = threading.Thread(
        target=lambda: box.update(execute_cell(_timeout_cell(), in_worker=False))
    )
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive()

    for field in ("timeout", "fallback", "success", "error", "ii"):
        assert box[field] == main[field], field
    assert box["timeout"] is True
    assert box["fallback"] is True  # heuristic rescue, not an error


def test_deadline_off_main_thread_no_spurious_fire():
    """A cell that finishes inside its budget must not be interrupted
    afterwards by the watchdog timer."""
    cell = Cell.make(LOOP, "sgi", timeout=30.0, simulate=False, verify=False)
    box = {}
    thread = threading.Thread(
        target=lambda: box.update(execute_cell(cell.to_dict(), in_worker=False))
    )
    thread.start()
    thread.join(timeout=60)
    assert box["success"] and not box["timeout"] and box["error"] is None


# ----------------------------------------------------------------------
# Service behaviour
# ----------------------------------------------------------------------
def test_submit_matches_direct_execution():
    direct = execute_cell(
        _request().to_cell(ServeConfig().default_budget).to_dict(), in_worker=False
    )

    async def scenario(service):
        return await service.submit(_request())

    response = asyncio.run(_with_service(_service(), scenario))
    assert response["ok"] and not response["cached"]
    result = response["result"]
    for field in ("ii", "min_ii", "success", "timeout", "fallback",
                  "registers_used", "sim_cycles"):
        assert result[field] == direct[field], field
    assert response["latency_ms"] > 0


def test_memory_cache_hit_on_second_submit():
    async def scenario(service):
        first = await service.submit(_request("r1"))
        second = await service.submit(_request("r2"))
        return first, second, service.metrics

    first, second, metrics = asyncio.run(_with_service(_service(), scenario))
    assert first["ok"] and first["cached"] is False
    assert second["cached"] == "memory"
    assert second["result"]["cache_hit"] is True
    assert second["result"]["ii"] == first["result"]["ii"]
    assert (metrics.misses, metrics.memory_hits) == (1, 1)


def test_single_flight_dedup_solves_once():
    n = 6

    async def scenario(service):
        requests = [
            _request(f"r{i}", options={"_test_sleep": 0.3}) for i in range(n)
        ]
        responses = await asyncio.gather(
            *(service.submit(r) for r in requests)
        )
        return responses, service.metrics, service.pool.stats()

    responses, metrics, pool = asyncio.run(_with_service(_service(), scenario))
    assert all(r["ok"] for r in responses)
    assert pool["cells"] == 1  # one solve for six identical requests
    assert metrics.inflight_dedup == n - 1
    assert sum(1 for r in responses if r["deduped"]) == n - 1
    iis = {r["result"]["ii"] for r in responses}
    assert len(iis) == 1


def test_disk_tier_hit_after_lru_eviction(tmp_path):
    async def scenario(service):
        first = await service.submit(_request("r1"))
        # Evict the entry from the memory tier by force.
        service.cache.lru._entries.clear()
        service.cache.lru.bytes = 0
        second = await service.submit(_request("r2"))
        return first, second, service.metrics

    service = SchedulerService(
        ServeConfig(jobs=0, cache_dir=str(tmp_path / "cache"))
    )
    first, second, metrics = asyncio.run(_with_service(service, scenario))
    assert second["cached"] == "disk"
    assert metrics.disk_hits == 1
    assert second["result"]["ii"] == first["result"]["ii"]


def test_load_shedding_when_queue_full():
    async def scenario():
        service = _service(queue_limit=2)
        # No dispatcher: admission control in isolation.
        tasks = [
            asyncio.create_task(service.submit(_request(f"r{i}")))
            for i in range(2)
        ]
        await asyncio.sleep(0)
        shed = await service.submit(_request("r-overflow"))
        for task in tasks:
            task.cancel()
        return shed, service.metrics

    shed, metrics = asyncio.run(scenario())
    assert not shed["ok"]
    assert shed["error"]["code"] == "overloaded"
    assert shed["error"]["retry_after"] > 0
    assert metrics.shed == 1


def test_draining_service_refuses_new_work():
    async def scenario(service):
        await service.drain(timeout=0.1)
        return await service.submit(_request())

    response = asyncio.run(_with_service(_service(), scenario))
    assert not response["ok"]
    assert response["error"]["code"] == "shutting-down"


def test_budget_clamped_to_server_maximum():
    service = _service(max_budget=5.0, default_budget=2.0)
    assert service._clamped_budget(_request(budget=100.0)) == 5.0
    assert service._clamped_budget(_request(budget=1.0)) == 1.0
    assert service._clamped_budget(_request()) == 2.0


def test_unresolvable_loop_key_is_bad_request():
    async def scenario(service):
        return await service.submit(_request(loop="nosuchcorpus:zzz"))

    response = asyncio.run(_with_service(_service(), scenario))
    assert not response["ok"]
    assert response["error"]["code"] == "bad-request"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_latency_stats_percentiles():
    stats = LatencyStats()
    for ms in range(1, 101):
        stats.record(float(ms))
    assert stats.count == 100
    assert stats.percentile(50) == pytest.approx(50.0, abs=1.0)
    assert stats.percentile(99) == pytest.approx(99.0, abs=1.0)
    assert stats.max_ms == 100.0
    payload = stats.to_dict()
    assert payload["count"] == 100 and payload["p50_ms"] == stats.percentile(50)


def test_latency_stats_reservoir_stays_bounded():
    from repro.obs.service import MAX_SAMPLES

    stats = LatencyStats()
    for i in range(MAX_SAMPLES * 2 + 10):
        stats.record(float(i % 1000))
    assert stats.count == MAX_SAMPLES * 2 + 10
    assert len(stats._samples) <= MAX_SAMPLES


def test_service_metrics_to_dict_shape():
    metrics = ServiceMetrics()
    metrics.record_response("sgi", 12.0, schedule_seconds=0.01, error=False)
    metrics.memory_hits += 1
    metrics.misses += 1
    payload = metrics.to_dict()
    assert payload["responses"] == 1
    assert payload["cache"]["hit_rate"] == 0.5
    assert "sgi" in payload["by_scheduler"]
    assert payload["latency_ms"]["count"] == 1
