"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import Schedule, min_ii, pipeline_loop, rec_mii
from repro.eval.metrics import geometric_mean, weighted_relative_time
from repro.ir import LoopBuilder, MemRef, RegClass, relative_bank
from repro.machine import ModuloReservationTable, ReservationTable, r8000
from repro.regalloc import LiveRange
from repro.sim import DataLayout, run_pipelined, run_sequential
from repro.workloads import GeneratorConfig, random_loop

MACHINE = r8000()


class TestReservationProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.sampled_from(["mem", "fp", "issue"])),
            min_size=1,
            max_size=12,
        ),
        st.integers(2, 8),
    )
    def test_place_remove_roundtrip_restores_emptiness(self, placements, ii):
        mrt = ModuloReservationTable(ii, {"mem": 2, "fp": 2, "issue": 4})
        placed = []
        for cycle, resource in placements:
            table = ReservationTable.simple(resource)
            if mrt.fits(table, cycle):
                mrt.place(table, cycle)
                placed.append((table, cycle))
        for table, cycle in reversed(placed):
            mrt.remove(table, cycle)
        for slot in range(ii):
            for resource in ("mem", "fp", "issue"):
                assert mrt.used_at(slot, resource) == 0

    @given(st.integers(1, 40), st.integers(1, 6), st.integers(2, 12))
    def test_self_recurrence_rec_mii_is_exact_ceiling(self, latency, omega, _):
        b = LoopBuilder("t", machine=MACHINE)
        s = b.recurrence("s")
        x = b.load("x", offset=0, stride=8)
        # Manufacture the arc by closing over a carried use, then check the
        # bound on a synthetic arc via direct construction instead.
        s.close(b.fadd(x, s.use(distance=omega)))
        loop = b.build()
        # fadd latency 4 over distance omega.
        assert rec_mii(loop) == math.ceil(4 / omega)


class TestLiveRangeProperties:
    @given(
        st.integers(0, 30),
        st.integers(1, 31),
        st.integers(0, 30),
        st.integers(1, 31),
        st.integers(4, 32),
    )
    def test_overlap_symmetry(self, s1, l1, s2, l2, period):
        a = LiveRange("a", "a", RegClass.FP, s1 % period, l1, 1, l1)
        b = LiveRange("b", "b", RegClass.FP, s2 % period, l2, 1, l2)
        assert a.overlaps(b, period) == b.overlaps(a, period)

    @given(st.integers(0, 30), st.integers(1, 31), st.integers(4, 32))
    def test_full_length_ranges_always_overlap(self, start, length, period):
        a = LiveRange("a", "a", RegClass.FP, start % period, period, 1, period)
        b = LiveRange("b", "b", RegClass.FP, (start + 1) % period, length, 1, length)
        assert a.overlaps(b, period)

    @given(st.integers(0, 100), st.integers(1, 50), st.integers(0, 200), st.integers(8, 64))
    def test_point_containment_matches_unit_overlap(self, start, length, point, period):
        period = max(period, length + 1)
        a = LiveRange("a", "a", RegClass.FP, start % period, length, 1, length)
        unit = LiveRange("p", "p", RegClass.FP, point % period, 1, 1, 1)
        contained = ((point - start) % period) < length
        assert a.overlaps(unit, period) == contained


class TestBankProperties:
    @given(
        st.integers(0, 40).map(lambda k: k * 8),
        st.integers(0, 40).map(lambda k: k * 8),
        st.sampled_from([4, 8, 16, 24]),
        st.integers(0, 500).map(lambda k: k * 8),
        st.integers(0, 50),
    )
    def test_known_relative_bank_matches_concrete_addresses(
        self, off1, off2, stride, base, iteration
    ):
        m1 = MemRef(base="a", offset=off1, stride=stride)
        m2 = MemRef(base="a", offset=off2, stride=stride)
        rb = relative_bank(m1, m2)
        if rb is None:
            return
        b1 = (m1.address(base, iteration) >> 3) & 1
        b2 = (m2.address(base, iteration) >> 3) & 1
        assert (b1 ^ b2) == rb

    @given(
        st.integers(0, 20).map(lambda k: k * 8),
        st.integers(0, 20).map(lambda k: k * 8),
        st.sampled_from([8, 16]),
        st.integers(0, 1),
        st.integers(0, 1),
        st.integers(0, 40),
    )
    def test_cross_base_parity_prediction(self, off1, off2, stride, p1, p2, iteration):
        m1 = MemRef(base="a", offset=off1, stride=stride)
        m2 = MemRef(base="b", offset=off2, stride=stride)
        rb = relative_bank(m1, m2, {"a": p1, "b": p2})
        assert rb is not None
        base_a = 0x1000 + p1 * 8
        base_b = 0x9000 + p2 * 8
        b1 = (m1.address(base_a, iteration) >> 3) & 1
        b2 = (m2.address(base_b, iteration) >> 3) & 1
        assert (b1 ^ b2) == rb


class TestMetricsProperties:
    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=10), st.floats(0.1, 10.0))
    def test_geomean_scales_linearly(self, values, c):
        lhs = geometric_mean([v * c for v in values])
        rhs = c * geometric_mean(values)
        assert math.isclose(lhs, rhs, rel_tol=1e-9)

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=8))
    def test_relative_time_of_reference_is_one(self, cycles):
        weights = [1.0] * len(cycles)
        assert math.isclose(
            weighted_relative_time(weights, cycles, cycles), 1.0, rel_tol=1e-12
        )


@st.composite
def loop_configs(draw):
    return GeneratorConfig(
        n_compute=draw(st.integers(4, 14)),
        n_streams=draw(st.integers(1, 4)),
        n_stores=draw(st.integers(1, 2)),
        n_recurrences=draw(st.integers(0, 2)),
        p_fmadd=draw(st.sampled_from([0.0, 0.25, 0.5])),
        p_fdiv=draw(st.sampled_from([0.0, 0.08])),
        trip_count=12,
    )


class TestEndToEndProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), loop_configs())
    def test_pipelined_loops_always_valid_and_correct(self, seed, config):
        """The pillar invariant: any generated loop the pipeliner accepts
        yields a schedule meeting every constraint, whose register-
        allocated pipelined execution matches sequential semantics, with
        an II no smaller than MinII."""
        loop = random_loop(seed, config, MACHINE)
        res = pipeline_loop(loop, MACHINE)
        assert res.success, loop.name
        assert res.ii >= min_ii(loop, MACHINE)
        res.schedule.validate()
        layout = DataLayout(res.loop, trip_count=12, seed=seed)
        seq = run_sequential(res.loop, layout, 12)
        pipe = run_pipelined(res.schedule, res.allocation, layout, 12)
        assert seq.matches(pipe)


@st.composite
def mutation_plans(draw):
    """A parent seed plus a bounded sequence of named mutations."""
    import random as stdlib_random

    from repro.workloads import MUTATORS

    parent_seed = draw(st.integers(0, 5_000))
    mutator_names = draw(st.lists(st.sampled_from(sorted(MUTATORS)),
                                  min_size=1, max_size=5))
    rng_seed = draw(st.integers(0, 5_000))
    return parent_seed, mutator_names, stdlib_random.Random(rng_seed)


class TestMutationProperties:
    """The fuzzer's closure invariants: any mutation chain stays inside
    the buildable, analysable, verify-clean subset of loop IR."""

    @settings(max_examples=25, deadline=None)
    @given(mutation_plans(), loop_configs())
    def test_mutants_stay_normalized_and_buildable(self, plan, config):
        from repro.workloads import mutate, normalize, random_spec

        parent_seed, names, rng = plan
        parent = normalize(random_spec(parent_seed, config))
        spec = parent
        for name in names:
            spec = mutate(spec, rng, n=1, names=[name])
            assert normalize(spec) == spec
        spec.build(MACHINE).check_well_formed()

    @settings(max_examples=10, deadline=None)
    @given(mutation_plans(), loop_configs())
    def test_mutants_pipeline_verify_clean_above_min_ii(self, plan, config):
        """Mutate-then-pipeline is the fuzzer's oracle in miniature: the
        schedule must pass the independent verifier (enforced suite-wide
        by the autouse verify fixture) and respect the MinII bound."""
        from repro.workloads import mutate, normalize, random_spec

        parent_seed, names, rng = plan
        spec = normalize(random_spec(parent_seed, config))
        for name in names:
            spec = mutate(spec, rng, n=1, names=[name])
        loop = spec.build(MACHINE)
        res = pipeline_loop(loop, MACHINE)
        assert res.success, spec.name
        assert res.ii >= min_ii(loop, MACHINE)
        res.schedule.validate()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5_000), st.integers(0, 5_000))
    def test_crossover_of_buildable_parents_is_buildable(self, sa, sb):
        import random as stdlib_random

        from repro.workloads import crossover, normalize, random_spec

        config = GeneratorConfig(n_compute=5, n_streams=2, n_stores=1,
                                 n_recurrences=1)
        a = normalize(random_spec(sa, config))
        b = normalize(random_spec(sb, config))
        child = crossover(a, b, stdlib_random.Random(sa ^ sb))
        assert normalize(child) == child
        child.build(MACHINE).check_well_formed()


class TestOptimalityCrossCheck:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 5_000))
    def test_ilp_optimal_ii_lower_bounds_heuristic(self, seed):
        """The ILP's proven-optimal II can never exceed the heuristic's,
        and both respect MinII — the study's central sanity triangle."""
        from repro.most import MostOptions, most_pipeline_loop

        config = GeneratorConfig(n_compute=5, n_streams=2, n_stores=1,
                                 n_recurrences=1, trip_count=10)
        loop = random_loop(seed, config, MACHINE)
        heuristic = pipeline_loop(loop, MACHINE)
        optimal = most_pipeline_loop(
            loop, MACHINE,
            MostOptions(time_limit=20, engine="scipy", fallback=False,
                        minimize_buffers=False),
        )
        if not (heuristic.success and optimal.success and optimal.optimal):
            return  # solver budget ran out: nothing to compare
        lower = min_ii(loop, MACHINE)
        assert lower <= optimal.ii <= heuristic.ii
