"""Differential tests of the raw-speed campaign's hot-path rewrites.

The campaign's contract is *bit-identical outcomes, only speed moves*:

* :class:`PackedModuloReservationTable` must agree with the retained
  :class:`DictModuloReservationTable` on every ``fits/place/remove/used_at``
  observation — hypothesis drives random reservation tables, IIs and
  availability maps through identical operation sequences on both;
* memoized :class:`SccDistanceTables` (parametric Pareto profiles) must
  match the per-II Floyd-Warshall on every corpus loop at MinII..MinII+4;
* the branch-and-bound scheduler must produce identical schedules *and*
  identical search effort (placements/backtracks/prunes) with the dict
  tables swapped back in underneath it.

A regression test for the ``_mem_at_slot`` fix rides along: the old
``List.remove`` bookkeeping corrupted co-resident-memory-op tracking when
one op cycled through place/unplace repeatedly under backtracking.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.bnb import BnBConfig, _Attempt
from repro.core.distances import SccDistanceTables
from repro.core.minii import min_ii
from repro.core.priorities import production_orders
from repro.machine.descriptions import r8000
from repro.machine.resources import (
    DictModuloReservationTable,
    PackedModuloReservationTable,
    ReservationTable,
    ResourceUse,
)
from repro.workloads.livermore import livermore_kernels
from repro.workloads.recbound import recbound_kernels
from repro.workloads.spec92 import spec92_suite

MACHINE = r8000()

RESOURCES = ("issue", "mem", "fp", "fpdiv")

# A random reservation table: 1-5 uses over offsets 0-6, counts 1-3.
tables_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.sampled_from(RESOURCES), st.integers(1, 3)),
    min_size=1,
    max_size=5,
).map(lambda uses: ReservationTable(ResourceUse(o, r, c) for o, r, c in uses))

availability_strategy = st.fixed_dictionaries(
    {name: st.integers(0 if name == "fpdiv" else 1, 4) for name in RESOURCES}
)

# An operation script: (table_index, cycle) probes; each probe tries to
# place if it fits, and every third successful placement is removed again.
script_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(-20, 40)), min_size=1, max_size=40
)


class TestPackedVsDictMrt:
    @given(
        st.lists(tables_strategy, min_size=4, max_size=4),
        availability_strategy,
        st.integers(1, 12),
        script_strategy,
    )
    @settings(max_examples=200)
    def test_fits_place_remove_used_at_agree(self, tables, avail, ii, script):
        packed = PackedModuloReservationTable(ii, avail)
        plain = DictModuloReservationTable(ii, avail)
        placed = []
        for step, (t, cycle) in enumerate(script):
            table = tables[t]
            assert packed.fits(table, cycle) == plain.fits(table, cycle)
            if packed.fits(table, cycle):
                packed.place(table, cycle)
                plain.place(table, cycle)
                placed.append((table, cycle))
            if step % 3 == 2 and placed:
                table, cycle = placed.pop()
                packed.remove(table, cycle)
                plain.remove(table, cycle)
            for slot in range(ii):
                for resource in RESOURCES:
                    assert packed.used_at(slot, resource) == plain.used_at(slot, resource)

    @given(
        tables_strategy,
        availability_strategy,
        st.integers(1, 10),
        st.integers(-10, 20),
    )
    @settings(max_examples=200)
    def test_blocked_mask_matches_per_slot_probing(self, table, avail, ii, cycle):
        packed = PackedModuloReservationTable(ii, avail)
        if packed.fits(table, cycle):
            packed.place(table, cycle)
        lt = packed.lower(table)
        mask = packed.blocked_mask(lt)
        for slot in range(ii):
            assert bool((mask >> slot) & 1) == (not packed.fits_lowered(lt, slot))

    @given(tables_strategy, availability_strategy, st.integers(1, 8))
    @settings(max_examples=100)
    def test_remove_unplaced_raises_in_both(self, table, avail, ii):
        import pytest

        packed = PackedModuloReservationTable(ii, avail)
        plain = DictModuloReservationTable(ii, avail)
        with pytest.raises(ValueError):
            packed.remove(table, 0)
        with pytest.raises(ValueError):
            plain.remove(table, 0)

    def test_unknown_resource_raises_keyerror_in_both(self):
        import pytest

        table = ReservationTable.simple("warp_drive")
        for cls in (PackedModuloReservationTable, DictModuloReservationTable):
            mrt = cls(4, {"mem": 2})
            with pytest.raises(KeyError):
                mrt.fits(table, 0)

    def test_copy_is_independent_in_both(self):
        table = ReservationTable.simple("mem")
        for cls in (PackedModuloReservationTable, DictModuloReservationTable):
            mrt = cls(4, {"mem": 1})
            mrt.place(table, 0)
            clone = mrt.copy()
            clone.remove(table, 0)
            assert mrt.used_at(0, "mem") == 1
            assert clone.used_at(0, "mem") == 0


def _corpus():
    loops = livermore_kernels(MACHINE) + recbound_kernels(MACHINE)
    for bench in spec92_suite(MACHINE):
        loops.extend(bench.loops)
    return loops


class TestMemoizedDistances:
    def test_matches_per_ii_floyd_warshall_on_every_corpus_loop(self):
        for loop in _corpus():
            mii = min_ii(loop, MACHINE)
            for ii in range(mii, mii + 5):
                memoized = SccDistanceTables(loop, ii, memo=True)
                legacy = SccDistanceTables(loop, ii, memo=False)
                assert memoized.feasible == legacy.feasible, (loop.name, ii)
                for scc in loop.ddg.nontrivial_sccs():
                    for src in scc:
                        for dst in scc:
                            assert memoized.dist(src, dst) == legacy.dist(src, dst), (
                                loop.name,
                                ii,
                                src,
                                dst,
                            )

    def test_memo_is_shared_across_instances_of_one_loop(self):
        loop = next(lp for lp in livermore_kernels(MACHINE) if lp.ddg.nontrivial_sccs())
        SccDistanceTables.prime(loop)
        memo = loop.ddg._distance_memo
        SccDistanceTables(loop, min_ii(loop, MACHINE), memo=True)
        assert loop.ddg._distance_memo is memo


class TestBnBWithDictTables:
    def test_search_outcome_identical_under_dict_tables(self, monkeypatch):
        """Swap the dict MRT underneath the B&B: same schedule, same effort."""
        import repro.core.bnb as bnb_module

        loops = livermore_kernels(MACHINE)[:8]
        results = {}
        for label, impl in (
            ("packed", PackedModuloReservationTable),
            ("dict", DictModuloReservationTable),
        ):
            monkeypatch.setattr(bnb_module, "ModuloReservationTable", impl)
            per_loop = {}
            for loop in loops:
                ii = min_ii(loop, MACHINE)
                order = production_orders(loop, MACHINE)["FDMS"]
                attempt = _Attempt(loop, MACHINE, ii, order, BnBConfig(), None)
                result = attempt.run()
                per_loop[loop.name] = (
                    result.times,
                    result.placements,
                    result.backtracks,
                    dict(result.prunes),
                    result.max_depth,
                )
            results[label] = per_loop
        assert results["packed"] == results["dict"]


class TestMemAtSlotRegression:
    def test_place_unplace_churn_keeps_slot_tracking_exact(self):
        """Regression for the ``List.remove`` bookkeeping in ``_mem_at_slot``.

        Two memory ops sharing a modulo slot, with one cycling through
        place/unplace as happens under backtracking: the co-residency map
        feeding ``_cycle_is_risky`` must track exactly the placed ops
        (the count-aware structure also makes unplace O(1) instead of a
        linear list scan).
        """
        loop = next(
            lp
            for lp in livermore_kernels(MACHINE)
            if sum(op.is_memory for op in lp.ops) >= 2
        )
        ii = min_ii(loop, MACHINE)
        order = production_orders(loop, MACHINE)["FDMS"]
        attempt = _Attempt(loop, MACHINE, ii, order, BnBConfig(), None)
        a, b = [op for op in range(loop.n_ops) if attempt._is_mem[op]][:2]
        slot = 3 % ii
        attempt._place(a, slot)
        attempt._place(b, slot + ii)  # same modulo slot, different cycle
        assert attempt._mem_at_slot[slot] == {a: 1, b: 1}
        for _ in range(3):  # backtracking churn on ``a`` only
            attempt._unplace(a)
            assert attempt._mem_at_slot[slot] == {b: 1}
            attempt._place(a, slot)
        assert attempt._mem_at_slot[slot] == {a: 1, b: 1}
        attempt._unplace(b)
        attempt._unplace(a)
        assert attempt._mem_at_slot[slot] == {}
