"""Smoke tests: the CLI and every example script actually run."""

import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9000"])


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, f"examples/{name}", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "functional check: pipelined == sequential? True" in out
        assert "speedup" in out

    def test_memory_banks(self):
        out = run_example("memory_banks.py")
        assert "bank heuristics ENABLED" in out
        assert "speedup from the heuristics" in out

    def test_loop_transforms(self):
        out = run_example("loop_transforms.py")
        assert "faster steady state" in out
        assert "after load promotion" in out

    def test_ilp_anatomy(self):
        out = run_example("ilp_anatomy.py")
        assert "stage 2" in out
        assert "showdown" in out

    def test_livermore_showdown_subset(self):
        out = run_example(
            "livermore_showdown.py", "--kernels", "1,5,12", "--ilp-seconds", "5"
        )
        assert "lk05_tridiag" in out
        assert "columns:" in out

    def test_register_pressure(self):
        out = run_example("register_pressure.py")
        assert "spilled after" in out
        assert out.count("functional check: True") == 2

    def test_corpus_flag(self, capsys):
        assert main(["--corpus"]) == 0
        out = capsys.readouterr().out
        assert "Livermore kernel corpus" in out
        assert "SPEC92fp-like loop corpus" in out
