"""Tests for the bench-JSON layer and the CI regression checker."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.exec import (
    BENCH_CELL_FIELDS,
    BenchOptions,
    CellResult,
    bench_cells,
    figure_report,
    run_sweep,
    summarise,
    write_bench_json,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchOptions:
    def test_quick_narrows_the_grid(self):
        options = BenchOptions(quick=True)
        # recbound stays in the quick lane: it is only six loops, and it
        # is where the certified static bounds actually prune.
        assert options.corpora == ("livermore", "recbound")
        assert options.most_max_nodes <= 2000
        assert options.cell_timeout == 60.0

    def test_most_cells_are_node_limited(self):
        options = BenchOptions()
        most = options.scheduler_options("most")
        assert most["max_nodes"] == options.most_max_nodes
        assert options.scheduler_options("sgi") == {}

    def test_grid_shape(self):
        options = BenchOptions(quick=True, schedulers=("sgi", "rau"))
        cells = bench_cells(options)
        assert len(cells) == (24 + 6) * 2  # livermore + recbound
        assert all(cell.verify is False for cell in cells)


class TestSummarise:
    def _result(self, loop, scheduler, **kw):
        base = dict(
            loop=loop, scheduler=scheduler, success=True, ii=4, min_ii=4,
            schedule_seconds=0.01, wall_seconds=0.02,
        )
        base.update(kw)
        return CellResult(**base)

    def test_per_scheduler_accounting(self):
        results = [
            self._result("a", "sgi"),
            self._result("a", "most", schedule_seconds=1.0),
            self._result("b", "most", timeout=True, fallback=True),
        ]
        totals = summarise(results)
        assert totals["cells"] == 3
        assert totals["timeouts"] == 1 and totals["fallbacks"] == 1
        assert totals["by_scheduler"]["most"]["cells"] == 2
        assert totals["by_scheduler"]["sgi"]["at_min_ii"] == 1

    def test_cost_story_ratio_excludes_rescued_cells(self):
        results = [
            self._result("a", "sgi", schedule_seconds=0.01),
            self._result("a", "most", schedule_seconds=1.0),
            self._result("b", "sgi", schedule_seconds=0.01),
            self._result("b", "most", schedule_seconds=0.001, timeout=True, fallback=True),
        ]
        totals = summarise(results)
        # Native geomean sees only loop "a": 1.0 / 0.01 = 100x.
        assert totals["ilp_vs_heuristic_time_geomean_native"] == pytest.approx(100.0)
        assert totals["ilp_vs_heuristic_time_geomean"] < 100.0


class TestBenchEmission:
    def test_sweep_writes_the_contract_fields(self, tmp_path):
        options = BenchOptions(
            quick=True,
            schedulers=("rau",),
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            output_dir=tmp_path,
        )
        report, path = run_sweep("livermore", options, progress=None)
        assert path == tmp_path / "BENCH_sweep_livermore.json"
        payload = json.loads(path.read_text())
        assert payload["totals"]["cells"] == 24
        assert payload["totals"]["errors"] == 0
        assert payload["code_version"] == report["code_version"]
        for cell in payload["cells"]:
            for field in BENCH_CELL_FIELDS:
                assert field in cell, field

    def test_figure_report_round_trips(self, tmp_path):
        results = [CellResult(loop="l", scheduler="sgi", success=True, ii=3)]
        payload = figure_report("fig0", results)
        path = write_bench_json(payload, tmp_path)
        assert path.name == "BENCH_fig0.json"
        again = json.loads(path.read_text())
        assert again["cells"][0]["ii"] == 3
        assert again["totals"]["cells"] == 1


class TestCheckRegression:
    def _payload(self, cells, code_version="abc"):
        return {
            "code_version": code_version,
            "cells": cells,
            "totals": summarise([CellResult.from_dict(c) for c in cells]),
        }

    def _cell(self, loop="a", scheduler="sgi", **kw):
        base = CellResult(
            loop=loop, scheduler=scheduler, success=True, ii=4,
            schedule_seconds=0.1, sim_cycles={"default": 100.0},
        ).to_dict()
        base.update(kw)
        return base

    def test_clean_comparison(self):
        mod = _load_check_regression()
        payload = self._payload([self._cell()])
        regressions, warnings, infos = mod.compare(payload, payload, 2.0)
        assert not regressions and not warnings and not infos

    def test_quality_regressions_detected(self):
        mod = _load_check_regression()
        baseline = self._payload([self._cell(), self._cell(loop="b")])
        fresh = self._payload(
            [
                self._cell(ii=5),  # II up
                self._cell(loop="b", timeout=True, sim_cycles={"default": 150.0}),
            ]
        )
        regressions, _, _ = mod.compare(fresh, baseline, 2.0)
        text = "\n".join(regressions)
        assert "II regressed" in text
        assert "new timeout" in text
        assert "sim cycles regressed" in text

    def test_missing_cell_is_a_regression_new_cell_is_info(self):
        mod = _load_check_regression()
        baseline = self._payload([self._cell(), self._cell(loop="b")])
        fresh = self._payload([self._cell(), self._cell(loop="c")])
        regressions, _, infos = mod.compare(fresh, baseline, 2.0)
        assert any("disappeared" in r for r in regressions)
        assert any("new cell" in i for i in infos)

    def test_slow_scheduler_is_a_warning_not_a_regression(self):
        mod = _load_check_regression()
        baseline = self._payload([self._cell(schedule_seconds=0.1)])
        fresh = self._payload([self._cell(schedule_seconds=1.0)])
        regressions, warnings, _ = mod.compare(fresh, baseline, 2.0)
        assert not regressions
        assert any("schedule time up" in w for w in warnings)

    def test_committed_baseline_matches_the_quick_grid(self):
        """The repo baseline must stay in the quick-bench shape CI produces."""
        baseline_path = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_pipeline.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["quick"] is True
        assert baseline["totals"]["cells"] == (24 + 6) * 4  # + recbound
        assert baseline["totals"]["errors"] == 0
        schedulers = {c["scheduler"] for c in baseline["cells"]}
        assert schedulers == {"sgi", "most", "rau", "portfolio"}


class TestExperimentCellPlumbing:
    def test_experiments_expose_their_cells(self, tmp_path):
        from repro.eval.experiments import ExperimentConfig, fig7_static_quality

        config = ExperimentConfig(
            most_time_limit=2.0, jobs=2, cache_dir=str(tmp_path / "cache")
        )
        result = fig7_static_quality(config)
        assert len(result.cells) == 24 * 2  # sgi + most per kernel
        payload = figure_report(result.name, result.cells)
        assert payload["totals"]["cells"] == 48

    def test_experiment_cache_reused_across_runs(self, tmp_path):
        from repro.eval.experiments import ExperimentConfig, fig7_static_quality
        from repro.exec import ScheduleCache

        cache_dir = tmp_path / "cache"
        config = ExperimentConfig(most_time_limit=2.0, jobs=2, cache_dir=str(cache_dir))
        first = fig7_static_quality(config)
        second = fig7_static_quality(config)
        assert all(not r.cache_hit for r in first.cells)
        assert all(r.cache_hit for r in second.cells)
        assert first.summary == second.summary
