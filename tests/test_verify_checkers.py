"""Each verifier catches a seeded violation Schedule.validate() misses.

Every test here corrupts one artifact of a correctly pipelined loop in a
way the legacy in-schedule validation cannot see — a DDG lie, a dropped
op, a miscoloured range, a tampered listing, a moved base address — and
asserts the matching ``repro.verify`` rule fires.
"""

from __future__ import annotations

import re

import pytest

from repro.core import Schedule, min_ii, pipeline_loop
from repro.ir import LoopBuilder
from repro.machine import r8000, single_issue
from repro.pipeline.emit import emit_pipelined_code
from repro.sim import DataLayout
from repro.verify import (
    RULES,
    Severity,
    VerificationError,
    check_allocation,
    check_banks,
    check_emitted,
    check_schedule,
    lint_ddg,
    verify_all,
)

from .conftest import build_daxpy, build_sdot

pytestmark = pytest.mark.verify


@pytest.fixture
def pipelined(machine):
    """A clean daxpy pipeline: loop, schedule, allocation, emitted code."""
    res = pipeline_loop(build_daxpy(machine), machine, verify=False)
    assert res.success
    emitted = emit_pipelined_code(res.schedule, res.allocation)
    return res, emitted


def build_with_dead_load(machine):
    """daxpy plus one dead load: an op with no dependence arcs at all."""
    b = LoopBuilder("daxpy_dead", machine=machine, trip_count=100)
    a = b.invariant("a")
    x = b.load("x", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    r = b.fmadd(a, x, y)
    b.store("y", r, offset=0, stride=8)
    b.load("z", offset=0, stride=8)  # dead: no consumer, no arcs
    return b.build()


class TestCleanArtifactsPass:
    def test_verify_all_clean(self, pipelined, machine):
        res, emitted = pipelined
        report = verify_all(
            res.loop,
            schedule=res.schedule,
            allocation=res.allocation,
            emitted=emitted,
            machine=machine,
        )
        assert report.ok, report.formatted()

    def test_rules_catalogue_is_complete(self):
        families = {"DDG", "SCHED", "REG", "EMIT", "BANK", "BOUND"}
        assert {re.match(r"[A-Z]+", r).group() for r in RULES} == families


class TestDDGLint:
    def test_negative_latency_missed_by_validate(self, pipelined):
        """DDG002: a corrupt arc *loosens* t(b)-t(a) >= lat - II*omega, so
        the schedule still satisfies it and validate() stays silent."""
        res, _ = pipelined
        loop = res.loop
        arc = loop.ddg.arcs[0]
        object.__setattr__(arc, "latency", -3)
        res.schedule.validate()  # legacy blind spot: constraint got weaker
        report = lint_ddg(loop)
        assert "DDG002" in report.rules_hit()
        assert not report.ok

    def test_dangling_edge(self, machine):
        loop = build_daxpy(machine)
        arc = loop.ddg.arcs[0]
        object.__setattr__(arc, "dst", 99)
        assert "DDG001" in lint_ddg(loop).rules_hit()

    def test_self_dependence_omega_zero(self, machine):
        loop = build_sdot(machine)
        self_arcs = [a for a in loop.ddg.arcs if a.src == a.dst]
        assert self_arcs  # the recurrence
        object.__setattr__(self_arcs[0], "omega", 0)
        report = lint_ddg(loop)
        assert "DDG004" in report.rules_hit()


class TestScheduleChecker:
    def test_dropped_op_caught_by_validate(self, machine):
        """SCHED003: an arc-less op vanishing from the schedule is caught by
        the checker-backed validation, which walks the full op range."""
        loop = build_with_dead_load(machine)
        res = pipeline_loop(loop, machine, verify=False)
        assert res.success
        sched = res.schedule
        dead = next(
            op.index
            for op in loop.ops
            if not any(a.src == op.index or a.dst == op.index for a in loop.ddg.arcs)
        )
        del sched.times[dead]
        report = check_schedule(loop, machine, sched.ii, sched.times)
        assert "SCHED003" in report.rules_hit()
        with pytest.raises(VerificationError):
            sched.validate()

    def test_resource_overflow_reports_all_contributors(self, tiny_machine):
        loop = build_daxpy(tiny_machine)
        res = pipeline_loop(loop, tiny_machine, verify=False)
        assert res.success
        times = dict(res.schedule.times)
        a, b = loop.ops[0].index, loop.ops[1].index  # the two loads
        times[a] = times[b]  # single-issue: two ops in one modulo slot
        report = check_schedule(loop, tiny_machine, res.schedule.ii, times)
        overflow = report.by_rule("SCHED002")
        assert overflow
        assert {a, b} <= set(overflow[0].ops)  # every contributor named

    def test_ii_below_min_ii_audit(self, tiny_machine):
        loop = build_daxpy(tiny_machine)
        mii = min_ii(loop, tiny_machine)
        assert mii > 1
        res = pipeline_loop(loop, tiny_machine, verify=False)
        report = check_schedule(loop, tiny_machine, mii - 1, res.schedule.times)
        assert "SCHED004" in report.rules_hit()


class TestAllocationChecker:
    def test_shared_register_missed_by_validate(self, pipelined, machine):
        """REG002: validate() never looks at the colouring at all."""
        res, _ = pipelined
        alloc = res.allocation
        assert len(set(alloc.fp_assignment.values())) > 1
        for rng in alloc.fp_assignment:
            alloc.fp_assignment[rng] = 0  # everything into one register
        res.schedule.validate()  # schedule-level checks cannot notice
        report = check_allocation(
            res.loop, machine, res.schedule.ii, res.schedule.times, alloc
        )
        assert "REG002" in report.rules_hit()

    def test_register_outside_file(self, pipelined, machine):
        res, _ = pipelined
        alloc = res.allocation
        rng = next(iter(alloc.fp_assignment))
        alloc.fp_assignment[rng] = machine.fp_regs + 5
        report = check_allocation(
            res.loop, machine, res.schedule.ii, res.schedule.times, alloc
        )
        assert "REG003" in report.rules_hit()

    def test_missing_range(self, pipelined, machine):
        res, _ = pipelined
        alloc = res.allocation
        alloc.fp_assignment.pop(next(iter(alloc.fp_assignment)))
        report = check_allocation(
            res.loop, machine, res.schedule.ii, res.schedule.times, alloc
        )
        assert "REG001" in report.rules_hit()

    def test_kmin_too_small(self, pipelined, machine):
        res, _ = pipelined
        alloc = res.allocation
        if alloc.kmin == 1:
            pytest.skip("daxpy needs kmin > 1 for this seeding")
        alloc.kmin = 1
        report = check_allocation(
            res.loop, machine, res.schedule.ii, res.schedule.times, alloc
        )
        assert "REG004" in report.rules_hit()


class TestEmittedCodeChecker:
    def test_phantom_operand_missed_by_validate(self, pipelined, machine):
        """EMIT001: a source register nothing ever writes.  The schedule and
        the allocation are untouched, so validate() has nothing to object
        to — only the listing is wrong."""
        res, emitted = pipelined
        used = {
            int(m.group(1))
            for line in emitted.prologue + emitted.kernel + emitted.epilogue
            for m in re.finditer(r"\$f(\d+)", line)
        }
        phantom = next(n for n in range(machine.fp_regs) if n not in used)
        for i, line in enumerate(emitted.kernel):
            m = re.search(r"<- (\$f\d+)", line)
            if m:
                emitted.kernel[i] = line.replace(m.group(1), f"$f{phantom}", 1)
                break
        else:
            pytest.fail("no kernel instruction with a register source")
        res.schedule.validate()  # untampered schedule: still clean
        report = check_emitted(
            res.loop, res.schedule.ii, res.schedule.times, res.allocation, emitted
        )
        assert "EMIT001" in report.rules_hit()

    def test_dropped_kernel_instruction(self, pipelined):
        res, emitted = pipelined
        idx = next(
            i for i, line in enumerate(emitted.kernel) if "; op" in line
        )
        del emitted.kernel[idx]
        report = check_emitted(
            res.loop, res.schedule.ii, res.schedule.times, res.allocation, emitted
        )
        assert "EMIT003" in report.rules_hit()

    def test_incomplete_drain(self, pipelined):
        res, emitted = pipelined
        kept = []
        dropped = False
        for line in emitted.epilogue:
            if not dropped and "; op" in line:
                dropped = True
                continue
            kept.append(line)
        if not dropped:
            pytest.skip("schedule has no drain instructions")
        emitted.epilogue[:] = kept
        report = check_emitted(
            res.loop, res.schedule.ii, res.schedule.times, res.allocation, emitted
        )
        drains = [d for d in report.by_rule("EMIT003") if "drain" in d.message]
        assert drains


class TestBankChecker:
    def test_moved_base_missed_by_validate(self, machine):
        """BANK003/BANK001: the layout breaks a declared parity promise.
        No schedule even exists — nothing for validate() to check."""
        b = LoopBuilder("paired", machine=machine, trip_count=64)
        b.set_parity("x", 0)
        b.set_parity("y", 1)
        xv = b.load("x", offset=0, stride=16)
        yv = b.load("y", offset=0, stride=16)
        b.store("out", b.fadd(xv, yv), offset=0, stride=8)
        loop = b.build()

        clean = check_banks(loop)
        assert clean.ok, clean.formatted()

        layout = DataLayout(loop, trip_count=16)
        layout.bases["x"] += 8  # violate the promised parity
        report = check_banks(loop, layouts=[layout])
        assert "BANK003" in report.rules_hit()
        assert "BANK001" in report.rules_hit()
        assert not report.ok

    def test_risky_pair_warning(self, machine):
        b = LoopBuilder("unknown_banks", machine=machine, trip_count=64)
        xv = b.load("x", offset=0, stride=8)
        yv = b.load("y", offset=0, stride=8)
        b.store("out", b.fadd(xv, yv), offset=0, stride=8)
        loop = b.build()
        # Force both loads into the same modulo slot.
        times = {0: 0, 1: 4, 2: 8, 3: 14}
        report = check_banks(loop, ii=4, times=times)
        risky = report.by_rule("BANK002")
        assert risky
        assert all(d.severity is Severity.WARNING for d in risky)


class TestDriverIntegration:
    def test_verify_option_raises_on_corrupt_ddg(self, machine):
        loop = build_daxpy(machine)
        object.__setattr__(loop.ddg.arcs[0], "latency", -2)
        with pytest.raises(VerificationError) as exc:
            pipeline_loop(loop, machine, verify=True)
        assert "DDG002" in str(exc.value)

    def test_verify_off_is_silent(self, machine):
        loop = build_daxpy(machine)
        object.__setattr__(loop.ddg.arcs[0], "latency", -2)
        res = pipeline_loop(loop, machine, verify=False)
        assert res.success
