"""Focused unit tests for internal helpers across modules."""

import pytest

from repro.core import pipeline_loop
from repro.ir import DDG, Dependence, DepKind, LoopBuilder
from repro.machine import r8000
from repro.regalloc import InterferenceGraph, LiveRange, rename_kernel
from repro.ir.operations import RegClass
from repro.sim.functional import _use_omegas

from .conftest import build_sdot


class TestUseOmegas:
    def test_intra_iteration_uses_are_zero(self, machine, daxpy):
        omegas = _use_omegas(daxpy)
        for op in daxpy.ops:
            for pos, src in enumerate(op.srcs):
                if src in daxpy.live_in and src not in daxpy.defs_of():
                    assert omegas[op.index][pos] == 0

    def test_carried_use_distance(self, machine, sdot):
        omegas = _use_omegas(sdot)
        defs = sdot.defs_of()
        add = defs["s"]
        positions = [
            pos for pos, src in enumerate(sdot.ops[add].srcs) if src == "s"
        ]
        assert [omegas[add][p] for p in positions] == [1]

    def test_multi_distance_positional_assignment(self, machine):
        # fadd(s@1, s@2): distances must map to positions in order.
        b = LoopBuilder("multi", machine=machine)
        s = b.recurrence("s")
        s.close(b.fadd(s.use(distance=1), s.use(distance=2)))
        loop = b.build()
        omegas = _use_omegas(loop)
        add = loop.defs_of()["s"]
        assert sorted(omegas[add]) == [1, 2]


class TestInterferenceGraph:
    def test_edges_iff_overlap(self):
        ranges = [
            LiveRange("a", "a", RegClass.FP, 0, 3, 1, 3),
            LiveRange("b", "b", RegClass.FP, 2, 3, 1, 3),
            LiveRange("c", "c", RegClass.FP, 5, 2, 1, 2),
        ]
        graph = InterferenceGraph.build(ranges, period=8)
        assert "b" in graph.adjacency["a"]
        assert "c" not in graph.adjacency["a"]
        # b = [2,5) overlaps a = [0,3) but not c = [5,7) (half-open).
        assert graph.adjacency["b"] == {"a"}
        assert graph.degree("b") == 1

    def test_adjacency_is_symmetric(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        renamed = rename_kernel(res.schedule)
        fp = [r for r in renamed.ranges if r.reg_class is RegClass.FP]
        graph = InterferenceGraph.build(fp, renamed.period)
        for node, neighbours in graph.adjacency.items():
            for other in neighbours:
                assert node in graph.adjacency[other]


class TestDDGHeights:
    def test_pure_cycle_heights_zero(self):
        g = DDG(
            2,
            [
                Dependence(0, 1, latency=4, omega=0),
                Dependence(1, 0, latency=4, omega=1),
            ],
        )
        h = g.height_map()
        # Node 1 reaches nothing outside the cycle; carried arc ignored.
        assert h[1] == 0
        assert h[0] == 4

    def test_mem_arcs_count_toward_heights(self):
        g = DDG(
            2,
            [Dependence(0, 1, latency=3, omega=0, kind=DepKind.MEM)],
        )
        assert g.height_map()[0] == 3


class TestGeneratorShapes:
    def test_indirect_fraction(self, machine):
        from repro.workloads import GeneratorConfig, random_loop

        loop = random_loop(
            5, GeneratorConfig(n_streams=6, p_indirect=1.0), machine
        )
        loads = [op for op in loop.memory_ops() if not op.mem.is_store]
        assert all(not op.mem.is_direct for op in loads)

    def test_fdiv_probability_zero_means_none(self, machine):
        from repro.ir import OpClass
        from repro.workloads import GeneratorConfig, random_loop

        loop = random_loop(6, GeneratorConfig(n_compute=20, p_fdiv=0.0), machine)
        assert not [op for op in loop.ops if op.opclass is OpClass.FDIV]


class TestSimReports:
    def test_cycles_per_iteration(self, machine):
        from repro.sim import DataLayout, simulate_pipelined

        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        layout = DataLayout(loop, trip_count=100)
        rep = simulate_pipelined(res.schedule, layout, machine, trips=100)
        assert rep.cycles_per_iteration == pytest.approx(rep.cycles / 100)
        assert rep.memory_refs == 200
