"""Tests for the parallel cached experiment engine (repro.exec)."""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    Cell,
    CellResult,
    ExecEngine,
    ScheduleCache,
    canonical_options,
    cell_key,
    clear_loop_memo,
    code_version,
    corpus_loop_keys,
    execute_cell,
    fingerprint_loop,
    fingerprint_machine,
    resolve_loop,
)
from repro.exec.cells import LOOP_SOURCES
from repro.machine import r8000
from repro.most.scheduler import PAPER_TIME_LIMIT, MostOptions, SolveBudget

from .conftest import build_daxpy, build_sdot

#: Node-limited MOST options: deterministic under any CPU load.
MOST_OPTS = {"time_limit": 10.0, "engine": "scipy", "max_nodes": 500, "max_ops": 61}


class TestCells:
    def test_options_canonicalised(self):
        a = Cell.make("livermore:lk01_hydro", "sgi", {"b": 1, "a": 2})
        b = Cell.make("livermore:lk01_hydro", "sgi", {"a": 2, "b": 1})
        assert a == b
        assert a.options_json == canonical_options({"b": 1, "a": 2})

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Cell.make("livermore:lk01_hydro", "gcc")

    def test_round_trip(self):
        cell = Cell.make("scaling:16", "most", MOST_OPTS, trips=(10, 100), timeout=5.0)
        assert Cell.from_dict(cell.to_dict()) == cell
        result = CellResult(loop="scaling:16", scheduler="most", ii=4, sim_cycles={"default": 7.0})
        again = CellResult.from_dict(result.to_dict())
        assert again.ii == 4 and again.cycles() == 7.0

    def test_result_from_dict_tolerates_future_fields(self):
        payload = CellResult(loop="l", scheduler="sgi").to_dict()
        payload["a_field_from_the_future"] = 1
        assert CellResult.from_dict(payload).loop == "l"

    def test_corpus_keys_resolve(self, machine):
        keys = corpus_loop_keys("livermore")
        assert len(keys) == 24
        loop = resolve_loop(keys[0], machine)
        assert loop.name == keys[0].split(":")[1]
        with pytest.raises(ValueError):
            corpus_loop_keys("spec2000")

    def test_unknown_loop_source(self, machine):
        with pytest.raises(KeyError):
            resolve_loop("nonesuch:thing", machine)


class TestHashing:
    def test_loop_fingerprint_sensitive_to_ir(self, machine):
        assert fingerprint_loop(build_sdot(machine)) != fingerprint_loop(build_daxpy(machine))
        assert fingerprint_loop(build_sdot(machine)) == fingerprint_loop(build_sdot(machine))
        # Trip count is result-bearing (simulated cycles depend on it).
        assert fingerprint_loop(build_sdot(machine, trip_count=10)) != fingerprint_loop(
            build_sdot(machine, trip_count=20)
        )

    def test_machine_fingerprint_stable(self, machine):
        assert fingerprint_machine(machine) == fingerprint_machine(r8000())

    def test_code_version_is_a_hash(self):
        version = code_version()
        assert len(version) == 64  # sha256 hexdigest
        assert version == code_version()  # cached and stable in-process

    def test_cell_key_changes_with_every_input(self, machine):
        loop_fp = fingerprint_loop(build_sdot(machine))
        machine_fp = fingerprint_machine(machine)
        base = cell_key(loop_fp, machine_fp, "sgi", "{}", (), 0, True, None)
        assert cell_key(loop_fp, machine_fp, "most", "{}", (), 0, True, None) != base
        assert cell_key(loop_fp, machine_fp, "sgi", '{"a":1}', (), 0, True, None) != base
        assert cell_key(loop_fp, machine_fp, "sgi", "{}", (7,), 0, True, None) != base
        assert cell_key(loop_fp, machine_fp, "sgi", "{}", (), 1, True, None) != base


class TestCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, {"ii": 3})
        assert cache.get("k" * 64) == {"ii": 3}
        assert cache.stats.misses == 1 and cache.stats.hits == 1 and cache.stats.stores == 1
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        cache.put("a" * 64, {"ii": 3})
        path = next((tmp_path / "c").glob("*/*/*.json"))
        path.write_text("{not json")
        assert cache.get("a" * 64) is None
        assert cache.stats.invalid == 1


class TestEngine:
    def test_inline_cell_execution(self, tmp_path):
        engine = ExecEngine(jobs=1, cache=ScheduleCache(tmp_path / "c"))
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", verify=False)
        result = engine.run([cell])[cell]
        assert result.success and result.ii is not None
        assert result.ii >= result.min_ii
        assert result.n_ops > 0
        assert "default" in result.sim_cycles
        assert not result.cache_hit and result.cache_key

    def test_cache_hit_on_second_run(self, tmp_path):
        cache_dir = tmp_path / "c"
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", verify=False)
        first = ExecEngine(jobs=1, cache=ScheduleCache(cache_dir)).run([cell])[cell]
        second_cache = ScheduleCache(cache_dir)
        second = ExecEngine(jobs=1, cache=second_cache).run([cell])[cell]
        assert not first.cache_hit and second.cache_hit
        assert second_cache.stats.hits == 1 and second_cache.stats.misses == 0
        assert second.ii == first.ii
        assert second.sim_cycles == first.sim_cycles

    def test_option_change_misses(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", verify=False)
        changed = Cell.make(
            "livermore:lk12_firstdiff", "sgi", {"enable_membank": False}, verify=False
        )
        ExecEngine(jobs=1, cache=cache).run([cell])
        ExecEngine(jobs=1, cache=cache).run([changed])
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert cache.entry_count() == 2

    def test_ir_change_invalidates(self, tmp_path, machine):
        """Editing a kernel's IR must invalidate its cache entries."""
        trip_count = 100
        LOOP_SOURCES["testsrc"] = lambda rest, m: build_sdot(m, trip_count=trip_count)
        try:
            cache = ScheduleCache(tmp_path / "c")
            cell = Cell.make("testsrc:sdot", "sgi", verify=False)
            ExecEngine(jobs=1, cache=cache).run([cell])
            assert cache.stats.misses == 1
            # Same IR again (fresh engine, fresh memo): a hit.
            clear_loop_memo()
            ExecEngine(jobs=1, cache=cache).run([cell])
            assert cache.stats.hits == 1
            # The kernel "gets edited": same key, different IR — a miss.
            trip_count = 200
            clear_loop_memo()
            result = ExecEngine(jobs=1, cache=cache).run([cell])[cell]
            assert cache.stats.misses == 2
            assert not result.cache_hit
        finally:
            del LOOP_SOURCES["testsrc"]
            clear_loop_memo()

    def test_timeout_falls_back_with_accounting(self, tmp_path):
        """A cell over its deadline is rescued by the heuristic and says so."""
        cache = ScheduleCache(tmp_path / "c")
        cell = Cell.make(
            "livermore:lk12_firstdiff",
            "most",
            {**MOST_OPTS, "_test_sleep": 30.0},
            timeout=0.3,
            verify=False,
        )
        result = ExecEngine(jobs=1, cache=cache).run([cell])[cell]
        assert result.timeout and result.fallback
        assert result.success and result.ii is not None  # the rescue worked
        assert result.scheduler == "most"  # accounted against the original cell
        assert result.schedule_seconds >= 0.3  # the burned budget is charged
        assert result.error is None
        # Timeout results are cacheable (the deadline is part of the key).
        rerun = ExecEngine(jobs=1, cache=ScheduleCache(tmp_path / "c")).run([cell])[cell]
        assert rerun.cache_hit and rerun.timeout and rerun.fallback

    def test_pool_matches_inline(self, tmp_path):
        """jobs=4 and jobs=1 must produce identical IIs and sim cycles."""
        cells = [
            Cell.make(key, scheduler, MOST_OPTS if scheduler == "most" else None, verify=False)
            for key in ("livermore:lk12_firstdiff", "livermore:lk24_firstmin")
            for scheduler in ("sgi", "rau", "most")
        ]
        inline = ExecEngine(jobs=1).run(cells)
        pooled = ExecEngine(jobs=4).run(cells)
        for cell in cells:
            assert inline[cell].ii == pooled[cell].ii, cell.label
            assert inline[cell].sim_cycles == pooled[cell].sim_cycles, cell.label
            assert inline[cell].registers_used == pooled[cell].registers_used, cell.label

    def test_worker_crash_is_retried_once(self, tmp_path):
        """A transient worker death breaks the pool; the cell reruns."""
        marker = tmp_path / "crashed-once"
        cells = [
            Cell.make(
                "livermore:lk12_firstdiff",
                "sgi",
                {"_test_crash_once": str(marker)},
                verify=False,
            ),
            Cell.make("livermore:lk24_firstmin", "sgi", verify=False),
        ]
        results = ExecEngine(jobs=2).run(cells)
        crashy = results[cells[0]]
        assert marker.exists()  # the first attempt really died
        assert crashy.success and crashy.error is None
        assert crashy.attempts == 2
        assert results[cells[1]].success  # the bystander cell still finished

    def test_crash_with_no_retries_becomes_error(self, tmp_path):
        """A worker death past the retry budget is recorded, not looped."""
        marker = tmp_path / "m"
        cell = Cell.make(
            "livermore:lk12_firstdiff",
            "sgi",
            {"_test_crash_once": str(marker)},
            verify=False,
        )
        result = ExecEngine(jobs=2, retries=0).run([cell])[cell]
        assert marker.exists()
        assert result.error is not None and "died" in result.error
        assert not result.success

    def test_error_results_are_not_cached(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        cell = Cell.make("nonesuch:loop", "sgi", verify=False)
        result = ExecEngine(jobs=1, cache=cache).run([cell])[cell]
        assert result.error is not None
        assert cache.stats.stores == 0 and cache.entry_count() == 0

    def test_duplicate_cells_run_once(self, tmp_path):
        cache = ScheduleCache(tmp_path / "c")
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", verify=False)
        results = ExecEngine(jobs=1, cache=cache).run([cell, cell, cell])
        assert len(results) == 1 and cache.stats.stores == 1

    def test_default_timeout_fills_only_unset_cells(self, tmp_path):
        engine = ExecEngine(jobs=1, default_timeout=60.0)
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", verify=False)
        assert engine._effective(cell).timeout == 60.0
        assert engine._effective(cell.from_dict({**cell.to_dict(), "timeout": 5.0})).timeout == 5.0

    def test_progress_stream(self, tmp_path):
        seen = []
        engine = ExecEngine(
            jobs=1, progress=lambda done, total, cell, result: seen.append((done, total))
        )
        cells = [
            Cell.make("livermore:lk12_firstdiff", "sgi", verify=False),
            Cell.make("livermore:lk24_firstmin", "sgi", verify=False),
        ]
        engine.run(cells)
        assert seen == [(1, 2), (2, 2)]


class TestExecuteCell:
    def test_baseline_cells_simulate_sequentially(self):
        payload = execute_cell(
            Cell.make("livermore:lk12_firstdiff", "baseline").to_dict(), in_worker=False
        )
        result = CellResult.from_dict(payload)
        assert result.success and result.producer == "baseline/list"
        assert result.ii is None  # no pipelined kernel
        assert result.cycles() > 0

    def test_extra_trip_counts_simulated(self):
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", trips=(10, 1000), verify=False)
        result = CellResult.from_dict(execute_cell(cell.to_dict(), in_worker=False))
        assert set(result.sim_cycles) == {"default", "10", "1000"}
        assert result.cycles(10) < result.cycles(1000)
        with pytest.raises(KeyError):
            result.cycles(77)

    def test_scheduler_exception_captured(self):
        cell = Cell.make("livermore:lk12_firstdiff", "sgi", {"unknown_option": 1})
        result = CellResult.from_dict(execute_cell(cell.to_dict(), in_worker=False))
        assert result.error is not None and "unknown_option" in result.error
        assert not result.success


class TestSolveBudget:
    def test_default_is_the_papers_budget(self):
        assert MostOptions().time_limit == PAPER_TIME_LIMIT == 180.0

    def test_slice_never_exceeds_total_or_remaining(self):
        budget = SolveBudget(total=10.0)
        share = budget.slice(parts=4, floor=1.0)
        assert share <= 10.0
        assert share == pytest.approx(2.5, abs=0.05)
        assert budget.slice(parts=1) <= budget.total

    def test_expired_budget_yields_nothing(self):
        budget = SolveBudget(total=0.0)
        assert budget.expired()
        assert budget.slice(parts=3) == 0.0

    def test_options_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError):
            MostOptions.from_dict({"time_limit": 1.0, "nonsense": True})
        assert MostOptions.from_dict({"time_limit": 2.0}).time_limit == 2.0
