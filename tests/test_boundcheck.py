"""The independent certificate checker rejects every tampered certificate.

The property that makes the certificates *trust anchors*: for each
certificate kind, every strength-increasing single-field mutation — a
higher claimed bound, a scarcer claimed resource, a narrower claimed
window — must be rejected by :func:`repro.verify.boundcheck`.  (The
reverse direction is not a property: *weakening* a certificate, e.g.
widening an offset window that stays empty, can legitimately still
check out.)  Hypothesis drives the sampling over (loop, certificate,
mutation) triples; the pool covers all seven certificate kinds via the
recbound corpus.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.bounds import compute_bounds
from repro.machine import r8000
from repro.verify.boundcheck import check_bounds, check_certificate
from repro.workloads.recbound import recbound_kernels

pytestmark = pytest.mark.verify

#: kind -> strength-increasing integer-field mutations (field, delta).
#: Signs matter: ``available -1`` on a resource cert claims a scarcer
#: machine, ``lo +1`` / ``hi -1`` narrow an offset window, ``ii -1``
#: re-targets the proof at an II the paths do not pin down.
MUTATIONS = {
    "resource": [("bound", +1), ("total", +1), ("available", -1)],
    "recurrence": [("bound", +1), ("total_latency", +1), ("total_omega", -1)],
    "slot_conflict": [
        ("bound", +1),
        ("available", +1),
        ("used", +1),
        ("slot", +1),
        ("ii", -1),
    ],
    "offset_exclusion": [("bound", +1), ("lo", +1), ("hi", -1), ("ii", -1)],
    "window_density": [
        ("bound", +1),
        ("available", +1),
        ("used", +1),
        ("ii", -1),
        ("window.0", +1),
        ("window.1", -1),
    ],
    "register_pressure": [("bound", +1), ("registers", -1), ("ii", -1)],
    "bank_pairing": [("bound", +1), ("n_refs", +1), ("max_known_pairs", -1)],
}


def _certificate_pool():
    """Every (loop, certificate) pair of the recbound corpus."""
    machine = r8000()
    pool = []
    for loop in recbound_kernels(machine):
        bounds = compute_bounds(loop, machine)
        for cert in bounds.certificates:
            pool.append((loop, cert))
    return machine, pool


MACHINE, POOL = _certificate_pool()

#: Flat (pool index, field, delta) space hypothesis samples from.
CASES = [
    (i, field, delta)
    for i, (_, cert) in enumerate(POOL)
    for field, delta in MUTATIONS[cert["kind"]]
]


def _mutate(cert, field, delta):
    mutated = copy.deepcopy(cert)
    if "." in field:
        name, index = field.split(".")
        mutated[name][int(index)] += delta
    else:
        mutated[field] += delta
    return mutated


def test_pool_covers_every_kind():
    kinds = {cert["kind"] for _, cert in POOL}
    assert kinds == set(MUTATIONS)


def test_pristine_certificates_accepted():
    for loop, cert in POOL:
        report = check_certificate(loop, MACHINE, cert)
        assert report.ok, f"{loop.name}/{cert['kind']}: {report.formatted()}"


@settings(deadline=None, max_examples=120)
@given(case=st.sampled_from(CASES))
def test_any_strengthening_mutation_is_rejected(case):
    index, field, delta = case
    loop, cert = POOL[index]
    mutated = _mutate(cert, field, delta)
    report = check_certificate(loop, MACHINE, mutated)
    assert not report.ok, (
        f"{loop.name}/{cert['kind']}: mutation {field}{delta:+d} slipped "
        "past the independent checker"
    )


def test_every_mutation_exhaustively_rejected():
    """The full (certificate × mutation) grid, not just a sample.

    Cheap enough to run whole (a few hundred checks) and makes the
    hypothesis test's property unconditional on sampling luck.
    """
    for index, field, delta in CASES:
        loop, cert = POOL[index]
        mutated = _mutate(cert, field, delta)
        assert not check_certificate(loop, MACHINE, mutated).ok, (
            f"{loop.name}/{cert['kind']}: {field}{delta:+d} accepted"
        )


def test_coverage_gap_is_rejected():
    """check_bounds demands a certificate for every II below the bound.

    Deleting any per-II certificate from a payload whose schedulable
    bound exceeds MinII leaves an uncovered II — the payload must fail
    coverage validation even though every remaining certificate is
    individually valid.
    """
    machine = r8000()
    lifted = 0
    for loop in recbound_kernels(machine):
        bounds = compute_bounds(loop, machine)
        payload = bounds.to_dict()
        per_ii = [
            c
            for c in payload["certificates"]
            if c.get("regime") in ("schedule", "allocation")
            and c.get("ii") is not None
        ]
        if not per_ii:
            continue
        lifted += 1
        for victim in per_ii:
            clipped = copy.deepcopy(payload)
            clipped["certificates"] = [
                c for c in clipped["certificates"] if c != victim
            ]
            report = check_bounds(loop, machine, clipped)
            assert not report.ok, (
                f"{loop.name}: dropping the II={victim.get('ii')} "
                f"{victim['kind']} certificate left coverage intact"
            )
    assert lifted >= 4  # the recbound corpus keeps this test meaningful
