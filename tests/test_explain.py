"""Tests for repro.obs.explain — II-gap attribution.

Seeded on empirically mapped Livermore loops (r8000 machine model):

* ``lk13_pic2d`` — RecMII 11 vs ResMII 4: a recurrence-bound MinII with a
  multi-op critical circuit.
* ``lk01_hydro`` — ResMII 2 vs RecMII 1 with the memory ports at 100%
  utilization: a resource-bound MinII.
* ``lk08_adi`` — MinII 11 from tight 2-FPU packing, but every II-11
  schedule leaves live ranges uncolorable: the classic register-pressure
  II bump, for both the SGI driver and Rau94.
"""

from __future__ import annotations

import pytest

from repro.exec.cells import resolve_loop
from repro.machine.descriptions import r8000
from repro.obs.explain import (
    AT_BOUND_CLASSES,
    BINDING_CLASSES,
    IIExplanation,
    bottleneck_resource,
    critical_circuit,
    explain_corpus,
    explain_loop,
    format_explanations,
    minii_profile,
    resource_utilization,
)


@pytest.fixture(scope="module")
def machine():
    return r8000()


class TestMinIIProfile:
    def test_recurrence_bound_loop(self, machine):
        loop = resolve_loop("livermore:lk13_pic2d", machine)
        profile = minii_profile(loop, machine)
        assert profile.side == "recurrence"
        assert profile.rec_mii > profile.res_mii
        assert profile.min_ii == profile.rec_mii
        # The binding circuit is real: ops with positive self-distance at
        # RecMII - 1, each carrying its opcode for the report.
        assert profile.circuit
        indices = [entry["index"] for entry in profile.circuit]
        assert indices == critical_circuit(loop, profile.rec_mii)
        for entry in profile.circuit:
            assert loop.ops[entry["index"]].opcode == entry["opcode"]

    def test_resource_bound_loop(self, machine):
        loop = resolve_loop("livermore:lk01_hydro", machine)
        profile = minii_profile(loop, machine)
        assert profile.side == "resource"
        assert profile.res_mii >= profile.rec_mii
        # No binding recurrence => no critical circuit.
        assert profile.circuit == []
        util = resource_utilization(loop, machine, profile.res_mii)
        assert bottleneck_resource(loop, machine, profile.res_mii) == "mem"
        assert util["mem"] == pytest.approx(1.0)

    def test_utilization_shrinks_with_ii(self, machine):
        loop = resolve_loop("livermore:lk01_hydro", machine)
        at_2 = resource_utilization(loop, machine, 2)
        at_4 = resource_utilization(loop, machine, 4)
        for resource, value in at_4.items():
            assert value == pytest.approx(at_2[resource] / 2)
        assert resource_utilization(loop, machine, 0) == {}


class TestBindingClassification:
    def test_recurrence_bound_cells(self, machine):
        for scheduler in ("sgi", "rau"):
            explanation = explain_loop("livermore:lk13_pic2d", scheduler, machine)
            assert explanation.success
            assert explanation.binding == "recurrence"
            assert explanation.gap == 0
            assert explanation.ii == explanation.rec_mii
            assert explanation.critical_circuit
            assert "circuit" in explanation.detail

    def test_resource_bound_cell(self, machine):
        explanation = explain_loop("livermore:lk01_hydro", "sgi", machine)
        assert explanation.binding == "resource"
        assert explanation.gap == 0
        assert explanation.bottleneck == "mem"
        assert "'mem'" in explanation.detail
        assert explanation.utilization["mem"] == pytest.approx(1.0)

    def test_register_pressure_ii_bump(self, machine):
        # lk08: every schedule at MinII=11 is legal but uncolorable, so the
        # achieved II exceeds MinII for the register file's sake, not the
        # search's.
        for scheduler in ("sgi", "rau"):
            explanation = explain_loop("livermore:lk08_adi", scheduler, machine)
            assert explanation.success
            assert explanation.gap is not None and explanation.gap > 0
            assert explanation.binding == "register_pressure", scheduler
            assert explanation.replay, "II-1 replay evidence missing"

    def test_exactly_one_class_per_cell(self, machine):
        explanations = explain_corpus(
            "livermore", schedulers=("sgi", "rau"), machine=machine, limit=6
        )
        assert len(explanations) == 6 * 2
        for explanation in explanations:
            assert explanation.binding in BINDING_CLASSES
            if explanation.gap == 0:
                assert explanation.binding in AT_BOUND_CLASSES

    def test_mrt_covers_the_kernel(self, machine):
        explanation = explain_loop("livermore:lk01_hydro", "sgi", machine)
        assert explanation.mrt is not None
        assert len(explanation.mrt) == explanation.ii
        placed = sum(len(row["ops"]) for row in explanation.mrt)
        assert placed >= resolve_loop("livermore:lk01_hydro", machine).n_ops


class TestSerialisation:
    def test_round_trip(self, machine):
        explanation = explain_loop("livermore:lk03_inner", "sgi", machine)
        data = explanation.to_dict()
        again = IIExplanation.from_dict(data)
        assert again.to_dict() == data
        assert again.binding == explanation.binding

    def test_from_dict_tolerates_future_keys(self):
        data = explain_loop("livermore:lk03_inner", "sgi").to_dict()
        data["from_the_future"] = True
        assert IIExplanation.from_dict(data).loop == data["loop"]

    def test_format_explanations_table(self, machine):
        explanations = [
            explain_loop("livermore:lk01_hydro", "sgi", machine),
            explain_loop("livermore:lk03_inner", "sgi", machine),
        ]
        text = format_explanations(explanations)
        assert "lk01_hydro" in text
        assert "bindings:" in text
        assert "resource=1" in text and "recurrence=1" in text


class TestExecPlumbing:
    def test_cell_explain_flag_lands_in_result(self):
        from repro.exec.cells import Cell, CellResult
        from repro.exec.runner import ExecEngine

        cell = Cell.make(
            "livermore:lk03_inner", "sgi", simulate=False, trace=True, explain=True
        )
        engine = ExecEngine(jobs=1)
        result = engine.run([cell])[cell]
        assert result.error is None
        assert result.explanation is not None
        assert result.explanation["binding"] == "recurrence"
        # The II-attempt timeline was harvested from the live recorder.
        assert result.explanation["attempts"]
        assert CellResult.from_dict(result.to_dict()).explanation is not None

    def test_explain_participates_in_the_cache_key(self):
        from repro.exec.cells import Cell
        from repro.exec.runner import ExecEngine

        engine = ExecEngine(jobs=1)
        plain = Cell.make("livermore:lk03_inner", "sgi", simulate=False)
        explained = Cell.make("livermore:lk03_inner", "sgi", simulate=False, explain=True)
        assert engine.key_of(plain) != engine.key_of(explained)

    def test_bench_summary_counts_bindings(self):
        from repro.exec.bench import summarise
        from repro.exec.cells import CellResult

        results = [
            CellResult(
                loop="a", scheduler="sgi", success=True, ii=2, min_ii=2,
                explanation={"binding": "resource"},
            ),
            CellResult(
                loop="b", scheduler="sgi", success=True, ii=3, min_ii=2,
                explanation={"binding": "register_pressure"},
            ),
        ]
        totals = summarise(results)
        assert totals["bindings"] == {"resource": 1, "register_pressure": 1}
        assert totals["by_scheduler"]["sgi"]["bindings"]["resource"] == 1
