"""The CP and ILP portfolio backends: three-valued answers, determinism."""

from __future__ import annotations

import pytest

from repro.core import min_ii
from repro.ir import LoopBuilder
from repro.machine import single_issue
from repro.portfolio import build_modulo_formulation, check_witness
from repro.portfolio.answer import SAT, UNKNOWN, UNSAT, BackendAnswer
from repro.portfolio.cp import default_order, solve_cp
from repro.portfolio.ilp_backend import solve_ilp

from .conftest import build_daxpy, build_divider, build_recurrence_chain, build_sdot


def build_two_loads(machine):
    """Two independent loads: res_mii = 2 on a single-issue machine."""
    b = LoopBuilder("twoloads", machine=machine, trip_count=100)
    x = b.load("x", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    b.store("out", b.fadd(x, y), offset=0, stride=8)
    return b.build()


class TestCpBackend:
    @pytest.mark.parametrize(
        "builder", [build_daxpy, build_sdot, build_recurrence_chain, build_divider]
    )
    def test_sat_witness_passes_independent_check(self, machine, builder):
        loop = builder(machine)
        ii = min_ii(loop, machine)
        f = build_modulo_formulation(loop, machine, ii)
        answer = solve_cp(f)
        assert answer.answer == SAT
        assert answer.definitive
        assert check_witness(f, answer.times) == []

    def test_unsat_below_res_mii_is_proven(self):
        machine = single_issue()
        loop = build_two_loads(machine)
        assert min_ii(loop, machine) >= 2
        f = build_modulo_formulation(loop, machine, 1)
        if f.infeasible:
            pytest.skip("screened before search")
        answer = solve_cp(f)
        assert answer.answer == UNSAT  # exhaustive, not a budget artifact

    def test_unknown_on_node_budget(self, machine):
        loop = build_sdot(machine)
        ii = min_ii(loop, machine)
        f = build_modulo_formulation(loop, machine, ii)
        answer = solve_cp(f, max_nodes=1)
        assert answer.answer == UNKNOWN
        assert not answer.definitive
        assert answer.nodes <= 1

    def test_deterministic_across_runs(self, machine, rec1):
        ii = min_ii(rec1, machine)
        f = build_modulo_formulation(rec1, machine, ii)
        a = solve_cp(f)
        b = solve_cp(build_modulo_formulation(rec1, machine, ii))
        assert a.answer == b.answer == SAT
        assert a.times == b.times
        assert a.nodes == b.nodes

    def test_infeasible_formulation_short_circuits(self, machine, sdot):
        f = build_modulo_formulation(sdot, machine, 1, stages=1)
        answer = solve_cp(f)
        assert answer.answer == UNSAT
        assert answer.nodes == 0
        assert f.infeasible_reason in answer.detail

    def test_fail_first_order_is_width_sorted(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        order = default_order(f)
        widths = [f.windows[op][1] - f.windows[op][0] for op in order]
        assert widths == sorted(widths)
        assert sorted(order) == list(range(f.n_ops))

    def test_own_table_slot_collision_regression(self, machine, divloop):
        """One op's long reservation table colliding with *itself* in a
        modulo slot must be rejected (the lk15 fpdiv bug): every sat the
        CP returns on a divide loop must survive the independent check.
        """
        mii = min_ii(divloop, machine)
        for ii in range(mii, mii + 3):
            f = build_modulo_formulation(divloop, machine, ii)
            if f.infeasible:
                continue
            answer = solve_cp(f)
            if answer.answer == SAT:
                assert check_witness(f, answer.times) == []

    def test_explicit_order_override(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        answer = solve_cp(f, order=list(range(f.n_ops)))
        assert answer.answer == SAT
        assert check_witness(f, answer.times) == []


class TestIlpBackend:
    def test_sat_witness_passes_independent_check(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        answer = solve_ilp(f, daxpy, time_limit=10.0)
        assert answer.answer == SAT
        assert check_witness(f, answer.times) == []

    def test_unsat_below_res_mii(self):
        machine = single_issue()
        loop = build_two_loads(machine)
        f = build_modulo_formulation(loop, machine, 1)
        if f.infeasible:
            pytest.skip("screened before solve")
        answer = solve_ilp(f, loop, time_limit=10.0)
        assert answer.answer == UNSAT

    def test_unknown_on_node_budget(self, machine, sdot):
        ii = min_ii(sdot, machine)
        f = build_modulo_formulation(sdot, machine, ii)
        answer = solve_ilp(f, sdot, max_nodes=0)
        assert answer.answer == UNKNOWN
        assert "limit" in answer.detail

    def test_infeasible_formulation_short_circuits(self, machine, sdot):
        f = build_modulo_formulation(sdot, machine, 1, stages=1)
        answer = solve_ilp(f, sdot)
        assert answer.answer == UNSAT
        assert answer.nodes == 0

    def test_branch_priority_accepted(self, machine, daxpy):
        from repro.core.priorities import production_orders

        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        order = next(iter(production_orders(daxpy, machine).values()))
        answer = solve_ilp(f, daxpy, time_limit=10.0, branch_priority=order)
        assert answer.answer == SAT
        assert check_witness(f, answer.times) == []


class TestAnswerSemantics:
    def test_definitive_property(self):
        assert BackendAnswer(backend="cp", answer=SAT).definitive
        assert BackendAnswer(backend="cp", answer=UNSAT).definitive
        assert not BackendAnswer(backend="cp", answer=UNKNOWN).definitive

    def test_cp_and_ilp_agree_where_both_definitive(self, machine):
        for builder in (build_daxpy, build_recurrence_chain, build_divider):
            loop = builder(machine)
            mii = min_ii(loop, machine)
            for ii in (max(1, mii - 1), mii):
                f = build_modulo_formulation(loop, machine, ii)
                if f.infeasible:
                    continue
                cp = solve_cp(f, max_nodes=50_000, time_limit=2.0)
                ilp = solve_ilp(f, loop, max_nodes=20_000, time_limit=2.0)
                if cp.definitive and ilp.definitive:
                    assert cp.answer == ilp.answer, (loop.name, ii)
