"""Tests for repro.obs: recorder, trace export, effort report, integration.

Covers the acceptance contract of the observability subsystem: the null
recorder is inert, the Chrome trace export is a valid JSON array of
``ph``/``ts``/``pid``/``tid`` events with nested spans, and a seeded
SGI-vs-MOST run produces nonzero node counters on both sides.
"""

import json

import pytest

from repro.core import BnBConfig, min_ii, order_by_name, pipeline_loop, search_ii
from repro.ilp import Model, Sense, SolverOptions, Status, solve_milp
from repro.most.scheduler import MostOptions, most_pipeline_loop
from repro.obs import (
    NULL,
    TraceRecorder,
    get_recorder,
    merge_jsonl,
    read_jsonl,
    recording,
    set_recorder,
    validate_chrome_trace_file,
    validate_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import format_effort_table
from repro.rau.scheduler import rau_pipeline_loop

from .conftest import build_daxpy, build_sdot


class TestRecorder:
    def test_default_recorder_is_null_and_inert(self):
        rec = get_recorder()
        assert rec is NULL
        assert not rec.enabled
        with rec.span("anything", foo=1):
            rec.counter("x", 5)
            rec.event("y", bar=2)
        assert rec.counters == {}
        assert rec.events == []

    def test_recording_installs_and_restores(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
            assert rec.enabled
        assert get_recorder() is before

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert get_recorder() is NULL

    def test_set_recorder_none_restores_null(self):
        rec = TraceRecorder()
        set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(None)
        assert get_recorder() is NULL

    def test_counters_aggregate(self):
        rec = TraceRecorder()
        rec.counter("a")
        rec.counter("a", 4)
        rec.counter("b", 2.5)
        assert rec.counters == {"a": 5, "b": 2.5}
        # Each bump also emits a Chrome "C" event with the running total.
        c_events = [e for e in rec.events if e["ph"] == "C"]
        assert [e["args"]["value"] for e in c_events if e["name"] == "a"] == [1, 5]

    def test_spans_emit_balanced_b_e_pairs(self):
        rec = TraceRecorder()
        with rec.span("outer", loop="l"):
            with rec.span("inner"):
                rec.event("tick", k=1)
        phases = [(e["name"], e["ph"]) for e in rec.events]
        assert phases == [
            ("outer", "B"), ("inner", "B"), ("tick", "i"), ("inner", "E"), ("outer", "E"),
        ]
        assert validate_trace_events(rec.snapshot()) == []


class TestExport:
    def _sample_recorder(self):
        rec = TraceRecorder(process_name="test")
        with rec.span("a", x=1):
            rec.counter("n", 3)
            with rec.span("b"):
                rec.event("e", y=2)
        return rec

    def test_chrome_trace_is_json_array_of_required_keys(self, tmp_path):
        rec = self._sample_recorder()
        path = write_chrome_trace(rec, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload, list) and payload
        for event in payload:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event
        assert validate_chrome_trace_file(path) == []

    def test_jsonl_roundtrip(self, tmp_path):
        rec = self._sample_recorder()
        path = write_jsonl(rec, tmp_path / "spool.jsonl")
        assert read_jsonl(path) == rec.snapshot()

    def test_merge_jsonl_sorts_by_timestamp(self, tmp_path):
        a = [
            {"name": "x", "ph": "i", "ts": 5, "pid": 1, "tid": 1, "args": {}},
            {"name": "x", "ph": "i", "ts": 9, "pid": 1, "tid": 1, "args": {}},
        ]
        b = [{"name": "y", "ph": "i", "ts": 7, "pid": 2, "tid": 2, "args": {}}]
        write_jsonl(a, tmp_path / "a.jsonl")
        write_jsonl(b, tmp_path / "b.jsonl")
        merged = merge_jsonl([tmp_path / "a.jsonl", tmp_path / "b.jsonl"])
        assert [e["ts"] for e in merged] == [5, 7, 9]
        assert validate_trace_events(merged) == []

    def test_validator_rejects_non_array(self):
        assert validate_trace_events({"not": "a list"})

    def test_validator_rejects_missing_keys_and_bad_phase(self):
        assert validate_trace_events([{"name": "x"}])
        bad = [{"name": "x", "ph": "Z", "ts": 1, "pid": 1, "tid": 1}]
        assert validate_trace_events(bad)

    def test_validator_rejects_unbalanced_spans(self):
        open_span = [{"name": "s", "ph": "B", "ts": 1, "pid": 1, "tid": 1}]
        assert any("open spans" in p for p in validate_trace_events(open_span))
        crossed = [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 2, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 4, "pid": 1, "tid": 1},
        ]
        assert any("innermost" in p for p in validate_trace_events(crossed))

    def test_validator_rejects_time_travel_within_lane(self):
        back = [
            {"name": "x", "ph": "i", "ts": 9, "pid": 1, "tid": 1},
            {"name": "x", "ph": "i", "ts": 3, "pid": 1, "tid": 1},
        ]
        assert any("back in time" in p for p in validate_trace_events(back))


class TestSchedulerCounters:
    def test_sgi_vs_most_produce_nonzero_node_counters(self, machine):
        loop = build_sdot(machine)
        with recording() as rec:
            sgi = pipeline_loop(loop, machine)
            most = most_pipeline_loop(
                loop, machine,
                MostOptions(time_limit=10.0, engine="bnb", fallback=False),
            )
        assert sgi.success and most.success
        # The SGI branch-and-bound counted its placements (its "nodes") and
        # the II search its attempts; MOST counted ILP B&B nodes and
        # simplex iterations.  All must be live, nonzero signals.
        assert rec.counters["bnb.placements"] > 0
        assert rec.counters["bnb.attempts"] > 0
        assert rec.counters["ii.attempts"] > 0
        assert rec.counters["ilp.solves"] > 0
        assert rec.counters["ilp.nodes"] > 0
        assert rec.counters["ilp.simplex_iters"] > 0
        assert validate_trace_events(rec.snapshot()) == []

    def test_rau_counters(self, machine):
        loop = build_sdot(machine)
        with recording() as rec:
            res = rau_pipeline_loop(loop, machine)
        assert res.success
        assert rec.counters["rau.placements"] >= loop.n_ops
        assert res.stats.placements >= loop.n_ops
        assert res.stats.evictions == rec.counters.get("rau.evictions", 0)

    def test_disabled_recorder_leaves_results_identical(self, machine):
        loop = build_daxpy(machine)
        plain = pipeline_loop(loop, machine)
        with recording():
            traced = pipeline_loop(loop, machine)
        assert plain.success and traced.success
        assert plain.schedule.times == traced.schedule.times
        assert plain.schedule.ii == traced.schedule.ii


class TestIIAttemptRecording:
    def test_attempts_recorded_on_success(self, machine):
        loop = build_sdot(machine)
        order = order_by_name(loop, machine, "FDMS")
        mii = min_ii(loop, machine)
        res = search_ii(loop, machine, order, mii, 2 * mii)
        assert res.success
        assert res.attempted, "successful search must list the IIs it tried"
        assert res.attempted[-1].success
        assert res.attempted[-1].ii == res.ii
        assert len(res.attempted) == res.attempts
        assert all(a.phase in ("backoff", "binary") for a in res.attempted)

    def test_attempts_recorded_on_failure(self, machine):
        loop = build_sdot(machine)
        order = order_by_name(loop, machine, "FDMS")
        mii = min_ii(loop, machine)
        res = search_ii(
            loop, machine, order, mii, 2 * mii,
            config=BnBConfig(max_placements=0),
        )
        assert not res.success
        # The satellite contract: even a failed search reports every II it
        # visited, with phases and outcomes.
        assert res.attempted
        assert all(not a.success for a in res.attempted)
        assert res.attempted[0].ii == mii
        assert all(a.phase == "backoff" for a in res.attempted)

    def test_linear_mode_phases(self, machine):
        loop = build_daxpy(machine)
        order = order_by_name(loop, machine, "FDMS")
        mii = min_ii(loop, machine)
        res = search_ii(loop, machine, order, mii, 2 * mii, linear=True)
        assert res.success
        assert all(a.phase == "linear" for a in res.attempted)


def knapsack(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}", binary=True) for i in range(len(values))]
    m.add_constraint({x: w for x, w in zip(xs, weights)}, Sense.LE, capacity)
    m.set_objective({x: v for x, v in zip(xs, values)}, minimize=False)
    return m, xs


class TestMILPEffortAccounting:
    def test_bnb_reports_simplex_iterations_and_zero_gap_on_optimal(self):
        m, _ = knapsack([6, 5, 4], [4, 3, 2], 5)
        res = solve_milp(m, SolverOptions(engine="bnb"))
        assert res.status is Status.OPTIMAL
        assert res.simplex_iterations > 0
        assert res.mip_gap == 0.0
        assert res.limit is None

    def test_bnb_node_limit_sets_limit_field(self):
        m, _ = knapsack(list(range(1, 15)), [2] * 14, 9)
        res = solve_milp(m, SolverOptions(engine="bnb", max_nodes=1))
        assert res.limit == "nodes"
        if res.status is Status.FEASIBLE:
            assert res.mip_gap is None or res.mip_gap >= 0.0

    def test_scipy_reports_nodes_and_gap(self):
        m, _ = knapsack([6, 5, 4], [4, 3, 2], 5)
        res = solve_milp(m, SolverOptions(engine="scipy"))
        assert res.status is Status.OPTIMAL
        assert res.mip_gap == 0.0
        assert res.nodes >= 0  # HiGHS may solve in presolve (0 nodes)

    def test_solver_emits_obs_counters(self):
        m, _ = knapsack([6, 5, 4], [4, 3, 2], 5)
        with recording() as rec:
            solve_milp(m, SolverOptions(engine="bnb"))
        assert rec.counters["ilp.solves"] == 1
        assert rec.counters["ilp.nodes"] > 0
        assert rec.counters["ilp.simplex_iters"] > 0


class TestEffortReport:
    def test_format_effort_table_shape(self, machine):
        class FakeCell:
            def __init__(self, loop, scheduler, seconds, obs, ii=2):
                self.loop = loop
                self.scheduler = scheduler
                self.schedule_seconds = seconds
                self.obs = obs
                self.ii = ii
                self.n_ops = 7
                self.fallback = False
                self.timeout = False

        results = [
            FakeCell("l1", "sgi", 0.01, {"bnb.placements": 50, "ii.attempts": 1}),
            FakeCell("l1", "most", 1.0, {"ilp.nodes": 200, "ilp.simplex_iters": 900}),
            FakeCell("l1", "rau", 0.005, {"rau.placements": 7, "rau.evictions": 0}),
        ]
        table = format_effort_table(results)
        assert "l1" in table
        assert "50" in table and "200" in table
        assert "100.0x" in table  # 1.0s / 0.01s
        assert "geomean" in table


class TestExecTraceIntegration:
    def test_execute_cell_folds_obs_and_writes_spool(self, tmp_path):
        from repro.exec.cells import Cell
        from repro.exec.runner import execute_cell

        cell = Cell.make(
            "livermore:lk03_inner", "sgi", simulate=False, verify=False,
            trace=True, trace_dir=str(tmp_path),
        )
        payload = execute_cell(cell.to_dict(), in_worker=False)
        assert payload["error"] is None
        assert payload["obs"]["bnb.placements"] > 0
        assert payload["obs"]["ii.attempts"] > 0
        spool = payload["trace_file"]
        assert spool is not None
        events = read_jsonl(spool)
        assert events and validate_trace_events(events) == []
        # The whole cell is wrapped in one top-level span.
        assert events[0]["name"] in ("process_name", "cell")

    def test_untraced_cell_carries_no_obs(self):
        from repro.exec.cells import Cell
        from repro.exec.runner import execute_cell

        cell = Cell.make(
            "livermore:lk03_inner", "sgi", simulate=False, verify=False,
        )
        payload = execute_cell(cell.to_dict(), in_worker=False)
        assert payload["error"] is None
        assert payload["obs"] == {}
        assert payload["trace_file"] is None

    def test_trace_participates_in_cell_key_but_trace_dir_does_not(self):
        from repro.exec.cells import Cell
        from repro.exec.runner import ExecEngine

        engine = ExecEngine()
        plain = Cell.make("livermore:lk03_inner", "sgi")
        traced = Cell.make("livermore:lk03_inner", "sgi", trace=True)
        moved = Cell.make(
            "livermore:lk03_inner", "sgi", trace=True, trace_dir="/elsewhere"
        )
        assert engine.key_of(plain) != engine.key_of(traced)
        assert engine.key_of(traced) == engine.key_of(moved)

    def test_bench_summary_folds_obs_counters(self, tmp_path):
        from repro.exec.bench import BenchOptions, bench_cells, summarise
        from repro.exec.runner import ExecEngine

        options = BenchOptions(
            corpora=("livermore",), schedulers=("sgi",), use_cache=False,
            trace=True, trace_dir=str(tmp_path),
        )
        cells = [c for c in bench_cells(options) if c.loop.endswith("lk03_inner")]
        engine = options.engine()
        results = engine.run(cells)
        totals = summarise(list(results.values()))
        assert totals["obs"]["bnb.placements"] > 0
        assert totals["by_scheduler"]["sgi"]["obs"]["ii.attempts"] > 0

    def test_merge_trace_dir(self, tmp_path):
        from repro.exec.bench import merge_trace_dir
        from repro.exec.cells import Cell
        from repro.exec.runner import execute_cell

        for scheduler in ("sgi", "rau"):
            cell = Cell.make(
                "livermore:lk03_inner", scheduler, simulate=False, verify=False,
                trace=True, trace_dir=str(tmp_path),
            )
            execute_cell(cell.to_dict(), in_worker=False)
        merged = merge_trace_dir(tmp_path)
        assert merged is not None
        assert validate_chrome_trace_file(merged) == []
        assert merge_trace_dir(tmp_path / "empty") is None


class TestTraceCLI:
    def test_trace_cli_prints_table_and_validates(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "trace", "livermore", "--limit", "2", "--check",
            "--trace-dir", str(tmp_path), "--ilp-seconds", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MOST" in out and "geomean" in out
        assert (tmp_path / "trace.json").exists()
        payload = json.loads((tmp_path / "trace.json").read_text())
        assert isinstance(payload, list) and payload
