"""The cross-backend agreement suite (the differential heart of the PR).

Every Livermore and recbound loop is probed at MinII-1, MinII and (via
the portfolio driver's cross-check trail) the achieved II.  Soundness
demands: two definitive answers at one II never contradict, no backend
ever claims sat below MinII, and every sat witness survives the
independent :func:`repro.portfolio.formulation.check_witness`.  The SMT
backend joins the matrix automatically when z3 is installed.
"""

from __future__ import annotations

import pytest

from repro.core import min_ii
from repro.machine import r8000
from repro.portfolio import build_modulo_formulation, check_witness
from repro.portfolio.answer import SAT, UNSAT, ProbeRecord, probe_disagreements
from repro.portfolio.cp import solve_cp
from repro.portfolio.driver import PortfolioOptions, portfolio_pipeline_loop
from repro.portfolio.ilp_backend import solve_ilp
from repro.portfolio.smt import smt_available, solve_smt
from repro.workloads import livermore_kernels, recbound_kernels

MACHINE = r8000()
ALL_LOOPS = livermore_kernels(MACHINE) + recbound_kernels(MACHINE)

# Modest, deterministic budgets: unknown answers are acceptable (they
# agree with everything); contradictions never are.
CP_BUDGET = dict(max_nodes=50_000, time_limit=2.0)
ILP_BUDGET = dict(max_nodes=20_000, time_limit=2.0)


def _probe(loop, ii):
    """All available backends' answers on one (loop, II) formulation."""
    f = build_modulo_formulation(loop, MACHINE, ii)
    if f.infeasible:
        # The shared screen is itself a proof; nothing to race.
        return f, [ProbeRecord(ii=ii, backend="screen", answer=UNSAT,
                               detail=f.infeasible_reason)]
    probes = []
    answers = [solve_cp(f, **CP_BUDGET), solve_ilp(f, loop, **ILP_BUDGET)]
    if smt_available():
        answers.append(solve_smt(f, time_limit=2.0))
    for answer in answers:
        witness_ok = None
        if answer.answer == SAT:
            witness_ok = not check_witness(f, answer.times or {})
        probes.append(ProbeRecord(
            ii=ii, backend=answer.backend, answer=answer.answer,
            seconds=answer.seconds, nodes=answer.nodes, witness_ok=witness_ok,
        ))
    return f, probes


@pytest.mark.parametrize("loop", ALL_LOOPS, ids=[l.name for l in ALL_LOOPS])
class TestAgreementAtBoundaryIIs:
    def test_min_ii_and_below(self, loop):
        mii = min_ii(loop, MACHINE)
        all_probes = []
        for ii in [mii - 1, mii] if mii > 1 else [mii]:
            _, probes = _probe(loop, ii)
            all_probes.extend(probes)
            if ii < mii:
                # MinII is a certified lower bound: sat below it is a bug
                # in a backend (or in MinII itself).
                assert not any(p.answer == SAT for p in probes), (
                    f"{loop.name}: sat below MinII={mii}"
                )
        assert probe_disagreements(all_probes) == []
        for probe in all_probes:
            if probe.answer == SAT:
                assert probe.witness_ok is True


class TestAgreementThroughDriver:
    """The driver's own cross-check trail over the full corpus."""

    @pytest.mark.parametrize(
        "loop",
        [l for l in ALL_LOOPS if l.n_ops <= 20],
        ids=[l.name for l in ALL_LOOPS if l.n_ops <= 20],
    )
    def test_cross_check_trail_is_contradiction_free(self, loop):
        options = PortfolioOptions(
            time_limit=5.0, cross_check=True, max_nodes=20_000, fallback=True
        )
        result = portfolio_pipeline_loop(loop, MACHINE, options)
        assert result.disagreements == []
        assert probe_disagreements(result.probes) == []
        for probe in result.probes:
            if probe.answer == SAT:
                assert probe.witness_ok is True
        if result.success and not result.fallback_used:
            # The winning witness decoded into a schedule that the
            # session-wide verify hook (conftest) already cross-checked.
            assert result.ii >= result.min_ii
            assert result.winning_backend in ("cp", "ilp", "smt")

    def test_achieved_ii_probes_are_sat_and_checked(self):
        loop = livermore_kernels(MACHINE)[0]  # lk01_hydro
        options = PortfolioOptions(time_limit=5.0, cross_check=True,
                                   max_nodes=20_000)
        result = portfolio_pipeline_loop(loop, MACHINE, options)
        assert result.success and not result.fallback_used
        achieved = [p for p in result.probes if p.ii == result.ii]
        assert any(p.answer == SAT and p.witness_ok for p in achieved)
        # cross_check mode queried every backend at the achieved II.
        assert len({p.backend for p in achieved}) >= 2

    def test_optimality_means_every_smaller_ii_refuted(self):
        loop = livermore_kernels(MACHINE)[0]
        options = PortfolioOptions(time_limit=5.0, cross_check=True,
                                   max_nodes=20_000)
        result = portfolio_pipeline_loop(loop, MACHINE, options)
        if result.optimal:
            for ii in range(result.min_ii, result.ii):
                at_ii = [p for p in result.probes if p.ii == ii]
                assert any(p.answer == UNSAT for p in at_ii)
