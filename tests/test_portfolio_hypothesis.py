"""Property tests: generated loops through the neutral IR and the backends.

Hypothesis drives :func:`repro.workloads.generators.random_spec` /
:mod:`repro.workloads.mutate` to produce arbitrary (well-formed) loops;
each one is lowered to a :class:`ModuloFormulation` and answered by every
available backend.  The properties are the agreement oracle's invariants
plus the certified bound from :mod:`repro.analyze.bounds`: no sat below
the certificate, no definitive contradictions, every witness checks.
Disagreements shrink through the fuzzer's own ddmin
(:func:`repro.fuzz.minimize.minimize_spec`) before being reported.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analyze.bounds import schedulable_bound  # noqa: E402
from repro.core import min_ii  # noqa: E402
from repro.fuzz.minimize import minimize_spec  # noqa: E402
from repro.machine import r8000  # noqa: E402
from repro.portfolio import build_modulo_formulation, check_witness  # noqa: E402
from repro.portfolio.answer import SAT, ProbeRecord, probe_disagreements  # noqa: E402
from repro.portfolio.cp import solve_cp  # noqa: E402
from repro.portfolio.ilp_backend import solve_ilp  # noqa: E402
from repro.portfolio.smt import smt_available, solve_smt  # noqa: E402
from repro.workloads import GeneratorConfig, mutate, normalize, random_spec  # noqa: E402

MACHINE = r8000()

# Small shapes keep each example cheap; the budgets below make unknown
# (never a wrong definitive answer) the worst case on a slow example.
CP_BUDGET = dict(max_nodes=20_000, time_limit=1.0)
ILP_BUDGET = dict(max_nodes=5_000, time_limit=1.0)


@st.composite
def loop_specs(draw):
    """A generated-then-mutated LoopSpec, always normalized."""
    seed = draw(st.integers(min_value=0, max_value=2**30))
    shape = GeneratorConfig(
        n_compute=draw(st.integers(min_value=0, max_value=6)),
        n_streams=draw(st.integers(min_value=0, max_value=3)),
        n_stores=draw(st.integers(min_value=0, max_value=2)),
        n_recurrences=draw(st.integers(min_value=0, max_value=2)),
        p_fmadd=draw(st.sampled_from([0.0, 0.25, 0.5])),
        p_fdiv=draw(st.sampled_from([0.0, 0.1])),
    )
    spec = random_spec(seed, shape, name="hyp")
    n_mut = draw(st.integers(min_value=0, max_value=3))
    if n_mut:
        spec = mutate(spec, random.Random(seed ^ 0x5EED), n=n_mut)
    return normalize(spec)


def _answers(loop, f):
    out = [solve_cp(f, **CP_BUDGET), solve_ilp(f, loop, **ILP_BUDGET)]
    if smt_available():
        out.append(solve_smt(f, time_limit=1.0))
    return out


def _audit(spec):
    """All probe records + witness failures for one spec, or None to skip."""
    loop = spec.build(MACHINE)
    if loop.n_ops == 0 or loop.n_ops > 24:
        return None
    mii = min_ii(loop, MACHINE)
    bound = schedulable_bound(loop, MACHINE, base=mii)
    probes = []
    for ii in sorted({max(1, mii - 1), mii, bound}):
        f = build_modulo_formulation(loop, MACHINE, ii)
        if f.infeasible:
            continue
        for answer in _answers(loop, f):
            witness_ok = None
            if answer.answer == SAT:
                witness_ok = not check_witness(f, answer.times or {})
                assert ii >= mii, (
                    f"{loop.name}: {answer.backend} sat at II={ii} < MinII={mii}"
                )
                assert ii >= bound, (
                    f"{loop.name}: {answer.backend} sat at II={ii} below "
                    f"certified bound={bound}"
                )
            probes.append(ProbeRecord(
                ii=ii, backend=answer.backend, answer=answer.answer,
                witness_ok=witness_ok,
            ))
    return probes


def _disagrees(spec):
    """ddmin predicate: does this spec still expose a disagreement?"""
    try:
        probes = _audit(spec)
    except AssertionError:
        return True
    return bool(probes and probe_disagreements(probes))


@given(loop_specs())
@settings(max_examples=25, deadline=None)
def test_backends_agree_on_generated_loops(spec):
    probes = _audit(spec)
    if probes is None:
        return
    findings = probe_disagreements(probes)
    if findings:
        # Shrink with the fuzzer's own reducer so the report names the
        # smallest loop that still disagrees, not the random original.
        small, evals = minimize_spec(spec, _disagrees, max_evaluations=60)
        raise AssertionError(
            f"backend disagreement ({findings}); minimized after {evals} "
            f"evaluations to: {small}"
        )
    for probe in probes:
        if probe.answer == SAT:
            assert probe.witness_ok is True


@given(loop_specs())
@settings(max_examples=10, deadline=None)
def test_formulation_screens_are_sound(spec):
    """An infeasible-screened formulation admits no witness at all: the
    backends must agree with the screen wherever they are definitive."""
    loop = spec.build(MACHINE)
    if loop.n_ops == 0 or loop.n_ops > 16:
        return
    mii = min_ii(loop, MACHINE)
    for ii in (max(1, mii - 1), mii):
        f = build_modulo_formulation(loop, MACHINE, ii)
        if not f.infeasible:
            continue
        assert f.infeasible_reason
        # The screen claims *proven* unsat; a backend handed the same
        # formulation must echo it, not hallucinate a witness.
        for answer in _answers(loop, f):
            assert answer.answer == "unsat"


def test_minimizer_shrinks_a_seeded_disagreement():
    """ddmin plumbing: a synthetic always-true predicate shrinks hard."""
    spec = normalize(random_spec(7, GeneratorConfig(n_compute=8, n_streams=2,
                                                    n_stores=1)))
    small, evals = minimize_spec(spec, lambda s: True, max_evaluations=100)
    assert small.n_ops <= spec.n_ops
    assert evals >= 1
