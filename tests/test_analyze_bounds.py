"""Golden refined-bound snapshots and crafted-circuit unit tests.

The goldens freeze ``(MinII, schedulable bound, allocatable bound,
certificate count)`` for every loop of the Livermore and recbound
corpora.  A diff here is a *semantic* change to the analyzer: either a
sharper argument (bounds go up — update the goldens and say why in the
commit) or a regression (bounds go down — a proof got lost).
"""

from __future__ import annotations

import pytest

from repro.analyze.api import analyze_corpus
from repro.analyze.bounds import compute_bounds
from repro.core import pipeline_loop
from repro.ir import LoopBuilder
from repro.machine import r8000
from repro.verify.boundcheck import check_achieved, check_bounds

pytestmark = pytest.mark.verify


#: loop -> (MinII, schedulable bound, allocatable bound, certificates).
#: Livermore: no loop lifts — every certified bound equals MinII, i.e.
#: the corpus' II gaps are search-budget artifacts, not certified
#: infeasibility (see EXPERIMENTS.md, "Certified lower bounds").
LIVERMORE_GOLDEN = {
    "lk01_hydro": (2, 2, 2, 2),
    "lk02_iccg": (3, 3, 3, 2),
    "lk03_inner": (2, 2, 2, 3),
    "lk04_banded": (2, 2, 2, 3),
    "lk05_tridiag": (8, 8, 8, 3),
    "lk06_linrec": (4, 4, 4, 3),
    "lk07_eos": (5, 5, 5, 2),
    "lk08_adi": (11, 11, 11, 2),
    "lk09_predict": (6, 6, 6, 2),
    "lk10_diffpred": (7, 7, 7, 2),
    "lk11_firstsum": (4, 4, 4, 3),
    "lk12_firstdiff": (2, 2, 2, 2),
    "lk13_pic2d": (11, 11, 11, 3),
    "lk14_pic1d": (11, 11, 11, 3),
    "lk15_casual": (14, 14, 14, 2),
    "lk16_monte": (5, 5, 5, 3),
    "lk17_implicit": (9, 9, 9, 3),
    "lk18_hydro2d": (7, 7, 7, 2),
    "lk19_linrec2": (4, 4, 4, 3),
    "lk20_ordinates": (32, 32, 32, 3),
    "lk21_matmul": (2, 2, 2, 3),
    "lk22_planck": (28, 28, 28, 2),
    "lk23_implhydro": (31, 31, 31, 3),
    "lk24_firstmin": (5, 5, 5, 3),
}

#: recbound: the adversarial corpus the bounds were built to prune.
RECBOUND_GOLDEN = {
    "rb_coupled_division": (28, 34, 34, 9),
    "rb_div_sqrt": (34, 37, 37, 6),
    "rb_diamond3": (12, 13, 13, 4),
    "rb_fan5": (16, 18, 18, 5),
    "rb_reg_farm": (34, 37, 39, 8),
    "rb_stream_control": (2, 2, 2, 2),
}


def _snapshot(corpus):
    report = analyze_corpus(corpus, schedulers=(), check=True)
    assert report.ok, report.formatted()
    return report, {
        e.loop: (e.min_ii, e.schedulable_bound, e.allocatable_bound, e.certificates)
        for e in report.entries
    }


class TestGoldenBounds:
    def test_livermore_snapshot(self):
        report, got = _snapshot("livermore")
        assert got == LIVERMORE_GOLDEN
        # The headline finding: zero lift anywhere on the real corpus.
        assert report.lifted == []

    def test_recbound_snapshot(self):
        report, got = _snapshot("recbound")
        assert got == RECBOUND_GOLDEN
        lifted = {e.loop for e in report.lifted}
        assert lifted == {
            "rb_coupled_division",
            "rb_div_sqrt",
            "rb_diamond3",
            "rb_fan5",
            "rb_reg_farm",
        }

    def test_recurrence_certificate_matches_rec_mii(self):
        """The recurrence certificate's bound is exactly RecMII, corpus-wide."""
        machine = r8000()
        from repro.verify.api import corpus_loops

        for loop in corpus_loops("livermore", machine) + corpus_loops(
            "recbound", machine
        ):
            bounds = compute_bounds(loop, machine)
            recs = [c for c in bounds.certificates if c["kind"] == "recurrence"]
            if bounds.rec_mii > 1:
                assert recs, loop.name
                assert recs[0]["bound"] == bounds.rec_mii, loop.name


def build_divpair(machine):
    """A crafted circuit with a large certified lift.

    The recurrence ``acc -> fadd -> {fdiv, fdiv} -> fadd -> acc`` pins
    both divides to rigid offsets on the critical circuit, but the
    machine has a single fpdiv unit: at ``II = RecMII = 28`` they land
    in the same modulo slot (slot_conflict), and each II up to 41 is
    excluded by an offset-window argument.  The certified schedulable
    bound is 42 — a +14 lift over MinII — and the B&B scheduler indeed
    first succeeds at II=42, so the bound is tight here.
    """
    b = LoopBuilder("crafted_divpair", machine=machine, trip_count=100)
    r = b.recurrence("acc")
    a = b.fadd(r.use(), b.invariant("k0"))
    d1 = b.fdiv(a, b.invariant("k1"))
    d2 = b.fdiv(a, b.invariant("k2"))
    r.close(b.fadd(d1, d2))
    b.live_out_value(r)
    return b.build()


class TestCraftedCircuit:
    @pytest.fixture(scope="class")
    def machine(self):
        return r8000()

    @pytest.fixture(scope="class")
    def divpair(self, machine):
        loop = build_divpair(machine)
        return loop, compute_bounds(loop, machine)

    def test_certified_lift(self, divpair):
        loop, bounds = divpair
        assert bounds.min_ii == 28
        assert bounds.schedulable_bound == 42
        assert bounds.allocatable_bound == 42
        kinds = {c["kind"] for c in bounds.certificates}
        assert {"recurrence", "resource", "slot_conflict", "offset_exclusion"} <= kinds

    def test_certificates_validate_independently(self, divpair, machine):
        loop, bounds = divpair
        report = check_bounds(loop, machine, bounds.to_dict())
        assert report.ok, report.formatted()

    def test_bound_is_tight(self, divpair, machine):
        """The scheduler achieves exactly the certified bound, spill-free."""
        loop, bounds = divpair
        result = pipeline_loop(loop, machine, verify=False)
        assert result.success
        assert result.spill_rounds == 0
        assert result.ii == bounds.refined_bound == 42
        achieved = check_achieved(
            bounds.to_dict(), ii=result.ii, spill_free=True, source="sgi"
        )
        assert achieved.ok, achieved.formatted()

    def test_below_bound_is_a_contradiction(self, divpair):
        """check_achieved rejects any II below the certified floor."""
        loop, bounds = divpair
        achieved = check_achieved(
            bounds.to_dict(), ii=bounds.refined_bound - 1, spill_free=True,
            source="fabricated",
        )
        assert not achieved.ok
        assert "BOUND005" in achieved.rules_hit()
