"""Behavioural tests of the II search phases and B&B backtracking rules."""

import pytest

from repro.core import BnBConfig, min_ii, modulo_schedule_bnb, order_by_name, search_ii
from repro.core import iisearch as iisearch_mod
from repro.ir import LoopBuilder
from repro.machine import r8000

from .conftest import build_sdot


def record_attempts(monkeypatch):
    """Capture the sequence of IIs the search actually tries."""
    tried = []
    original = iisearch_mod._attempt

    def spy(loop, machine, ii, priority, config, pairer_factory, stats):
        tried.append(ii)
        return original(loop, machine, ii, priority, config, pairer_factory, stats)

    monkeypatch.setattr(iisearch_mod, "_attempt", spy)
    return tried


class TestTwoPhaseSearch:
    def test_immediate_min_ii_hit_tries_once(self, machine, sdot, monkeypatch):
        tried = record_attempts(monkeypatch)
        mii = min_ii(sdot, machine)
        order = order_by_name(sdot, machine, "FDMS")
        result = search_ii(sdot, machine, order, mii, 2 * mii)
        assert result.ii == mii
        assert tried == [mii]

    def test_backoff_sequence_on_failure(self, machine, monkeypatch):
        # Force failures via a zero-placement budget: the search must walk
        # MinII, +1, +2, +4, +8... up to MaxII and give up.
        loop = build_sdot(machine)
        tried = record_attempts(monkeypatch)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        result = search_ii(
            loop, machine, order, mii, 2 * mii, config=BnBConfig(max_placements=0)
        )
        assert not result.success
        deltas = [ii - mii for ii in tried]
        expected = [0, 1, 2, 4]
        assert deltas == [d for d in expected if mii + d <= 2 * mii]

    def test_accepts_min_ii_plus_two_without_binary_phase(self, machine, monkeypatch):
        # A loop that schedules at MinII: force the first three attempts to
        # fail so success lands at MinII+4, then binary search must probe
        # between MinII+2 and MinII+4.
        loop = build_sdot(machine)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        calls = []
        original = iisearch_mod._attempt

        def flaky(loop_, machine_, ii, priority, config, pairer_factory, stats):
            calls.append(ii)
            if ii < mii + 4:
                from repro.core.bnb import BnBResult

                return BnBResult(None)
            return original(loop_, machine_, ii, priority, config, pairer_factory, stats)

        monkeypatch.setattr(iisearch_mod, "_attempt", flaky)
        result = search_ii(loop, machine, order, mii, 2 * mii)
        # Backoff lands at mii+4; the binary phase then probes mii+3 (which
        # the stub also fails) and settles on the true boundary.
        assert result.ii == mii + 4
        assert calls == [mii, mii + 1, mii + 2, mii + 4, mii + 3]

    def test_linear_mode_walks_every_ii(self, machine, monkeypatch):
        loop = build_sdot(machine)
        tried = record_attempts(monkeypatch)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        search_ii(
            loop, machine, order, mii + 2, 2 * mii, linear=True
        )
        assert tried[0] == mii + 2

    def test_simple_binary_probes_max_first(self, machine, monkeypatch):
        loop = build_sdot(machine)
        tried = record_attempts(monkeypatch)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        result = search_ii(loop, machine, order, mii, 2 * mii, simple_binary=True)
        assert tried[0] == 2 * mii
        assert result.ii == mii


class TestCatchPointRules:
    def _contended_loop(self, machine, n_adds=4):
        b = LoopBuilder("contend", machine=machine)
        x = b.load("x", offset=0, stride=8)
        y = b.load("y", offset=0, stride=8)
        q = b.fdiv(x, y)
        t = b.fadd(q, b.invariant("c"))
        for _ in range(n_adds):
            t = b.fadd(t, b.invariant("c"))
        b.store("o", t, offset=0, stride=8)
        return b.build()

    def test_rule3_rescues_schedules_rule2_misses(self, machine):
        # With rule 3 off, some order/II combinations fail that succeed
        # with it on; rule 3 must never make things worse.
        loop = self._contended_loop(machine)
        mii = min_ii(loop, machine)
        for name in ("FDMS", "HMS", "RHMS"):
            order = order_by_name(loop, machine, name)
            with_rule3 = modulo_schedule_bnb(
                loop, machine, mii, order, BnBConfig(use_rule3=True)
            )
            without = modulo_schedule_bnb(
                loop, machine, mii, order, BnBConfig(use_rule3=False)
            )
            if without.success:
                assert with_rule3.success

    def test_backtrack_counter_monotone_with_budget(self, machine):
        loop = self._contended_loop(machine, n_adds=6)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "RHMS")
        small = modulo_schedule_bnb(loop, machine, mii, order, BnBConfig(max_backtracks=2))
        large = modulo_schedule_bnb(loop, machine, mii, order, BnBConfig(max_backtracks=400))
        assert small.backtracks <= 2
        assert large.backtracks >= small.backtracks
