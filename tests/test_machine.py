"""Tests for machine descriptions and modulo reservation tables."""

import pytest

from repro.ir import DepKind, MemRef, OpClass, Operation
from repro.machine import (
    ModuloReservationTable,
    ReservationTable,
    ResourceUse,
    r8000,
    single_issue,
    two_wide,
)


class TestReservationTable:
    def test_simple_is_fully_pipelined(self):
        t = ReservationTable.simple("issue", "fp")
        assert t.is_fully_pipelined
        assert t.span == 1
        assert t.totals() == {"issue": 1, "fp": 1}

    def test_blocking_table(self):
        t = ReservationTable.blocking(["issue"], "fpdiv", 14)
        assert not t.is_fully_pipelined
        assert t.span == 14
        assert t.totals()["fpdiv"] == 14

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ResourceUse(-1, "fp")


class TestModuloReservationTable:
    def test_place_and_conflict(self):
        mrt = ModuloReservationTable(4, {"mem": 2})
        t = ReservationTable.simple("mem")
        mrt.place(t, 0)
        mrt.place(t, 4)  # same slot, second port
        assert not mrt.fits(t, 8)  # slot 0 is full
        assert mrt.fits(t, 1)

    def test_remove_restores_capacity(self):
        mrt = ModuloReservationTable(4, {"mem": 1})
        t = ReservationTable.simple("mem")
        mrt.place(t, 2)
        assert not mrt.fits(t, 6)
        mrt.remove(t, 2)
        assert mrt.fits(t, 6)

    def test_negative_cycles_wrap(self):
        mrt = ModuloReservationTable(4, {"mem": 1})
        t = ReservationTable.simple("mem")
        mrt.place(t, -1)  # slot 3
        assert not mrt.fits(t, 3)

    def test_blocking_op_wraps_around(self):
        # An op holding a unit for 5 cycles at II=4 conflicts with itself
        # across iterations: it cannot be placed at all.
        mrt = ModuloReservationTable(4, {"div": 1, "issue": 1})
        t = ReservationTable(
            [ResourceUse(0, "issue")] + [ResourceUse(i, "div") for i in range(5)]
        )
        assert not mrt.fits(t, 0)

    def test_unknown_resource_raises(self):
        mrt = ModuloReservationTable(2, {"mem": 1})
        with pytest.raises(KeyError):
            mrt.fits(ReservationTable.simple("fp"), 0)

    def test_remove_unplaced_raises(self):
        mrt = ModuloReservationTable(2, {"mem": 1})
        with pytest.raises(ValueError):
            mrt.remove(ReservationTable.simple("mem"), 0)

    def test_copy_is_independent(self):
        mrt = ModuloReservationTable(2, {"mem": 1})
        t = ReservationTable.simple("mem")
        clone = mrt.copy()
        mrt.place(t, 0)
        assert clone.fits(t, 0)

    def test_invalid_ii_rejected(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(0, {})


class TestR8000:
    def test_issue_width(self):
        m = r8000()
        assert m.availability["issue"] == 4
        assert m.availability["mem"] == 2
        assert m.availability["fp"] == 2

    def test_divide_unpipelined(self):
        m = r8000()
        assert not m.is_fully_pipelined(OpClass.FDIV)
        assert m.is_fully_pipelined(OpClass.FMUL)

    def test_banked_memory(self):
        m = r8000()
        assert m.has_banked_memory
        assert m.memory_banks == 2
        assert m.bellows_depth == 1

    def test_dep_latency_flow_uses_producer(self):
        m = r8000()
        load = Operation(index=0, opcode="load", opclass=OpClass.LOAD, dests=("v",),
                         mem=MemRef(base="a"))
        assert m.dep_latency(DepKind.FLOW, load) == m.latency(OpClass.LOAD)

    def test_dep_latency_memory(self):
        m = r8000()
        store = Operation(index=0, opcode="store", opclass=OpClass.STORE, srcs=("v",),
                          mem=MemRef(base="a", is_store=True))
        assert m.dep_latency(DepKind.MEM, store) == m.store_to_load_latency

    def test_all_opclasses_covered(self):
        m = r8000()
        for oc in OpClass:
            assert m.latency(oc) >= 1
            assert m.table(oc).totals()


class TestOtherMachines:
    def test_single_issue_serialises_everything(self):
        m = single_issue()
        assert m.availability == {"issue": 1}
        assert not m.has_banked_memory

    def test_two_wide(self):
        m = two_wide()
        assert m.availability["issue"] == 2

    def test_missing_table_raises(self):
        m = single_issue()
        with pytest.raises(KeyError):
            m.table("bogus")  # type: ignore[arg-type]
