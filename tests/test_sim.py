"""Tests for data layout, banked memory model, and performance simulation."""

import pytest

from repro.baseline import body_latency, list_schedule
from repro.core import pipeline_loop
from repro.ir import LoopBuilder
from repro.machine import r8000
from repro.pipeline import pipeline_overhead
from repro.sim import (
    BankedMemory,
    DataLayout,
    simulate_pipelined,
    simulate_sequential_body,
)

from .conftest import build_daxpy, build_sdot


class TestDataLayout:
    def test_regions_do_not_overlap(self, machine):
        b = LoopBuilder("t", machine=machine, trip_count=200)
        x = b.load("x", offset=0, stride=8)
        y = b.load("y", offset=-8, stride=8)
        b.store("z", b.fadd(x, y), offset=0, stride=8)
        loop = b.build()
        layout = DataLayout(loop, trip_count=200)
        mem_indices = [op.index for op in loop.memory_ops()]
        addr_sets = {
            idx: {layout.address(idx, n) for n in range(200)} for idx in mem_indices
        }
        x_load, y_load, z_store = mem_indices
        assert not (addr_sets[x_load] & addr_sets[z_store])
        assert not (addr_sets[y_load] & addr_sets[z_store])

    def test_known_parity_respected(self, machine):
        b = LoopBuilder("t", machine=machine)
        b.load("even", offset=0, stride=8)
        b.set_parity("even", 0)
        loop = b.build()
        layout = DataLayout(loop, trip_count=10)
        assert ((layout.bases["even"] >> 3) & 1) == 0
        assert layout.bank(0, 0) == 0
        assert layout.bank(0, 1) == 1  # next double word: opposite bank

    def test_indirect_addresses_deterministic_and_aligned(self, machine):
        b = LoopBuilder("t", machine=machine)
        b.load("p", offset=None)
        loop = b.build()
        l1 = DataLayout(loop, trip_count=50, seed=3)
        l2 = DataLayout(loop, trip_count=50, seed=3)
        addrs1 = [l1.address(0, n) for n in range(50)]
        addrs2 = [l2.address(0, n) for n in range(50)]
        assert addrs1 == addrs2
        assert all(a % 8 == 0 for a in addrs1)
        assert len(set(addrs1)) > 10  # actually scattered

    def test_seed_changes_unknown_parities(self, machine):
        loop = build_sdot(machine)
        parities = {
            seed: (DataLayout(loop, trip_count=10, seed=seed).bases["x"] >> 3) & 1
            for seed in range(16)
        }
        assert set(parities.values()) == {0, 1}

    def test_negative_offsets_stay_in_region(self, machine):
        b = LoopBuilder("t", machine=machine)
        b.load("y", offset=-16, stride=8)
        loop = b.build()
        layout = DataLayout(loop, trip_count=10)
        assert layout.address(0, 0) > 0


class TestBankedMemory:
    def test_opposite_banks_no_stall(self):
        mem = BankedMemory()
        assert mem.step([0, 1]) == 0
        assert mem.step([0, 1]) == 0

    def test_single_conflict_absorbed_by_bellows(self):
        mem = BankedMemory()
        assert mem.step([0, 0]) == 0  # one queued, no stall yet

    def test_sustained_conflicts_stall_every_cycle(self):
        # The worst case of Section 2.9: two same-bank refs every cycle ->
        # one stall per cycle, half speed.
        mem = BankedMemory()
        stalls = sum(mem.step([0, 0]) for _ in range(100))
        assert stalls == 99  # first conflict absorbed, then one per cycle

    def test_queue_drains_during_idle_cycles(self):
        mem = BankedMemory()
        mem.step([0, 0])
        assert mem.step([]) == 0
        assert mem.step([0, 0]) == 0  # bellows was empty again

    def test_queued_ref_competes_with_arrivals(self):
        mem = BankedMemory()
        mem.step([0, 0])  # bank0 queued
        # Next cycle: queued bank-0 ref takes bank 0; new bank-0 pair
        # conflicts with it.
        stalls = mem.step([0, 0])
        assert stalls >= 1


class TestPerformanceSimulation:
    def test_pipelined_cycles_formula_no_stalls(self, machine):
        loop = build_daxpy(machine)
        res = pipeline_loop(loop, machine)
        layout = DataLayout(loop, trip_count=100)
        rep = simulate_pipelined(res.schedule, layout, machine, trips=100)
        assert rep.cycles == res.schedule.span + 99 * res.schedule.ii + rep.stall_cycles

    def test_overhead_added(self, machine):
        loop = build_daxpy(machine)
        res = pipeline_loop(loop, machine)
        layout = DataLayout(loop, trip_count=10)
        ov = pipeline_overhead(res.schedule, res.allocation, machine)
        with_ov = simulate_pipelined(res.schedule, layout, machine, trips=10, overhead=ov)
        without = simulate_pipelined(res.schedule, layout, machine, trips=10)
        assert with_ov.cycles == without.cycles + ov.total

    def test_pipelined_beats_baseline_on_long_trips(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        layout = DataLayout(loop, trip_count=1000)
        pipe = simulate_pipelined(res.schedule, layout, machine, trips=1000)
        base = simulate_sequential_body(list_schedule(loop, machine), layout, machine, trips=1000)
        assert base.cycles > 2 * pipe.cycles

    def test_baseline_cycles_scale_with_trips(self, machine):
        loop = build_daxpy(machine)
        sched = list_schedule(loop, machine)
        layout = DataLayout(loop, trip_count=200)
        r100 = simulate_sequential_body(sched, layout, machine, trips=100)
        r200 = simulate_sequential_body(sched, layout, machine, trips=200)
        assert r200.cycles >= 2 * r100.cycles - r100.stall_cycles

    def test_memory_bound_same_bank_schedule_stalls(self, machine):
        # The worst case of Section 2.9: two references every cycle, both
        # to the same bank.  Four even-aligned double streams, pinned so
        # each cycle carries two references of the *same* iteration: banks
        # agree every cycle and the bellows saturates.
        from repro.core import Schedule

        b = LoopBuilder("conflict", machine=machine, trip_count=500)
        for k in range(4):
            b.load(f"s{k}", offset=0, stride=8)
            b.set_parity(f"s{k}", 0)
        loop = b.build()
        sched = Schedule(
            loop=loop, machine=machine, ii=2, times={0: 0, 1: 0, 2: 1, 3: 1}
        )
        sched.validate()
        layout = DataLayout(loop, trip_count=500)
        rep = simulate_pipelined(sched, layout, machine, trips=500)
        # Roughly one stall every two cycles: half-speed territory.
        assert rep.stall_cycles > 300

    def test_staggered_same_parity_streams_absorbed(self, machine):
        # The same streams with the pairs one stage apart hit *opposite*
        # banks at run time (iteration parities differ): no stalls.  This
        # is why only memory-bound loops with aligned pairs show the
        # effect (Section 4.3).
        from repro.core import Schedule

        b = LoopBuilder("staggered", machine=machine, trip_count=500)
        for k in range(4):
            b.load(f"s{k}", offset=0, stride=8)
            b.set_parity(f"s{k}", 0)
        loop = b.build()
        sched = Schedule(
            loop=loop, machine=machine, ii=2, times={0: 0, 1: 2, 2: 1, 3: 3}
        )
        sched.validate()
        layout = DataLayout(loop, trip_count=500)
        rep = simulate_pipelined(sched, layout, machine, trips=500)
        assert rep.stall_cycles == 0


class TestBaselineListScheduler:
    def test_valid_schedule(self, machine, daxpy):
        sched = list_schedule(daxpy, machine)
        sched.validate()

    def test_respects_latency_chain(self, machine, sdot):
        sched = list_schedule(sdot, machine)
        # fmul must wait for loads (latency 6), fadd for fmul (latency 4).
        assert sched.time(2) >= sched.time(0) + 6
        assert sched.time(3) >= sched.time(2) + 4

    def test_body_latency_includes_final_latency(self, machine, sdot):
        sched = list_schedule(sdot, machine)
        assert body_latency(sched, machine) >= sched.time(3) + machine.latency(sdot.ops[3].opclass)

    def test_resource_limits_respected(self, machine):
        b = LoopBuilder("many", machine=machine)
        vals = [b.load("x", offset=8 * k, stride=64) for k in range(8)]
        t = vals[0]
        for v in vals[1:]:
            t = b.fadd(t, v)
        b.store("o", t)
        loop = b.build()
        sched = list_schedule(loop, machine)
        sched.validate()  # at most 2 loads per cycle enforced by validate
