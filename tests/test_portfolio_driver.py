"""The portfolio driver and its exec/fuzz/bench plumbing."""

from __future__ import annotations

import pytest

from repro.exec.cells import SCHEDULERS, Cell, CellResult
from repro.exec.runner import execute_cell
from repro.fuzz.oracle import FUZZ_PORTFOLIO_OPTIONS, check_results, spec_cells
from repro.obs import recording
from repro.portfolio.driver import PortfolioOptions, portfolio_pipeline_loop


class TestDriver:
    def test_schedules_at_min_ii_and_proves_optimality(self, machine, daxpy):
        result = portfolio_pipeline_loop(
            daxpy, machine, PortfolioOptions(time_limit=5.0)
        )
        assert result.success and not result.fallback_used
        assert result.ii == result.min_ii
        assert result.optimal
        assert result.winning_backend == "cp"  # first in the default race order
        assert result.schedule.producer == "portfolio/cp"
        assert result.allocation is not None and result.allocation.success

    def test_oversized_loop_takes_the_fallback(self, machine, sdot):
        options = PortfolioOptions(time_limit=5.0, max_ops=1)
        result = portfolio_pipeline_loop(sdot, machine, options)
        assert result.fallback_used
        assert result.success
        assert result.fallback_result is not None
        assert result.probes == []  # no backend ever ran

    def test_no_fallback_reports_failure_honestly(self, machine, sdot):
        options = PortfolioOptions(time_limit=5.0, max_ops=1, fallback=False)
        result = portfolio_pipeline_loop(sdot, machine, options)
        assert not result.success
        assert result.schedule is None
        assert not result.fallback_used

    def test_options_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown PortfolioOptions"):
            PortfolioOptions.from_dict({"time_limit": 1.0, "typo_key": 1})

    def test_options_from_dict_validates_backends_eagerly(self):
        with pytest.raises(ValueError, match="unknown portfolio backends"):
            PortfolioOptions.from_dict({"backends": "gurobi"})
        with pytest.raises(ValueError, match="at least one backend"):
            PortfolioOptions.from_dict({"backends": ""})

    def test_effort_counters_recorded(self, machine, daxpy):
        with recording() as rec:
            portfolio_pipeline_loop(
                daxpy, machine, PortfolioOptions(time_limit=5.0, cross_check=True)
            )
            counters = dict(rec.counters)
        assert counters.get("portfolio.cp.sat", 0) >= 1
        assert counters.get("portfolio.ilp.sat", 0) >= 1
        assert counters.get("portfolio.cp.seconds", 0) > 0
        assert counters.get("portfolio.ii_attempts", 0) >= 1
        assert "portfolio.disagreements" not in counters


class TestExecIntegration:
    def test_portfolio_is_a_registered_scheduler(self):
        assert "portfolio" in SCHEDULERS

    def test_execute_cell_round_trip(self):
        cell = Cell.make(
            "livermore:lk01_hydro",
            "portfolio",
            {"time_limit": 5.0, "cross_check": True, "max_nodes": 20_000},
            seed=0, timeout=30.0, simulate=False, verify=True,
        )
        payload = execute_cell(cell.to_dict(), in_worker=False)
        res = CellResult.from_dict(payload)
        assert res.success
        assert res.ii == res.min_ii
        assert res.optimal
        assert set(res.backend_seconds) == {"cp", "ilp"}
        assert res.backend_probes
        assert res.verify_errors == []
        # Round-trip again: the backend payload survives serialisation.
        again = CellResult.from_dict(res.to_dict())
        assert again.backend_seconds == res.backend_seconds
        assert again.backend_probes == res.backend_probes

    def test_bad_options_surface_as_cell_error(self):
        cell = Cell.make(
            "livermore:lk01_hydro", "portfolio", {"backends": "nope"},
            seed=0, timeout=30.0, simulate=False, verify=False,
        )
        payload = execute_cell(cell.to_dict(), in_worker=False)
        res = CellResult.from_dict(payload)
        assert not res.success
        assert res.error is not None and "unknown portfolio backends" in res.error

    def test_cache_key_distinguishes_backend_sets(self):
        from repro.exec.hashing import cell_key

        def key(scheduler, options_json):
            return cell_key("loopfp", "machfp", scheduler, options_json,
                            (), 0, False, 30.0)

        a = key("portfolio", '{"backends":"cp,ilp"}')
        b = key("portfolio", '{"backends":"cp"}')
        c = key("most", "{}")
        assert len({a, b, c}) == 3

    def test_bench_options_carry_portfolio_knobs(self):
        from repro.exec.bench import BenchOptions

        options = BenchOptions(quick=True)
        assert "portfolio" in options.schedulers
        knobs = options.scheduler_options("portfolio")
        assert knobs["cross_check"] is True  # the agreement trail in BENCH
        assert knobs["backends"] == "cp,ilp"


class TestFuzzAgreementOracle:
    def _result(self, probes, scheduler="portfolio"):
        return CellResult(
            loop="l", scheduler=scheduler, success=True,
            ii=4, min_ii=4, backend_probes=probes,
        )

    def test_contradiction_is_a_violation(self):
        probes = [
            {"ii": 4, "backend": "cp", "answer": "unsat"},
            {"ii": 4, "backend": "ilp", "answer": "sat", "witness_ok": True},
        ]
        violations = check_results({"portfolio": self._result(probes)})
        agreement = [v for v in violations if v.kind == "agreement"]
        assert len(agreement) == 1
        assert "ilp answered sat" in agreement[0].detail
        assert "cp answered unsat" in agreement[0].detail

    def test_bad_witness_is_a_violation(self):
        probes = [
            {"ii": 4, "backend": "cp", "answer": "sat", "witness_ok": False,
             "detail": "op 2 outside window"},
        ]
        violations = check_results({"portfolio": self._result(probes)})
        agreement = [v for v in violations if v.kind == "agreement"]
        assert len(agreement) == 1
        assert "failed the independent check" in agreement[0].detail

    def test_unknown_agrees_with_everything(self):
        probes = [
            {"ii": 4, "backend": "cp", "answer": "unknown"},
            {"ii": 4, "backend": "ilp", "answer": "unsat"},
            {"ii": 5, "backend": "cp", "answer": "sat", "witness_ok": True},
        ]
        violations = check_results({"portfolio": self._result(probes)})
        assert [v for v in violations if v.kind == "agreement"] == []

    def test_spec_cells_configure_portfolio_for_cross_check(self):
        from repro.workloads import GeneratorConfig, random_spec

        spec = random_spec(3, GeneratorConfig(n_compute=2, n_streams=1))
        cells = spec_cells(spec, schedulers=("sgi", "portfolio"))
        by_sched = {c.scheduler: c for c in cells}
        assert set(by_sched) == {"sgi", "portfolio"}
        options = by_sched["portfolio"].options
        for key, value in FUZZ_PORTFOLIO_OPTIONS.items():
            assert options[key] == value

    def test_end_to_end_clean_loop_has_no_agreement_findings(self):
        from repro.fuzz.oracle import evaluate_spec
        from repro.workloads import GeneratorConfig, random_spec

        spec = random_spec(11, GeneratorConfig(n_compute=3, n_streams=1,
                                               n_stores=1))
        verdict = evaluate_spec(spec, schedulers=("portfolio",), timeout=30.0)
        res = verdict.results["portfolio"]
        assert res.backend_probes  # cross-check produced a trail
        assert [v for v in verdict.violations if v.kind == "agreement"] == []
