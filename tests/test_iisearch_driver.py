"""Tests for the two-phase II search, spilling, and the full driver."""

import pytest

from repro.core import (
    BnBConfig,
    PipelinerOptions,
    choose_spill_candidates,
    insert_spills,
    min_ii,
    order_by_name,
    pipeline_loop,
    search_ii,
)
from repro.core.sched import SchedulingStats
from repro.core.spill import SPILL_TAG
from repro.ir import LoopBuilder, OpClass
from repro.machine import r8000
from repro.regalloc import allocate, allocate_schedule, rename_kernel

from .conftest import (
    build_daxpy,
    build_divider,
    build_memory_heavy,
    build_recurrence_chain,
    build_sdot,
)

ALL_BUILDERS = [
    build_sdot,
    build_daxpy,
    build_divider,
    build_memory_heavy,
    build_recurrence_chain,
]


class TestIISearch:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_backoff_binary_matches_linear(self, machine, builder):
        loop = builder(machine)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        two_phase = search_ii(loop, machine, order, mii, 2 * mii)
        linear = search_ii(loop, machine, order, mii, 2 * mii, linear=True)
        assert two_phase.ii == linear.ii

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_simple_binary_matches_linear(self, machine, builder):
        loop = builder(machine)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        binary = search_ii(loop, machine, order, mii, 2 * mii, simple_binary=True)
        linear = search_ii(loop, machine, order, mii, 2 * mii, linear=True)
        assert binary.ii == linear.ii

    def test_stats_accumulated(self, machine, sdot):
        stats = SchedulingStats()
        mii = min_ii(sdot, machine)
        order = order_by_name(sdot, machine, "FDMS")
        search_ii(sdot, machine, order, mii, 2 * mii, stats=stats)
        assert stats.attempts >= 1
        assert stats.placements > 0
        assert stats.seconds > 0

    def test_unschedulable_returns_failure(self, machine):
        # Force failure with a zero-placement budget.
        loop = build_sdot(machine)
        mii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        result = search_ii(
            loop, machine, order, mii, 2 * mii, config=BnBConfig(max_placements=0)
        )
        assert not result.success


class TestSpilling:
    def _pressure_loop(self, machine, chains=12, spread=3):
        """Many long-lived values: FP pressure beyond a small register file."""
        b = LoopBuilder("pressure", machine=machine)
        vals = [b.load("x", offset=8 * k, stride=8 * chains) for k in range(chains)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.fadd(acc, v)
        for v in vals:
            acc = b.fadd(acc, b.fmul(v, v))
        b.store("o", acc, offset=0, stride=8)
        return b.build()

    def test_pressure_loop_pipelines_after_spilling(self, machine):
        loop = self._pressure_loop(machine)
        res = pipeline_loop(loop, machine)
        assert res.success
        assert res.spill_rounds >= 1
        assert res.spilled
        res.schedule.validate()
        assert res.allocation.registers_used <= machine.fp_regs + machine.int_regs

    def test_spill_candidates_ranked_by_ratio(self, machine):
        loop = self._pressure_loop(machine, chains=6)
        res = pipeline_loop(loop, machine)
        assert res.success
        alloc = res.allocation
        cands = choose_spill_candidates(alloc, res.loop, set(), 3, min_span=0)
        assert 0 < len(cands) <= 3
        by_value = {}
        for lr in alloc.renamed.ranges:
            if not (lr.is_invariant or lr.carried):
                by_value[lr.value] = max(by_value.get(lr.value, 0), lr.spill_ratio)
        ratios = [by_value[c] for c in cands]
        assert ratios == sorted(ratios, reverse=True)
        # Every non-candidate eligible value ranks at or below the chosen.
        assert all(by_value[c] >= 0 for c in cands)

    def test_insert_spills_well_formed(self, machine):
        loop = build_daxpy(machine)
        defs = loop.defs_of()
        # Spill the fmadd result.
        target = next(v for v, d in defs.items() if loop.ops[d].opclass is OpClass.FMADD)
        spilled = insert_spills(loop, machine, [target])
        spilled.check_well_formed()
        assert spilled.n_ops == loop.n_ops + 2  # one store + one restore
        tags = [op for op in spilled.ops if SPILL_TAG in op.tags]
        assert len(tags) == 2

    def test_spill_slot_dependences_present(self, machine):
        loop = build_daxpy(machine)
        defs = loop.defs_of()
        target = next(v for v, d in defs.items() if loop.ops[d].opclass is OpClass.FMADD)
        spilled = insert_spills(loop, machine, [target])
        store = next(op.index for op in spilled.ops if op.opcode == "store.spill")
        load = next(op.index for op in spilled.ops if op.opcode == "load.spill")
        assert any(a.src == store and a.dst == load for a in spilled.ddg.arcs)

    def test_spilling_unknown_value_rejected(self, machine):
        loop = build_daxpy(machine)
        with pytest.raises(ValueError):
            insert_spills(loop, machine, ["nope"])

    def test_driver_spills_under_pressure(self):
        machine = r8000()
        machine.fp_regs = 18  # reduced FP file: one forced-long value spills
        b = LoopBuilder("forced_span", machine=machine)
        a = b.load("a", offset=0, stride=8)
        t = b.load("c", offset=0, stride=8)
        k = b.invariant("k")
        t = b.fadd(t, a)
        for _ in range(10):
            t = b.fadd(t, k)
        b.store("o", b.fadd(t, a), offset=0, stride=8)
        loop = b.build()
        res = pipeline_loop(loop, machine)
        assert res.success
        assert res.spill_rounds >= 1
        assert res.spilled
        res.schedule.validate()
        assert res.allocation.success


class TestDriver:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_pipeline_succeeds_and_validates(self, machine, builder):
        loop = builder(machine)
        res = pipeline_loop(loop, machine)
        assert res.success, loop.name
        res.schedule.validate()
        assert res.allocation.success
        assert res.ii >= res.min_ii

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_min_ii_achieved_on_simple_kernels(self, machine, builder):
        # These loop bodies are all schedulable at MinII on the R8000.
        loop = builder(machine)
        res = pipeline_loop(loop, machine)
        assert res.ii == res.min_ii, loop.name

    def test_single_order_restriction(self, machine, sdot):
        options = PipelinerOptions(orders=("HMS",))
        res = pipeline_loop(sdot, machine, options)
        assert res.success
        assert res.order_name == "HMS"

    def test_membank_disabled_still_works(self, machine, memheavy):
        options = PipelinerOptions(enable_membank=False)
        res = pipeline_loop(memheavy, machine, options)
        assert res.success
        res.schedule.validate()

    def test_linear_search_ablation(self, machine, sdot):
        options = PipelinerOptions(linear_ii_search=True)
        res = pipeline_loop(sdot, machine, options)
        assert res.success
        assert res.ii == res.min_ii

    def test_stats_collected(self, machine, sdot):
        res = pipeline_loop(sdot, machine)
        assert res.stats.attempts >= 1
        assert res.stats.seconds > 0

    def test_failure_result_shape(self, machine):
        # An impossible loop: bound every knob to zero effort.
        loop = build_memory_heavy(machine)
        options = PipelinerOptions(bnb=BnBConfig(max_placements=0), max_spill_rounds=0)
        res = pipeline_loop(loop, machine, options)
        assert not res.success
        assert res.schedule is None
        assert res.ii is None
