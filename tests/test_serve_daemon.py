"""Daemon integration: sockets, pipelining, SIGTERM drain, loadgen.

The in-process tests boot :class:`repro.serve.daemon.ServeDaemon` on a
temporary unix socket inside ``asyncio.run`` (no pytest-asyncio in the
container).  The graceful-drain test is a real subprocess: ``python -m
repro serve`` gets SIGTERM mid-solve and must still deliver the in-flight
response, log the drain, and exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time


from repro.serve.daemon import ServeDaemon
from repro.serve.loadgen import LoadgenOptions, run_selftest
from repro.serve.protocol import encode
from repro.serve.service import ServeConfig

LOOP = "livermore:lk01_hydro"


async def _with_daemon(tmp_path, scenario, **config_overrides):
    """Boot a daemon on a unix socket, run ``scenario(path)``, drain."""
    sock = str(tmp_path / "serve.sock")
    config = ServeConfig(
        jobs=0, cache_dir=str(tmp_path / "cache"), **config_overrides
    )
    daemon = ServeDaemon(config, unix_path=sock, log=lambda line: None)
    ready = asyncio.Event()
    run_task = asyncio.create_task(daemon.run(ready=lambda _d: ready.set()))
    await asyncio.wait_for(ready.wait(), 10)
    try:
        return await scenario(sock)
    finally:
        daemon.request_stop()
        await asyncio.wait_for(run_task, 30)


async def _rpc(reader, writer, payload):
    writer.write(encode(payload))
    await writer.drain()
    return json.loads(await reader.readline())


# ----------------------------------------------------------------------
# Wire-level behaviour
# ----------------------------------------------------------------------
def test_ping_stats_and_schedule_over_unix_socket(tmp_path):
    async def scenario(sock):
        reader, writer = await asyncio.open_unix_connection(sock)
        pong = await _rpc(reader, writer, {"id": "p", "op": "ping"})
        assert pong["ok"] and pong["pong"] and not pong["draining"]

        response = await _rpc(reader, writer, {
            "id": "r1", "op": "schedule", "loop": LOOP, "scheduler": "sgi",
        })
        assert response["ok"] and response["id"] == "r1"
        assert response["result"]["ii"] is not None
        assert response["latency_ms"] > 0

        stats = await _rpc(reader, writer, {"id": "s", "op": "stats"})
        assert stats["ok"]
        assert stats["stats"]["service"]["responses"] == 1
        assert stats["stats"]["pool"]["mode"] == "thread"
        writer.close()
        await writer.wait_closed()

    asyncio.run(_with_daemon(tmp_path, scenario))


def test_pipelined_requests_matched_by_id(tmp_path):
    """Many requests down one connection; responses may arrive in any
    order and are matched by id."""
    async def scenario(sock):
        reader, writer = await asyncio.open_unix_connection(sock)
        ids = [f"r{i}" for i in range(6)]
        schedulers = ["sgi", "rau"] * 3
        for rid, scheduler in zip(ids, schedulers):
            writer.write(encode({
                "id": rid, "op": "schedule",
                "loop": LOOP, "scheduler": scheduler,
            }))
        await writer.drain()
        got = {}
        for _ in ids:
            response = json.loads(await reader.readline())
            got[response["id"]] = response
        assert sorted(got) == sorted(ids)
        assert all(r["ok"] for r in got.values())
        writer.close()
        await writer.wait_closed()

    asyncio.run(_with_daemon(tmp_path, scenario))


def test_malformed_and_unknown_requests_keep_connection_alive(tmp_path):
    async def scenario(sock):
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b"this is not json\n")
        await writer.drain()
        bad = json.loads(await reader.readline())
        assert not bad["ok"] and bad["error"]["code"] == "bad-request"

        unknown = await _rpc(reader, writer, {"id": "u", "op": "frobnicate"})
        assert not unknown["ok"] and unknown["error"]["code"] == "bad-request"

        missing = await _rpc(
            reader, writer, {"id": "m", "op": "schedule", "scheduler": "sgi"}
        )
        assert not missing["ok"] and missing["error"]["code"] == "bad-request"

        # The connection survived all three rejections.
        pong = await _rpc(reader, writer, {"id": "p", "op": "ping"})
        assert pong["ok"]
        writer.close()
        await writer.wait_closed()

    asyncio.run(_with_daemon(tmp_path, scenario))


def test_tcp_listener_resolves_ephemeral_port(tmp_path):
    async def scenario():
        config = ServeConfig(jobs=0, cache_dir=None)
        daemon = ServeDaemon(
            config, host="127.0.0.1", port=0, log=lambda line: None
        )
        ready = asyncio.Event()
        task = asyncio.create_task(daemon.run(ready=lambda _d: ready.set()))
        await asyncio.wait_for(ready.wait(), 10)
        assert daemon.port not in (None, 0)
        reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
        pong = await _rpc(reader, writer, {"id": "p", "op": "ping"})
        assert pong["ok"]
        writer.close()
        await writer.wait_closed()
        daemon.request_stop()
        await asyncio.wait_for(task, 30)

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Graceful drain on SIGTERM (subprocess integration)
# ----------------------------------------------------------------------
def test_sigterm_drains_inflight_work_and_exits_zero(tmp_path):
    sock_path = str(tmp_path / "drain.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock_path, "--jobs", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--drain-timeout", "60",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 20
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        while True:
            try:
                client.connect(sock_path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                assert time.time() < deadline, "daemon never became ready"
                time.sleep(0.05)
        client.settimeout(30)
        # A solve slow enough that SIGTERM arrives mid-flight.
        client.sendall(encode({
            "id": "inflight", "op": "schedule", "loop": LOOP,
            "scheduler": "sgi", "options": {"_test_sleep": 1.5},
            "simulate": False,
        }))
        time.sleep(0.5)  # admitted and solving
        proc.send_signal(signal.SIGTERM)

        chunks = b""
        while b"\n" not in chunks:
            data = client.recv(65536)
            assert data, "connection closed before the in-flight response"
            chunks += data
        response = json.loads(chunks.split(b"\n")[0])
        assert response["id"] == "inflight"
        assert response["ok"], response
        client.close()
        assert proc.wait(timeout=60) == 0
        stderr = proc.stderr.read()
        assert "draining" in stderr and "drained=True" in stderr
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# The load harness: selftest, hit rate, engine equivalence
# ----------------------------------------------------------------------
def test_selftest_loadgen_matches_direct_engine(tmp_path):
    """The acceptance loop in miniature: boot a daemon, replay a small
    corpus twice over, require a clean pass, >=50% warm hits, and answers
    identical to the direct exec engine."""
    options = LoadgenOptions(
        requests=24,                      # 2x the 12 distinct cells
        concurrency=6,
        corpora=("recbound",),
        schedulers=("sgi", "rau"),
        fuzz_corpus_dir=None,
        budget=30.0,
        output_dir=str(tmp_path / "bench"),
        history_dir=str(tmp_path / "history"),
    )
    report, path, problems = run_selftest(options, jobs=0, equivalence=True)
    assert problems == []
    assert report.hit_rate is not None and report.hit_rate >= 0.5
    assert report.responses == 24

    payload = json.loads(path.read_text())
    assert path.name == "BENCH_service.json"
    assert payload["name"] == "service"
    # Provenance-stamped, and filed in the run-history store.
    assert payload["provenance"]["host_fingerprint"]
    from repro.obs.history import HistoryStore

    stored = HistoryStore(tmp_path / "history").runs("service")
    assert len(stored) == 1
    assert stored[0].payload["totals"]["service"]["requests"] == 24
    service = payload["totals"]["service"]
    assert service["requests"] == 24
    assert service["protocol_errors"] == 0
    assert service["hit_rate"] >= 0.5
    assert service["latency_ms"]["count"] == 24
    assert service["latency_ms"]["p99_ms"] >= service["latency_ms"]["p50_ms"]
    # Cells carry the standard BENCH schema (so `repro diff` aligns them)
    # plus the per-cell service accounting.
    from repro.exec.bench import BENCH_CELL_FIELDS

    assert len(payload["cells"]) == 12
    for cell in payload["cells"]:
        for field in BENCH_CELL_FIELDS:
            assert field in cell, field
        assert cell["service_requests"] >= 1
        assert "p50_ms" in cell["service_latency_ms"]


def test_service_bench_diffs_cleanly_against_itself(tmp_path):
    """BENCH_service.json must ride the existing diff gate: a run diffed
    against itself is regression-free, and latency moves only warn."""
    from repro.obs.diffbench import diff_reports

    options = LoadgenOptions(
        requests=12, concurrency=4, corpora=("recbound",),
        schedulers=("sgi",), fuzz_corpus_dir=None, budget=30.0,
        output_dir=str(tmp_path / "bench"),
    )
    _, path, problems = run_selftest(options, jobs=0)
    assert problems == []
    payload = json.loads(path.read_text())

    diff = diff_reports(payload, payload)
    assert diff.ok and not diff.warnings

    import copy

    slower = copy.deepcopy(payload)
    slower["totals"]["service"]["latency_ms"]["p99_ms"] *= 10
    diff = diff_reports(payload, slower)
    assert diff.ok                      # latency is never a regression
    assert any("service latency p99" in w for w in diff.warnings)
