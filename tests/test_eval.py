"""Tests for metrics, reporting, and experiment plumbing."""

import pytest

from repro.eval import ExperimentConfig, Table, bar_chart, geometric_mean, speedup, weighted_relative_time
from repro.eval.experiments import _baseline_cycles, _pipelined_cycles
from repro.core import pipeline_loop
from repro.machine import r8000
from repro.pipeline import CALLER_SAVED_FP, OverheadReport, pipeline_overhead

from .conftest import build_daxpy, build_sdot


class TestMetrics:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_weighted_relative_time(self):
        # Loop A doubled, loop B unchanged, equal weights: 1.5x slower.
        rel = weighted_relative_time([0.5, 0.5], [200.0, 100.0], [100.0, 100.0])
        assert rel == pytest.approx(1.5)

    def test_weighted_relative_time_validates(self):
        with pytest.raises(ValueError):
            weighted_relative_time([1.0], [1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            weighted_relative_time([0.0], [1.0], [1.0])

    def test_speedup(self):
        assert speedup(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestReporting:
    def test_table_formatting(self):
        t = Table("Demo", ["name", "value"])
        t.add("alpha", 1.23456)
        t.add("beta", "x")
        text = t.formatted()
        assert "Demo" in text
        assert "alpha" in text and "1.235" in text

    def test_table_notes(self):
        t = Table("T", ["a"])
        t.notes.append("hello")
        assert "note: hello" in t.formatted()

    def test_bar_chart_reference_marker(self):
        chart = bar_chart("C", [("x", 0.5), ("y", 1.5)], reference=1.0)
        assert "|" in chart
        assert "0.500" in chart and "1.500" in chart

    def test_bar_chart_empty(self):
        assert "no data" in bar_chart("C", [])


class TestOverheadModel:
    def test_components(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        report = pipeline_overhead(res.schedule, res.allocation, machine)
        assert report.fill_cycles == (res.schedule.n_stages - 1) * res.ii
        assert report.fill_cycles == report.drain_cycles
        assert report.total == report.fill_cycles + report.drain_cycles + report.save_restore_cycles

    def test_save_restore_kicks_in_beyond_caller_saved(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        if res.allocation.fp_used <= CALLER_SAVED_FP:
            assert pipeline_overhead(res.schedule, res.allocation, machine).save_restore_cycles == 0

    def test_single_stage_loop_has_no_ramp(self):
        report = OverheadReport(fill_cycles=0, drain_cycles=0, save_restore_cycles=0)
        assert report.total == 0


class TestExperimentHelpers:
    def test_pipelined_cycles_positive_and_overheaded(self, machine):
        loop = build_daxpy(machine)
        res = pipeline_loop(loop, machine)
        cycles = _pipelined_cycles(res, machine)
        bare = res.schedule.span + (loop.trip_count - 1) * res.ii
        assert cycles >= bare  # includes overhead and stalls

    def test_baseline_slower_than_pipelined(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        assert _baseline_cycles(loop, machine) > _pipelined_cycles(res, machine)

    def test_config_resolution(self):
        config = ExperimentConfig()
        assert config.resolved_machine().name == "r8000"
        options = config.most_options()
        assert options.time_limit == config.most_time_limit
        assert options.fallback
        assert not config.most_options(fallback=False).fallback


class TestCorpusProfiles:
    def test_profile_loop_fields(self, machine):
        from repro.eval.corpus import profile_loop

        loop = build_sdot(machine)
        p = profile_loop(loop, machine)
        assert p.n_ops == 4
        assert p.n_mem == 2
        assert p.n_indirect == 0
        assert p.rec_mii == 4
        assert p.min_ii == max(p.res_mii, p.rec_mii)
        assert p.bound == "recurrence"

    def test_livermore_profile_covers_all(self, machine):
        from repro.eval.corpus import livermore_profile

        table = livermore_profile(machine)
        assert len(table.rows) == 24
        bounds = {row[-2] for row in table.rows}
        # The suite must exercise both kinds of lower bound.
        assert "recurrence" in bounds and "resource" in bounds

    def test_spec92_profile_has_indirection(self, machine):
        from repro.eval.corpus import spec92_profile

        table = spec92_profile(machine)
        assert any(row[3] > 0 for row in table.rows)  # some indirect refs
        assert any(row[1] >= 90 for row in table.rows)  # the big bodies
