"""End-to-end functional correctness: pipelined code == sequential code."""

import pytest

from repro.core import PipelinerOptions, pipeline_loop
from repro.ir import LoopBuilder
from repro.machine import r8000, two_wide
from repro.pipeline import emit_pipelined_code
from repro.sim import DataLayout, run_pipelined, run_sequential
from repro.workloads.generators import GeneratorConfig, random_loop

from .conftest import (
    build_daxpy,
    build_divider,
    build_first_diff,
    build_memory_heavy,
    build_recurrence_chain,
    build_sdot,
)

ALL_BUILDERS = [
    build_sdot,
    build_daxpy,
    build_first_diff,
    build_recurrence_chain,
    build_memory_heavy,
    build_divider,
]


def check_loop(loop, machine, trips=40, seed=0, options=None):
    res = pipeline_loop(loop, machine, options)
    assert res.success, loop.name
    res.schedule.validate()
    layout = DataLayout(res.loop, trip_count=trips, seed=seed)
    seq = run_sequential(res.loop, layout, trips)
    pipe = run_pipelined(res.schedule, res.allocation, layout, trips)
    assert seq.matches(pipe), f"{loop.name}: pipelined execution diverged"
    return res


class TestPipelinedSemantics:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_kernels_compute_correctly(self, machine, builder):
        check_loop(builder(machine), machine)

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_kernels_compute_correctly_two_wide(self, builder):
        machine = two_wide()
        check_loop(builder(machine), machine)

    @pytest.mark.parametrize("order", ["FDMS", "FDNMS", "HMS", "RHMS"])
    def test_every_priority_order_produces_correct_code(self, machine, order):
        loop = build_memory_heavy(machine)
        check_loop(loop, machine, options=PipelinerOptions(orders=(order,)))

    def test_spilled_loop_computes_correctly(self):
        # A value used at both ends of a long serial chain has a lifetime
        # the scheduler cannot shorten; a reduced register file forces it
        # to be spilled, and the spilled code must still compute correctly.
        machine = r8000()
        machine.fp_regs = 18
        b = LoopBuilder("spilltest", machine=machine, trip_count=30)
        a = b.load("a", offset=0, stride=8)
        t = b.load("c", offset=0, stride=8)
        k = b.invariant("k")
        t = b.fadd(t, a)
        for _ in range(10):
            t = b.fadd(t, k)
        b.store("o", b.fadd(t, a), offset=0, stride=8)
        loop = b.build()
        res = check_loop(loop, machine, trips=30)
        assert res.spilled, "expected the reduced register file to force spills"

    def test_multi_distance_recurrence_semantics(self, machine):
        # Interleaved partial sums: s_n = x_n + s_{n-2}.
        b = LoopBuilder("interleave", machine=machine, trip_count=31)
        s = b.recurrence("s")
        x = b.load("x", offset=0, stride=8)
        s.close(b.fadd(x, s.use(distance=2)))
        b.live_out_value(s)
        check_loop(b.build(), machine, trips=31)

    def test_store_load_forwarding_through_memory(self, machine):
        # store x[i]; load x[i-1]: the pipelined code must preserve the
        # memory dependence.
        b = LoopBuilder("fwd", machine=machine, trip_count=25)
        y = b.load("y", offset=0, stride=8)
        b.store("x", y, offset=0, stride=8)
        w = b.load("x", offset=-8, stride=8)
        b.store("z", b.fadd(w, y), offset=0, stride=8)
        check_loop(b.build(), machine, trips=25)

    def test_if_converted_select_semantics(self, machine):
        b = LoopBuilder("select", machine=machine, trip_count=40)
        x = b.load("x", offset=0, stride=8)
        y = b.load("y", offset=0, stride=8)
        c = b.fcmp(x, y)
        b.store("o", b.select(c, x, y), offset=0, stride=8)
        check_loop(b.build(), machine, trips=40)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_loops_compute_correctly(self, machine, seed):
        config = GeneratorConfig(
            n_compute=8 + seed % 7,
            n_streams=2 + seed % 3,
            n_stores=1 + seed % 2,
            n_recurrences=seed % 3,
            p_fdiv=0.05 if seed % 4 == 0 else 0.0,
            trip_count=20,
        )
        loop = random_loop(seed, config, machine)
        check_loop(loop, machine, trips=20, seed=seed)


class TestEmittedCode:
    def test_kernel_instance_count(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        code = emit_pipelined_code(res.schedule, res.allocation)
        body_lines = [l for l in code.kernel if not l.strip().endswith(":")]
        assert len(body_lines) == res.allocation.kmin * loop.n_ops

    def test_fill_and_drain_nonempty_when_overlapped(self, machine):
        loop = build_sdot(machine)
        res = pipeline_loop(loop, machine)
        code = emit_pipelined_code(res.schedule, res.allocation)
        assert res.schedule.n_stages > 1
        assert code.fill_instructions > 0
        assert code.drain_instructions > 0

    def test_listing_mentions_physical_registers(self, machine):
        loop = build_daxpy(machine)
        res = pipeline_loop(loop, machine)
        listing = emit_pipelined_code(res.schedule, res.allocation).listing()
        assert "$f" in listing
        assert "kernel" in listing
