"""Replay every minimized reproducer in tests/fuzz_corpus/.

Each corpus entry is one finding the fuzzer minimized, replayed through
the exact oracle that produced it (:func:`repro.fuzz.evaluate_spec` runs
the worker code path inline):

* ``expect == "clean"`` entries must pass every oracle layer on current
  code;
* ``expect == "violation"`` entries are live bugs and must keep
  reproducing until fixed (then the entry flips to clean);
* entries with an ``injected_fault`` additionally re-apply the fault and
  assert the oracle layer that caught it originally still catches it —
  a regression test of the oracle itself.
"""

import pytest

from repro.fuzz import evaluate_spec
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_entries

ENTRIES = load_entries(DEFAULT_CORPUS_DIR)


def _ids():
    return [entry.name for entry in ENTRIES]


def test_corpus_is_present():
    """The checked-in corpus must never silently vanish."""
    assert ENTRIES, f"no reproducers under {DEFAULT_CORPUS_DIR}"


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_entry_matches_expectation(entry):
    verdict = evaluate_spec(entry.spec, entry.schedulers, seed=entry.seed)
    if entry.expect == "clean":
        assert verdict.violations == [], (
            f"{entry.name} regressed: {[v.to_dict() for v in verdict.violations]}"
        )
    else:
        assert any(
            v.kind == entry.violation.kind
            and v.scheduler == entry.violation.scheduler
            for v in verdict.violations
        ), f"{entry.name} no longer reproduces its recorded violation"


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if e.injected_fault],
    ids=[e.name for e in ENTRIES if e.injected_fault],
)
def test_injected_fault_still_caught(entry):
    verdict = evaluate_spec(
        entry.spec, entry.schedulers, seed=entry.seed,
        inject=entry.injected_fault,
    )
    assert any(
        v.kind == entry.violation.kind
        and v.scheduler == entry.violation.scheduler
        for v in verdict.violations
    ), (
        f"oracle layer {entry.violation.kind!r} no longer catches "
        f"injected fault {entry.injected_fault!r} on {entry.name}"
    )


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_entry_metadata_is_consistent(entry):
    from repro.exec.hashing import fingerprint_loop

    assert entry.n_ops == entry.spec.n_ops
    assert entry.expect in ("clean", "violation")
    assert entry.violation is not None
    assert entry.fingerprint == fingerprint_loop(entry.spec.build())
