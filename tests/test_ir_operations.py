"""Unit tests for the operation/memory-reference layer."""

import pytest

from repro.ir import MemRef, OpClass, Operation, RegClass, relative_bank, result_reg_class


class TestMemRef:
    def test_address_affine_in_iteration(self):
        m = MemRef(base="a", offset=16, stride=8)
        assert m.address(1000, 0) == 1016
        assert m.address(1000, 5) == 1056

    def test_indirect_reference_has_no_static_address(self):
        m = MemRef(base="idx", offset=None)
        assert not m.is_direct
        with pytest.raises(ValueError):
            m.address(0, 0)

    def test_direct_flag(self):
        assert MemRef(base="a", offset=0).is_direct


class TestRelativeBank:
    def test_double_word_neighbours_are_opposite_banks(self):
        a = MemRef(base="v", offset=0, stride=8)
        b = MemRef(base="v", offset=8, stride=8)
        assert relative_bank(a, b) == 1

    def test_two_double_words_apart_same_bank(self):
        a = MemRef(base="v", offset=0, stride=8)
        b = MemRef(base="v", offset=16, stride=8)
        assert relative_bank(a, b) == 0

    def test_single_precision_neighbours_unknown(self):
        # v[i] and v[i+1] single precision: 4 bytes apart, bank depends on
        # the (unknown) alignment of v — the alvinn case of Section 4.3.
        a = MemRef(base="v", offset=0, stride=4, width=4)
        b = MemRef(base="v", offset=4, stride=4, width=4)
        assert relative_bank(a, b) is None

    def test_single_precision_two_apart_known_opposite(self):
        # v[i] and v[i+2] single precision: 8 bytes apart -> opposite banks.
        a = MemRef(base="v", offset=0, stride=4, width=4)
        b = MemRef(base="v", offset=8, stride=4, width=4)
        assert relative_bank(a, b) == 1

    def test_different_bases_unknown(self):
        a = MemRef(base="u", offset=0)
        b = MemRef(base="v", offset=8)
        assert relative_bank(a, b) is None

    def test_indirect_reference_unknown(self):
        a = MemRef(base="v", offset=0)
        b = MemRef(base="v", offset=None)
        assert relative_bank(a, b) is None

    def test_mismatched_strides_unknown(self):
        a = MemRef(base="v", offset=0, stride=8)
        b = MemRef(base="v", offset=8, stride=16)
        assert relative_bank(a, b) is None


class TestOperation:
    def test_memory_op_requires_memref(self):
        with pytest.raises(ValueError):
            Operation(index=0, opcode="load", opclass=OpClass.LOAD)

    def test_store_memref_direction_checked(self):
        with pytest.raises(ValueError):
            Operation(
                index=0,
                opcode="store",
                opclass=OpClass.STORE,
                srcs=("v",),
                mem=MemRef(base="a", is_store=False),
            )

    def test_dest_accessor(self):
        op = Operation(index=0, opcode="fadd", opclass=OpClass.FADD, dests=("t",), srcs=("a", "b"))
        assert op.dest == "t"

    def test_dest_accessor_raises_without_single_dest(self):
        op = Operation(
            index=0, opcode="store", opclass=OpClass.STORE, srcs=("v",),
            mem=MemRef(base="a", is_store=True),
        )
        with pytest.raises(ValueError):
            _ = op.dest

    def test_with_index_preserves_payload(self):
        op = Operation(index=3, opcode="fmul", opclass=OpClass.FMUL, dests=("t",), srcs=("a", "b"))
        moved = op.with_index(7)
        assert moved.index == 7
        assert moved.opcode == "fmul"
        assert moved.srcs == ("a", "b")

    def test_str_includes_memref(self):
        op = Operation(
            index=1, opcode="load", opclass=OpClass.LOAD, dests=("v",),
            mem=MemRef(base="a", offset=8, stride=16),
        )
        assert "@a+8+i*16" in str(op)


class TestRegClasses:
    def test_fp_result_classes(self):
        assert result_reg_class(OpClass.FADD) is RegClass.FP
        assert result_reg_class(OpClass.LOAD) is RegClass.FP

    def test_int_result_classes(self):
        assert result_reg_class(OpClass.IALU) is RegClass.INT
        assert result_reg_class(OpClass.IMUL) is RegClass.INT

    def test_is_memory(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.FADD.is_memory

    def test_is_float(self):
        assert OpClass.FMADD.is_float
        assert not OpClass.IALU.is_float
