"""The determinism lint flags unordered iteration and ambient randomness."""

from __future__ import annotations

import textwrap

import pytest

from repro.analyze.codelint import lint_paths, lint_source

pytestmark = pytest.mark.verify


def lint(code):
    return lint_source(textwrap.dedent(code))


def rules(code):
    return [f.rule for f in lint(code)]


class TestSetIteration:
    def test_for_over_set_call(self):
        assert rules("for x in set(items):\n    use(x)\n") == ["DET001"]

    def test_for_over_set_literal(self):
        assert rules("for x in {a, b, c}:\n    use(x)\n") == ["DET001"]

    def test_for_over_set_union(self):
        assert rules("for x in set(a) | set(b):\n    use(x)\n") == ["DET001"]

    def test_one_known_set_side_is_enough(self):
        assert rules("for x in names | set(b):\n    use(x)\n") == ["DET001"]

    def test_list_comprehension_over_set(self):
        assert rules("xs = [x for x in set(items)]\n") == ["DET001"]

    def test_list_call_materialises_order(self):
        assert rules("xs = list(set(items))\n") == ["DET001"]

    def test_join_materialises_order(self):
        assert rules("s = ', '.join({a, b})\n") == ["DET001"]

    def test_sorted_set_is_fine(self):
        assert rules("for x in sorted(set(items)):\n    use(x)\n") == []

    def test_sorted_genexp_over_set_is_fine(self):
        assert rules("xs = sorted(x for x in set(items) if p(x))\n") == []

    def test_order_free_sinks_are_fine(self):
        assert rules("n = len(set(items)); m = max(set(items))\n") == []

    def test_set_comprehension_over_set_is_fine(self):
        # Unordered in, unordered out: a set built from a set leaks nothing.
        assert rules("diff = {x for x in set(a) | set(b) if bad(x)}\n") == []

    def test_iterating_a_plain_name_is_not_flagged(self):
        # No type inference: only statically-evident sets are flagged.
        assert rules("for x in items:\n    use(x)\n") == []


class TestRandom:
    def test_global_random_call(self):
        assert rules("import random\nx = random.choice(items)\n") == ["DET002"]

    def test_global_seed_is_flagged_too(self):
        assert rules("import random\nrandom.seed(0)\n") == ["DET002"]

    def test_explicit_rng_constructor_is_fine(self):
        assert rules("import random\nrng = random.Random(7)\n") == []

    def test_drawing_from_an_rng_parameter_is_fine(self):
        assert rules("def pick(rng):\n    return rng.choice([1, 2])\n") == []

    def test_from_import_of_global_state(self):
        assert rules("from random import choice\n") == ["DET002"]

    def test_from_import_of_random_class_is_fine(self):
        assert rules("from random import Random\n") == []


class TestSuppression:
    def test_marker_on_the_line(self):
        assert rules("for x in set(a):  # det: ok — sink is a set\n    s.add(x)\n") == []

    def test_marker_anywhere_in_the_statement_span(self):
        code = """\
        xs = [
            x
            for x in set(items)  # det: ok
        ]
        """
        assert rules(code) == []

    def test_marker_must_be_in_a_comment(self):
        assert rules('m = "det: ok"\nfor x in set(a):\n    use(x)\n') == ["DET001"]

    def test_allowlist(self, tmp_path):
        target = tmp_path / "gen.py"
        target.write_text("for x in set(a):\n    use(x)\n")
        assert len(lint_paths([str(target)])) == 1
        assert lint_paths([str(target)], allow=[("gen.py", "DET001")]) == []
        # The allowlist is per rule: DET002 in the same file still fires.
        target.write_text("import random\nx = random.random()\n")
        assert [f.rule for f in lint_paths([str(target)], allow=[("gen.py", "DET001")])] == [
            "DET002"
        ]


class TestTree:
    def test_src_repro_is_clean(self):
        """The lint gate `make lint` enforces, asserted as a test too."""
        assert lint_paths(["src/repro"]) == []
