"""Tests for repro.obs.html (the dashboard) and Table.to_rows/clipping."""

from __future__ import annotations

import pytest

from repro.eval.report import MAX_CELL_WIDTH, Table
from repro.obs.html import (
    render_report,
    validate_html,
    validate_report_file,
    write_report,
)


def _explanation(loop="lk01", scheduler="sgi", binding="resource", **kw):
    base = {
        "loop": loop, "scheduler": scheduler, "success": True,
        "ii": 2, "min_ii": 2, "res_mii": 2, "rec_mii": 1,
        "minii_side": "resource", "binding": binding,
        "detail": "bottleneck resource 'mem' at 100% utilization",
        "gap": 0, "critical_circuit": [], "utilization": {"mem": 1.0},
        "bottleneck": "mem", "spill_rounds": 0, "spilled": [],
        "fallback": False,
        "attempts": [{"phase": "sgi", "ii": 2, "success": True}],
        "replay": None,
        "mrt": [
            {
                "slot": 0,
                "ops": [{"index": 0, "opcode": "fadd", "stage": 0}],
                "used": {"fp": 1, "mem": 0},
            },
            {
                "slot": 1,
                "ops": [{"index": 1, "opcode": "load", "stage": 0}],
                "used": {"fp": 0, "mem": 1},
            },
        ],
        "obs": {},
    }
    base.update(kw)
    return base


class TestTableRows:
    def test_to_rows_formats_and_clips(self):
        table = Table("t", ["a", "b"])
        table.add(1.23456, "x" * 100)
        (row,) = table.to_rows(max_width=10)
        assert row[0] == "1.235"
        assert len(row[1]) == 10 and row[1].endswith("…")
        # max_width=0 disables clipping (the HTML renderer's setting).
        (full,) = table.to_rows()
        assert full[1] == "x" * 100

    def test_control_characters_are_escaped(self):
        table = Table("t", ["a"])
        table.add("line1\nline2\ttab")
        (row,) = table.to_rows()
        assert row[0] == "line1\\nline2\\ttab"

    def test_formatted_uses_clipped_cells(self):
        table = Table("title", ["col"])
        table.add("y" * (MAX_CELL_WIDTH * 2))
        text = table.formatted()
        assert "…" in text
        assert "y" * (MAX_CELL_WIDTH * 2) not in text
        longest = max(len(line) for line in text.splitlines())
        assert longest <= MAX_CELL_WIDTH + 2


class TestRenderReport:
    def test_empty_report_is_still_valid(self):
        html = render_report()
        assert validate_html(html) == []
        assert "empty report" in html

    def test_all_panels_present_and_valid(self):
        table = Table("Figure 6", ["kernel", "ratio"])
        table.add("lk01", 1.5)
        diff = {
            "old": "pipeline", "new": "pipeline",
            "old_code_version": "abc", "new_code_version": "def",
            "by_cause": {"code": 1},
            "regressions": ["II regressed: a × sgi 4 -> 5"],
            "warnings": [], "infos": [],
            "cells": [{
                "loop": "a", "scheduler": "sgi", "status": "regression",
                "cause": "code", "deltas": {"ii": [4, 5]},
                "obs_deltas": {}, "notes": [],
            }],
        }
        bench = {
            "name": "pipeline", "machine": "r8000", "wall_seconds": 1.0,
            "totals": {
                "cells": 2,
                "by_scheduler": {
                    "sgi": {"cells": 1, "at_min_ii": 1, "timeouts": 0,
                            "fallbacks": 0, "errors": 0,
                            "schedule_seconds": 0.01},
                },
                "obs": {"bnb.placements": 42},
                "ilp_vs_heuristic_time_geomean": 212.7,
            },
        }
        html = render_report(
            meta={"corpus": "livermore"},
            explanations=[
                _explanation(),
                _explanation(loop="lk08", binding="register_pressure", ii=19,
                             gap=8, min_ii=11),
            ],
            tables=[table],
            charts=["lk01 ##### 1.5"],
            diff=diff,
            bench=bench,
        )
        problems = validate_html(
            html, required_ids=["explanations", "figures", "diff", "bench"]
        )
        assert problems == []
        # Self-contained: inline style/script, no network fetches.
        assert "<style>" in html and "<script>" in html
        assert "http://" not in html and "https://" not in html
        assert "register_pressure" in html
        assert "212.7" in html

    def test_cells_are_escaped(self):
        table = Table("fig", ["v"])
        table.add("<script>alert(1)</script>")
        html = render_report(
            explanations=[_explanation(detail="<b>bold</b> & <i>sneaky</i>")],
            tables=[table],
        )
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;alert(1)&lt;/script&gt;" in html
        assert "<b>bold</b>" not in html

    def test_drilldown_carries_mrt_and_timeline(self):
        html = render_report(explanations=[_explanation()])
        assert "<details>" in html
        assert "Modulo reservation table" in html
        assert "II-attempt timeline" in html
        assert "fadd" in html


class TestValidation:
    def test_rejects_empty_and_truncated_documents(self):
        assert validate_html("") == ["document is empty"]
        problems = validate_html("<!DOCTYPE html><html><head><title>t</title>")
        assert any("unclosed" in p or "missing" in p for p in problems)

    def test_detects_mismatched_nesting(self):
        bad = (
            "<!DOCTYPE html><html><head><title>t</title></head>"
            "<body><section><table></section></table>"
            + "x" * 50 + "</body></html>"
        )
        assert any("mis-nested" in p or "unopened" in p for p in validate_html(bad))

    def test_required_ids(self):
        html = render_report(explanations=[_explanation()])
        assert validate_html(html, required_ids=["explanations"]) == []
        assert validate_html(html, required_ids=["figures"]) != []

    def test_validate_report_file(self, tmp_path):
        missing = validate_report_file(tmp_path / "nope.html")
        assert missing and "no report" in missing[0]
        path = write_report(
            tmp_path / "sub" / "report.html",
            explanations=[_explanation()],
        )
        assert validate_report_file(path, ["explanations"]) == []


class TestReportCli:
    def test_report_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "report.html"
        code = main([
            "report", "--html", "--corpus", "livermore", "--limit", "2",
            "--schedulers", "sgi", "--experiments", "none",
            "--bench", str(tmp_path / "nobench"),
            "--baseline", str(tmp_path / "nobase"),
            "--output", str(out), "--check",
        ])
        assert code == 0
        assert validate_report_file(out, ["explanations"]) == []
        assert "valid" in capsys.readouterr().out
