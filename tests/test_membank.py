"""Tests for memory-bank pairing, risky-grouping avoidance, and polishing."""

import pytest

from repro.core import BnBConfig, PipelinerOptions, modulo_schedule_bnb, order_by_name, pipeline_loop
from repro.core.bankpolish import polish_bank_schedule
from repro.core.membank import BankPairer
from repro.core.sched import Schedule
from repro.ir import LoopBuilder
from repro.machine import r8000
from repro.sim import DataLayout, simulate_pipelined


def even_streams_loop(machine, n=4, trip=400):
    """n independent even-aligned double-precision streams."""
    b = LoopBuilder("streams", machine=machine, trip_count=trip)
    acc = b.recurrence("acc")
    t = None
    for k in range(n):
        v = b.load(f"s{k}", offset=0, stride=8)
        b.set_parity(f"s{k}", k % 2)
        t = v if t is None else b.fadd(t, v)
    acc.close(b.fadd(t, acc.use(distance=2)))
    b.live_out_value(acc)
    return b.build()


class TestBankPairer:
    def test_partner_lists_same_base(self, machine):
        b = LoopBuilder("t", machine=machine)
        v0 = b.load("v", offset=0, stride=8)
        v1 = b.load("v", offset=8, stride=8)
        v2 = b.load("v", offset=16, stride=8)
        b.store("o", b.fadd(b.fadd(v0, v1), v2), offset=0, stride=8)
        loop = b.build()
        pairer = BankPairer(loop, ii=2, priority=list(range(loop.n_ops)))
        # v0<->v1 opposite; v0<->v2 same bank (16 bytes apart).
        assert 1 in pairer.partners_of(0)
        assert 2 not in pairer.partners_of(0)

    def test_cross_base_with_known_parities(self, machine):
        loop = even_streams_loop(machine)
        pairer = BankPairer(loop, ii=2, priority=list(range(loop.n_ops)))
        # Loads sit at op indices 0, 1, 3, 5 (fadds interleave).
        # streams 0 (parity 0) and 1 (parity 1): opposite banks, pairable.
        assert pairer.relative_bank_of(0, 1) == 1
        assert pairer.relative_bank_of(0, 3) == 0  # both parity 0
        assert pairer.relative_bank_of(0, 2) is None  # op 2 is an fadd

    def test_runtime_relative_bank_stage_shift(self, machine):
        loop = even_streams_loop(machine)
        pairer = BankPairer(loop, ii=2, priority=list(range(loop.n_ops)))
        # Same slot, same stage: parities decide (streams s0,s2 same bank).
        assert pairer.runtime_relative_bank(0, 0, 3, 0) == 0
        # One stage apart (stride 8 = one double word): the bank flips.
        assert pairer.runtime_relative_bank(0, 2, 3, 0) == 1
        # Different slots never share a cycle.
        assert pairer.runtime_relative_bank(0, 1, 3, 0) is None

    def test_pairs_needed_counts_forced_dual_issues(self, machine):
        loop = even_streams_loop(machine, n=4)
        assert BankPairer(loop, ii=2, priority=list(range(loop.n_ops))).pairs_needed == 2
        assert BankPairer(loop, ii=6, priority=list(range(loop.n_ops))).pairs_needed == 0

    def test_note_and_unnote(self, machine):
        loop = even_streams_loop(machine)
        pairer = BankPairer(loop, ii=2, priority=list(range(loop.n_ops)))
        pairer.note_pair(0, 1)
        assert pairer.mate_of(0) == 1
        assert pairer.pairs_scheduled == 1
        assert pairer.unnote(1) == 0
        assert pairer.mate_of(0) is None
        assert pairer.pairs_scheduled == 0

    def test_double_pairing_rejected(self, machine):
        loop = even_streams_loop(machine)
        pairer = BankPairer(loop, ii=2, priority=list(range(loop.n_ops)))
        pairer.note_pair(0, 1)
        with pytest.raises(ValueError):
            pairer.note_pair(0, 2)


class TestSchedulerIntegration:
    def test_pairing_produces_conflict_free_schedule(self, machine):
        loop = even_streams_loop(machine)
        res = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
        assert res.success
        layout = DataLayout(res.loop, trip_count=400)
        rep = simulate_pipelined(res.schedule, layout, machine, trips=400)
        assert rep.stall_cycles == 0

    def test_bank_heuristics_never_increase_ii(self, machine):
        loop = even_streams_loop(machine)
        on = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
        off = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=False))
        assert on.ii == off.ii

    def test_alvinn_style_effect(self, machine):
        # 4 single-precision streams, even-aligned: pairing rescues the
        # memory-bound loop from systematic same-bank batching.
        b = LoopBuilder("alvinnish", machine=machine, trip_count=600)
        s = b.recurrence("s")
        total = None
        for k in range(2):
            x = b.load("v", offset=4 * k, stride=8, width=4)
            y = b.load("u", offset=4 * k, stride=8, width=4)
            p = b.fmul(x, y)
            total = p if total is None else b.fadd(total, p)
        s.close(b.fadd(total, s.use(distance=2)))
        b.set_parity("v", 0)
        b.set_parity("u", 0)
        b.live_out_value(s)
        loop = b.build()
        on = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
        off = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=False))
        layout_on = DataLayout(on.loop, trip_count=600)
        layout_off = DataLayout(off.loop, trip_count=600)
        stalls_on = simulate_pipelined(on.schedule, layout_on, machine, trips=600).stall_cycles
        stalls_off = simulate_pipelined(off.schedule, layout_off, machine, trips=600).stall_cycles
        assert stalls_on <= stalls_off


class TestPolish:
    def test_polish_moves_risky_ref(self, machine):
        loop = even_streams_loop(machine, n=4)
        # Handcraft a schedule batching same-parity streams 0,2 and 1,3.
        order = order_by_name(loop, machine, "FDMS")
        res = modulo_schedule_bnb(loop, machine, 4, order, BnBConfig())
        assert res.success
        from repro.core.pipestage import adjust_pipestages

        times = adjust_pipestages(loop, 4, res.times)
        sched = Schedule(loop=loop, machine=machine, ii=4, times=times)
        pairer = BankPairer(loop, 4, order)
        polished = polish_bank_schedule(sched, machine, pairer)
        if polished is not None:
            polished.validate()
            assert polished.ii == sched.ii

    def test_polish_preserves_dependences(self, machine):
        b = LoopBuilder("chain", machine=machine, trip_count=100)
        v = b.load("a", offset=0, stride=8)
        b.set_parity("a", 0)
        w = b.load("b", offset=0, stride=8)
        b.set_parity("b", 0)
        b.store("o", b.fadd(v, w), offset=0, stride=8)
        loop = b.build()
        sched = Schedule(
            loop=loop, machine=machine, ii=2,
            times={0: 0, 1: 1, 2: 7, 3: 11},
        )
        pairer = BankPairer(loop, 2, list(range(loop.n_ops)))
        polished = polish_bank_schedule(sched, machine, pairer)
        if polished is not None:
            polished.validate()

    def test_polish_noop_when_clean(self, machine):
        loop = even_streams_loop(machine, n=2)
        sched = Schedule(
            loop=loop, machine=machine, ii=2,
            times={0: 0, 1: 0, 2: 6, 3: 10},
        )
        pairer = BankPairer(loop, 2, list(range(loop.n_ops)))
        # Streams 0 (parity 0) and 1 (parity 1) in the same cycle: clean.
        assert polish_bank_schedule(sched, machine, pairer) is None
