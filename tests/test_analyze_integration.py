"""End-to-end soundness of the certified bounds against the pipeliners.

Three integration angles:

* every MOST-*proved-optimal* II must sit at or above the certified
  refined bound — an optimal II below a validated bound would mean a
  proof and an exhaustive search disagree, i.e. one of them is broken
  (replayed over the committed fuzz corpus and a seeded generator sweep);
* the driver's static-bound pruning is outcome-identical — the same IIs
  come out with the pruning on and off, only the search effort differs;
* a certified bound above the MaxII circuit breaker short-circuits the
  II search to a clean unschedulable result without invoking the B&B
  scheduler at all.
"""

from __future__ import annotations

import pytest

from repro.analyze.bounds import compute_bounds, schedulable_bound
from repro.core import min_ii, pipeline_loop
from repro.core.driver import PipelinerOptions
from repro.core.iisearch import search_ii
from repro.core.sched import SchedulingStats
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_entries
from repro.machine import r8000
from repro.most.scheduler import MostOptions, most_pipeline_loop
from repro.verify.boundcheck import check_achieved, check_bounds
from repro.workloads.generators import random_spec
from repro.workloads.recbound import recbound_kernels

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def machine():
    return r8000()


def _most_loops(machine):
    """Fuzz-corpus loops plus a seeded generator sweep, deduplicated."""
    loops = {}
    for entry in load_entries(DEFAULT_CORPUS_DIR):
        loop = entry.spec.build()
        loops.setdefault(loop.name, loop)
    for seed in range(12):
        loop = random_spec(seed=20260800 + seed).build()
        loops.setdefault(loop.name, loop)
    return list(loops.values())


class TestBoundsVsProvedOptimal:
    def test_refined_bound_never_exceeds_proved_optimal_ii(self, machine):
        """refined_bound <= II on every MOST-proved-optimal, spill-free loop."""
        proved = 0
        for loop in _most_loops(machine):
            bounds = compute_bounds(loop, machine)
            payload = bounds.to_dict()
            assert check_bounds(loop, machine, payload).ok, loop.name
            result = most_pipeline_loop(
                loop,
                machine,
                MostOptions(time_limit=2.0, engine="scipy"),
                verify=False,
            )
            if not (result.success and result.optimal):
                continue
            fallback = getattr(result, "fallback_result", None)
            if fallback is not None and fallback.spill_rounds:
                continue
            proved += 1
            assert result.ii >= bounds.refined_bound, (
                f"{loop.name}: ILP proved II={result.ii} optimal but the "
                f"certified bound claims >= {bounds.refined_bound}"
            )
            report = check_achieved(
                payload, ii=result.ii, spill_free=True, source="most/optimal"
            )
            assert report.ok, f"{loop.name}: {report.formatted()}"
        # The corpus + sweep must actually exercise the property.
        assert proved >= 8


class TestPruningIsOutcomeIdentical:
    def test_same_iis_with_and_without_static_bounds(self, machine):
        """recbound, where the bounds actually prune: identical IIs, less work."""
        pruned_effort = baseline_effort = 0
        for loop in recbound_kernels(machine):
            on = pipeline_loop(
                loop, machine, PipelinerOptions(static_bounds=True), verify=False
            )
            off = pipeline_loop(
                loop, machine, PipelinerOptions(static_bounds=False), verify=False
            )
            assert on.success == off.success, loop.name
            assert on.ii == off.ii, loop.name
            assert on.spill_rounds == off.spill_rounds, loop.name
            pruned_effort += on.stats.placements
            baseline_effort += off.stats.placements
        # The corpus lifts on 5/6 loops; pruning must show up in effort.
        assert pruned_effort < baseline_effort / 2


class TestCircuitBreakerShortCircuit:
    def test_bound_above_max_ii_skips_the_search(self, machine):
        """search_ii: a certified bound past MaxII means zero B&B calls."""
        loop = recbound_kernels(machine)[0]
        mii = min_ii(loop, machine)
        stats = SchedulingStats()
        result = search_ii(
            loop,
            machine,
            priority=list(range(loop.n_ops)),
            min_ii=mii,
            max_ii=2 * mii,
            stats=stats,
            static_bound=2 * mii + 1,
        )
        assert result.ii is None and result.times is None
        assert result.attempted == []
        assert stats.attempts == 0 and stats.placements == 0

    def test_driver_reports_clean_unschedulable(self, machine, monkeypatch):
        """A bound past MaxII surfaces as an ordinary scheduling failure."""
        import repro.analyze.bounds as bounds_mod

        loop = recbound_kernels(machine)[0]

        def sky_high(loop, machine, cap=None, base=None):
            return (cap if cap is not None else 0) + 1

        monkeypatch.setattr(bounds_mod, "schedulable_bound", sky_high)
        result = pipeline_loop(loop, machine, verify=False)
        assert not result.success
        assert result.schedule is None and result.allocation is None

    def test_fast_entry_matches_full_computation(self, machine):
        """schedulable_bound (driver entry) == compute_bounds' schedulable."""
        for loop in recbound_kernels(machine):
            mii = min_ii(loop, machine)
            fast = schedulable_bound(loop, machine, cap=2 * mii, base=mii)
            full = compute_bounds(loop, machine).schedulable_bound
            assert fast == full, loop.name
