"""Live service telemetry: Prometheus exposition, spans, slow-request log.

Drives :class:`repro.serve.service.SchedulerService` directly (thread
workers, ``jobs=0``) and :class:`repro.serve.daemon.ServeDaemon` on a
temporary unix socket + ephemeral HTTP metrics port, the same idioms as
``test_serve_service.py``/``test_serve_daemon.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import recording
from repro.obs.export import validate_chrome_trace_file, write_chrome_trace
from repro.obs.service import (
    LatencyStats,
    ServiceMetrics,
    SlowRequestLog,
    parse_prometheus,
    render_prometheus,
)
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import encode, parse_schedule_request
from repro.serve.service import SchedulerService, ServeConfig

LOOP = "livermore:lk01_hydro"


def _request(i="r1", **overrides):
    payload = {"id": i, "loop": LOOP, "scheduler": "sgi"}
    payload.update(overrides)
    return parse_schedule_request({"op": "schedule", **payload})


def _service(**overrides) -> SchedulerService:
    config = ServeConfig(jobs=0, cache_dir=None, **overrides)
    return SchedulerService(config)


async def _with_service(service, fn):
    await service.start()
    try:
        return await fn(service)
    finally:
        await service.stop(drain=False)


# ----------------------------------------------------------------------
# LatencyStats reservoir edge cases
# ----------------------------------------------------------------------
def test_latency_stats_empty_and_single_sample():
    stats = LatencyStats()
    assert stats.percentile(50) is None
    assert stats.mean_ms is None
    assert stats.to_dict()["max_ms"] is None

    stats.record(7.5)
    assert stats.percentile(50) == 7.5
    assert stats.percentile(99) == 7.5
    assert stats.mean_ms == 7.5
    assert stats.to_dict()["max_ms"] == 7.5


def test_latency_stats_percentiles_small_n():
    stats = LatencyStats()
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        stats.record(v)
    assert stats.percentile(0) == 1.0
    assert stats.percentile(50) == 3.0
    assert stats.percentile(100) == 5.0
    assert stats.percentile(50) <= stats.percentile(90) <= stats.percentile(99)


def test_latency_stats_decimation_keeps_order_and_extremes():
    stats = LatencyStats(max_samples=8)
    for v in range(1, 101):
        stats.record(float(v))
    # Decimation halves resolution, never the totals.
    assert stats.count == 100
    assert stats.max_ms == 100.0
    assert stats.mean_ms == pytest.approx(50.5)
    assert len(stats._samples) <= 8
    p50, p90, p99 = (stats.percentile(p) for p in (50, 90, 99))
    assert p50 <= p90 <= p99 <= stats.max_ms
    assert stats.percentile(99) >= 50.0  # the tail survives decimation


# ----------------------------------------------------------------------
# Prometheus exposition round-trip
# ----------------------------------------------------------------------
def test_prometheus_roundtrip_covers_every_counter():
    metrics = ServiceMetrics()
    metrics.requests = 7
    metrics.shed = 1
    metrics.rejected = 2
    metrics.worker_respawns = 1
    metrics.memory_hits = 3
    metrics.disk_hits = 1
    metrics.misses = 2
    metrics.inflight_dedup = 1
    metrics.observe_queue(5)
    metrics.observe_queue(2)
    metrics.record_response("sgi", 12.5, schedule_seconds=0.5)
    metrics.record_response("most", 200.0, schedule_seconds=1.5, error=True)

    text = render_prometheus(metrics)
    parsed = parse_prometheus(text)

    assert parsed["repro_requests_total"] == 7
    assert parsed["repro_responses_total"] == 2
    assert parsed["repro_errors_total"] == 1
    assert parsed["repro_shed_total"] == 1
    assert parsed["repro_rejected_total"] == 2
    assert parsed["repro_worker_respawns_total"] == 1
    assert parsed["repro_cache_memory_hits_total"] == 3
    assert parsed["repro_cache_disk_hits_total"] == 1
    assert parsed["repro_cache_misses_total"] == 2
    assert parsed["repro_cache_inflight_dedup_total"] == 1
    assert parsed["repro_queue_depth"] == 2
    assert parsed["repro_queue_depth_max"] == 5
    assert parsed["repro_cache_hit_ratio"] == pytest.approx(4 / 6)
    assert parsed["repro_request_latency_samples"] == 2
    assert parsed['repro_request_latency_ms{quantile="max"}'] == 200.0
    assert parsed['repro_scheduler_requests_total{scheduler="sgi"}'] == 1
    assert parsed['repro_scheduler_errors_total{scheduler="most"}'] == 1
    assert parsed['repro_scheduler_schedule_seconds_total{scheduler="most"}'] == 1.5
    assert parsed["repro_uptime_seconds"] >= 0

    # Every exposed family carries HELP and TYPE lines.
    families = {
        key.split("{")[0] for key in parsed
    }
    for family in families:
        assert f"# HELP {family} " in text, family
        assert f"# TYPE {family} " in text, family


def test_prometheus_none_values_parse_back_as_none():
    parsed = parse_prometheus(render_prometheus(ServiceMetrics()))
    assert parsed["repro_throughput_rps"] is None
    assert parsed["repro_cache_hit_ratio"] is None
    assert parsed['repro_request_latency_ms{quantile="0.99"}'] is None


# ----------------------------------------------------------------------
# Slow-request log
# ----------------------------------------------------------------------
def test_slow_request_log_threshold(tmp_path):
    log = SlowRequestLog(tmp_path / "slow.ndjson", threshold_ms=50.0)
    assert not log.observe({"request_id": "a", "latency_ms": 10.0})
    assert not log.path.exists()
    assert log.observe({"request_id": "b", "latency_ms": 80.0})
    assert log.observe({"request_id": "c", "latency_ms": 50.0})
    assert not log.observe({"request_id": "d"})  # no latency -> never slow
    assert log.emitted == 2

    entries = log.entries()
    assert [e["request_id"] for e in entries] == ["b", "c"]
    assert all(e["threshold_ms"] == 50.0 for e in entries)


# ----------------------------------------------------------------------
# Request spans + gauges through the live service
# ----------------------------------------------------------------------
def test_request_spans_and_slow_log_through_service(tmp_path):
    slow_path = tmp_path / "slow.ndjson"

    async def scenario(service):
        first = await service.submit(_request("r1"))
        assert first["ok"]
        second = await service.submit(_request("r2"))  # warm: cache hit
        assert second["ok"] and second["cached"]
        await asyncio.sleep(0.12)  # let the gauge loop tick
        return service

    with recording() as rec:
        asyncio.run(_with_service(
            _service(
                slow_log_path=str(slow_path),
                slow_ms=0.0,            # force: every request is "slow"
                gauge_interval=0.03,
            ),
            scenario,
        ))

    names = [e["name"] for e in rec.events]
    for phase in ("serve.admission", "serve.coalesce", "serve.solve",
                  "serve.respond"):
        assert names.count(phase) >= 2, phase  # B and E per request
    assert "serve.queue_depth" in names
    assert "serve.cache_hit_rate" in names

    # The merged Chrome trace must validate (schema, nesting, ordering).
    trace = write_chrome_trace(rec, tmp_path / "trace.json")
    assert validate_chrome_trace_file(trace) == []

    entries = SlowRequestLog(slow_path, 0.0).entries()
    assert len(entries) == 2
    for entry in entries:
        assert entry["scheduler"] == "sgi"
        assert set(entry["phases_ms"]) == {
            "admission", "coalesce", "solve", "respond",
        }
    assert entries[1]["cached"] == "memory"  # warm repeat hit the mem tier


def test_gauge_loop_disabled_at_zero_interval():
    async def scenario(service):
        assert service._gauge_task is None
        response = await service.submit(_request("r1"))
        assert response["ok"]

    asyncio.run(_with_service(_service(gauge_interval=0.0), scenario))


# ----------------------------------------------------------------------
# Daemon surfaces: the metrics wire op and the HTTP exposition port
# ----------------------------------------------------------------------
async def _rpc(reader, writer, payload):
    writer.write(encode(payload))
    await writer.drain()
    return json.loads(await reader.readline())


def test_metrics_wire_op_and_http_port(tmp_path):
    async def scenario():
        sock = str(tmp_path / "serve.sock")
        config = ServeConfig(jobs=0, cache_dir=str(tmp_path / "cache"))
        daemon = ServeDaemon(
            config, unix_path=sock, metrics_port=0, log=lambda line: None
        )
        ready = asyncio.Event()
        run_task = asyncio.create_task(daemon.run(ready=lambda _d: ready.set()))
        await asyncio.wait_for(ready.wait(), 10)
        try:
            reader, writer = await asyncio.open_unix_connection(sock)
            response = await _rpc(reader, writer, {
                "id": "r1", "op": "schedule", "loop": LOOP, "scheduler": "sgi",
            })
            assert response["ok"]

            # The wire op returns the text exposition over the socket.
            over_wire = await _rpc(reader, writer, {"id": "m", "op": "metrics"})
            assert over_wire["ok"]
            wire_samples = parse_prometheus(over_wire["metrics"])
            assert wire_samples["repro_responses_total"] >= 1
            assert wire_samples["repro_requests_total"] >= 1
            writer.close()
            await writer.wait_closed()

            # And the same exposition over plain HTTP.
            assert daemon.metrics_port  # ephemeral port resolved
            http_reader, http_writer = await asyncio.open_connection(
                "127.0.0.1", daemon.metrics_port
            )
            http_writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await http_writer.drain()
            raw = await http_reader.read()
            http_writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"200 OK" in head
            assert b"text/plain; version=0.0.4" in head
            http_samples = parse_prometheus(body.decode())
            assert http_samples["repro_responses_total"] >= 1
            assert (
                http_samples['repro_scheduler_requests_total{scheduler="sgi"}']
                == 1
            )

            # Unknown paths 404 without tearing the listener down.
            r2, w2 = await asyncio.open_connection(
                "127.0.0.1", daemon.metrics_port
            )
            w2.write(b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
            await w2.drain()
            raw404 = await r2.read()
            w2.close()
            assert b"404" in raw404
        finally:
            daemon.request_stop()
            await asyncio.wait_for(run_task, 30)

    asyncio.run(scenario())
