"""Tests for the branch-and-bound modulo scheduler and pipestage postpass."""

import pytest

from repro.core import (
    BnBConfig,
    Schedule,
    adjust_pipestages,
    min_ii,
    modulo_schedule_bnb,
    order_by_name,
    production_orders,
)
from repro.core.distances import SccDistanceTables
from repro.ir import LoopBuilder

from .conftest import (
    build_divider,
    build_first_diff,
    build_memory_heavy,
    build_recurrence_chain,
    build_sdot,
)


def schedule_at(loop, machine, ii, order_name="FDMS", config=None):
    order = order_by_name(loop, machine, order_name)
    result = modulo_schedule_bnb(loop, machine, ii, order, config)
    if result.times is None:
        return None
    times = adjust_pipestages(loop, ii, result.times)
    return Schedule(loop=loop, machine=machine, ii=ii, times=times)


ALL_FIXTURE_BUILDERS = [
    build_sdot,
    build_first_diff,
    build_recurrence_chain,
    build_memory_heavy,
    build_divider,
]


class TestSccDistances:
    def test_infeasible_ii_detected(self, machine):
        loop = build_sdot(machine)
        # RecMII is 4; at II=3 the self-cycle has positive weight.
        assert not SccDistanceTables(loop, 3).feasible
        assert SccDistanceTables(loop, 4).feasible

    def test_distance_between_cycle_members(self, machine):
        loop = build_recurrence_chain(machine)
        ii = min_ii(loop, machine)
        tables = SccDistanceTables(loop, ii)
        (scc,) = loop.ddg.nontrivial_sccs()
        a, b = scc
        # Around the cycle and back can never be positive at a feasible II.
        assert tables.dist(a, a) is None or tables.dist(a, a) <= 0
        d_ab, d_ba = tables.dist(a, b), tables.dist(b, a)
        assert d_ab is not None and d_ba is not None
        assert d_ab + d_ba <= 0

    def test_cross_scc_distance_is_none(self, machine):
        loop = build_recurrence_chain(machine)
        tables = SccDistanceTables(loop, 8)
        (scc,) = loop.ddg.nontrivial_sccs()
        outside = next(i for i in range(loop.n_ops) if i not in scc)
        assert tables.dist(outside, scc[0]) is None


class TestBnBBasic:
    @pytest.mark.parametrize("builder", ALL_FIXTURE_BUILDERS)
    @pytest.mark.parametrize("order_name", ["FDMS", "FDNMS", "HMS", "RHMS"])
    def test_schedules_at_min_ii_are_valid(self, machine, builder, order_name):
        loop = builder(machine)
        ii = min_ii(loop, machine)
        sched = schedule_at(loop, machine, ii, order_name)
        assert sched is not None, f"{loop.name} unschedulable at MinII={ii} with {order_name}"
        sched.validate()

    def test_infeasible_ii_fails_cleanly(self, machine):
        loop = build_sdot(machine)
        result = modulo_schedule_bnb(
            loop, machine, 3, order_by_name(loop, machine, "FDMS")
        )
        assert not result.success

    def test_bad_priority_list_rejected(self, machine):
        loop = build_sdot(machine)
        with pytest.raises(ValueError):
            modulo_schedule_bnb(loop, machine, 4, [0, 0, 1, 2])

    def test_resource_saturation_forces_failure(self, machine):
        # 3 loads at II=1: only 2 memory ports.
        b = LoopBuilder("threeloads", machine=machine)
        v1 = b.load("a", offset=0)
        v2 = b.load("b", offset=0)
        v3 = b.load("c", offset=0)
        t = b.fadd(b.fadd(v1, v2), v3)
        b.store("o", t)
        loop = b.build()
        order = order_by_name(loop, machine, "FDMS")
        assert not modulo_schedule_bnb(loop, machine, 1, order).success
        assert modulo_schedule_bnb(loop, machine, 2, order).success

    def test_placement_budget_respected(self, machine):
        loop = build_memory_heavy(machine)
        config = BnBConfig(max_placements=1)
        result = modulo_schedule_bnb(
            loop, machine, min_ii(loop, machine),
            order_by_name(loop, machine, "FDMS"), config,
        )
        assert result.placements <= 2


class TestBacktracking:
    def _tight_loop(self, machine):
        """Loop engineered to need backtracking at MinII: a divide plus
        enough adds that naive placement of the divide blocks itself."""
        b = LoopBuilder("tight", machine=machine)
        x = b.load("x")
        y = b.load("y")
        q = b.fdiv(x, y)
        t = b.fadd(q, b.invariant("c1"))
        for k in range(3):
            t = b.fadd(t, b.invariant(f"d{k}"))
        b.store("o", t)
        return b.build()

    def test_backtracking_counted(self, machine):
        loop = self._tight_loop(machine)
        ii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "RHMS")
        result = modulo_schedule_bnb(loop, machine, ii, order)
        # Whatever the outcome, counters must be coherent.
        assert result.placements > 0
        assert result.backtracks >= 0

    def test_unpruned_search_matches_on_small_loops(self, machine):
        loop = build_first_diff(machine)
        ii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "FDMS")
        pruned = modulo_schedule_bnb(loop, machine, ii, order, BnBConfig(prune=True))
        unpruned = modulo_schedule_bnb(loop, machine, ii, order, BnBConfig(prune=False))
        assert pruned.success == unpruned.success

    def test_backtrack_limit_bounds_work(self, machine):
        loop = self._tight_loop(machine)
        ii = min_ii(loop, machine)
        order = order_by_name(loop, machine, "RHMS")
        result = modulo_schedule_bnb(loop, machine, ii, order, BnBConfig(max_backtracks=0))
        assert result.backtracks == 0


class TestPipestageAdjustment:
    def test_repairs_cross_scc_violation(self, machine):
        loop = build_first_diff(machine)
        # Hand-build times violating load->fsub latency across components.
        times = {0: 0, 1: 0, 2: 2, 3: 10}  # fsub too early for its loads
        ii = 2
        fixed = adjust_pipestages(loop, ii, times)
        sched = Schedule(loop=loop, machine=machine, ii=ii, times=fixed)
        assert not sched.dependence_violations()

    def test_preserves_modulo_slots(self, machine):
        loop = build_first_diff(machine)
        times = {0: 1, 1: 0, 2: 2, 3: 5}
        ii = 2
        fixed = adjust_pipestages(loop, ii, times)
        for op, t in times.items():
            assert fixed[op] % ii == t % ii

    def test_noop_on_valid_schedule(self, machine):
        loop = build_sdot(machine)
        ii = min_ii(loop, machine)
        sched = schedule_at(loop, machine, ii)
        fixed = adjust_pipestages(loop, ii, dict(sched.times))
        sched2 = Schedule(loop=loop, machine=machine, ii=ii, times=fixed)
        assert sched2.times == sched.times


class TestScheduleObject:
    def test_missing_op_rejected(self, machine):
        loop = build_sdot(machine)
        with pytest.raises(ValueError):
            Schedule(loop=loop, machine=machine, ii=4, times={0: 0})

    def test_normalisation(self, machine):
        loop = build_first_diff(machine)
        sched = Schedule(loop=loop, machine=machine, ii=2, times={0: 5, 1: 4, 2: 11, 3: 13})
        assert min(sched.times.values()) == 0

    def test_stage_and_slot(self, machine):
        loop = build_first_diff(machine)
        sched = Schedule(loop=loop, machine=machine, ii=2, times={0: 0, 1: 1, 2: 6, 3: 8})
        assert sched.slot(2) == 0
        assert sched.stage(2) == 3
        assert sched.n_stages == 5

    def test_buffer_count_monotone_in_stretch(self, machine):
        loop = build_first_diff(machine)
        tight = Schedule(loop=loop, machine=machine, ii=2, times={0: 0, 1: 1, 2: 7, 3: 9})
        loose = Schedule(loop=loop, machine=machine, ii=2, times={0: 0, 1: 1, 2: 13, 3: 15})
        assert loose.buffer_count() >= tight.buffer_count()

    def test_validate_raises_on_violation(self, machine):
        loop = build_first_diff(machine)
        bad = Schedule(loop=loop, machine=machine, ii=2, times={0: 0, 1: 0, 2: 1, 3: 2})
        with pytest.raises(ValueError):
            bad.validate()


class TestScheduleSerialization:
    def test_roundtrip(self, machine):
        import json

        loop = build_sdot(machine)
        sched = schedule_at(loop, machine, min_ii(loop, machine))
        data = json.loads(json.dumps(sched.to_dict()))
        rebuilt = Schedule.from_dict(data, loop, machine)
        assert rebuilt.times == sched.times
        assert rebuilt.ii == sched.ii
        rebuilt.validate()

    def test_wrong_loop_rejected(self, machine):
        loop = build_sdot(machine)
        other = build_first_diff(machine)
        sched = schedule_at(loop, machine, min_ii(loop, machine))
        with pytest.raises(ValueError, match="loop"):
            Schedule.from_dict(sched.to_dict(), other, machine)

    def test_wrong_machine_rejected(self, machine):
        from repro.machine import two_wide

        loop = build_sdot(machine)
        sched = schedule_at(loop, machine, min_ii(loop, machine))
        with pytest.raises(ValueError, match="machine"):
            Schedule.from_dict(sched.to_dict(), loop, two_wide())
