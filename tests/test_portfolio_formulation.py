"""The backend-neutral formulation IR and its independent witness checker."""

from __future__ import annotations

import pytest

from repro.core import min_ii
from repro.ir import LoopBuilder
from repro.machine import r8000, single_issue
from repro.most import build_formulation
from repro.most.formulation import model_from_formulation
from repro.portfolio import (
    ModuloFormulation,
    build_modulo_formulation,
    check_witness,
)
from repro.portfolio.formulation import (
    FormulationArc,
    critical_path,
    default_horizon_stages,
    time_windows,
)

from .conftest import build_daxpy, build_divider, build_recurrence_chain, build_sdot


class TestNeutralBuild:
    def test_windows_match_ddg_longest_paths(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        assert not f.infeasible
        assert len(f.windows) == daxpy.n_ops
        # Every arc's difference constraint must be satisfiable inside the
        # windows: ASAP of dst at least ASAP of src plus the arc weight.
        asap = [lo for lo, _ in f.windows]
        for arc in f.dep_arcs():
            assert asap[arc.dst] >= asap[arc.src] + arc.weight(ii)

    def test_op_uses_follow_machine_tables(self, machine, sdot):
        ii = min_ii(sdot, machine)
        f = build_modulo_formulation(sdot, machine, ii)
        for op in range(sdot.n_ops):
            table = machine.table(sdot.ops[op].opclass)
            assert f.op_uses[op] == [
                (use.offset, use.resource, use.count) for use in table.uses
            ]
        assert f.availability == dict(machine.availability)

    def test_horizon_covers_critical_path(self, machine, rec1):
        ii = min_ii(rec1, machine)
        f = build_modulo_formulation(rec1, machine, ii)
        assert f.horizon == f.stages * ii
        assert f.stages == default_horizon_stages(rec1, machine, ii)
        assert f.horizon >= critical_path(rec1)

    def test_self_recurrence_screen(self, machine):
        # latency(fadd chain) > II * omega at II=1 forces the screen.
        b = LoopBuilder("tight", machine=machine, trip_count=100)
        s = b.recurrence("s")
        t = b.fadd(s.use(), b.invariant("c"))
        s.close(b.fadd(t, b.invariant("d")))
        b.live_out_value(s)
        loop = b.build()
        f = build_modulo_formulation(loop, machine, 1)
        assert f.infeasible
        assert "window" in f.infeasible_reason or "recurrence" in f.infeasible_reason

    def test_window_collapse_marks_infeasible(self, machine, sdot):
        # A one-stage horizon cannot hold the sdot critical path.
        f = build_modulo_formulation(sdot, machine, 1, stages=1)
        assert f.infeasible
        assert f.infeasible_reason

    def test_collapse_matches_time_windows_none(self, machine, sdot):
        assert time_windows(sdot, 1, 1) is None

    def test_arc_weight(self):
        arc = FormulationArc(src=0, dst=1, latency=4, omega=1)
        assert arc.weight(3) == 1
        assert arc.weight(6) == -2

    def test_flow_value_arcs_filter(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        f = build_modulo_formulation(daxpy, machine, ii)
        for arc in f.flow_value_arcs():
            assert arc.kind == "flow"
            assert arc.value


class TestWitnessChecker:
    def _sat_formulation_and_times(self, machine, loop):
        from repro.portfolio.cp import solve_cp

        ii = min_ii(loop, machine)
        f = build_modulo_formulation(loop, machine, ii)
        answer = solve_cp(f)
        assert answer.answer == "sat"
        return f, dict(answer.times)

    def test_genuine_witness_is_clean(self, machine, daxpy):
        f, times = self._sat_formulation_and_times(machine, daxpy)
        assert check_witness(f, times) == []

    def test_unplaced_op_detected(self, machine, daxpy):
        f, times = self._sat_formulation_and_times(machine, daxpy)
        times.pop(0)
        assert any("unplaced" in e for e in check_witness(f, times))

    def test_window_violation_detected(self, machine, daxpy):
        f, times = self._sat_formulation_and_times(machine, daxpy)
        times[0] = f.windows[0][1] + 1
        assert any("outside window" in e for e in check_witness(f, times))

    def test_arc_violation_detected(self):
        f = ModuloFormulation(
            loop_name="synthetic", n_ops=2, ii=2, stages=2, horizon=4,
            windows=[(0, 3), (0, 3)],
            arcs=[FormulationArc(src=0, dst=1, latency=3, omega=0)],
            op_uses=[[], []],
            availability={},
        )
        errors = check_witness(f, {0: 0, 1: 1})  # needs dst - src >= 3
        assert any("arc 0->1" in e for e in errors)
        assert check_witness(f, {0: 0, 1: 3}) == []

    def test_resource_oversubscription_detected(self, machine):
        loop = build_sdot(machine)
        ii = min_ii(loop, machine)
        f = build_modulo_formulation(loop, machine, ii)
        # Two loads in the same modulo slot exceed the memory ports iff
        # the machine has fewer than two; force the clash generically by
        # stacking every op on slot 0 of a 1-wide machine instead.
        tiny = single_issue()
        loop1 = build_sdot(tiny)
        ii1 = min_ii(loop1, tiny)
        f1 = build_modulo_formulation(loop1, tiny, ii1)
        same_slot = {op: f1.windows[op][0] for op in range(f1.n_ops)}
        errors = check_witness(f1, same_slot)
        assert errors  # some constraint must trip on a 1-wide machine
        del f, ii

    def test_witness_against_infeasible_formulation(self, machine, sdot):
        f = build_modulo_formulation(sdot, machine, 1, stages=1)
        errors = check_witness(f, {})
        assert any("infeasible" in e for e in errors)


class TestMostEncodingOfNeutral:
    """model_from_formulation is the ILP *encoding* of the neutral object."""

    def test_build_formulation_goes_through_neutral(self, machine, daxpy):
        ii = min_ii(daxpy, machine)
        neutral = build_modulo_formulation(daxpy, machine, ii)
        direct = model_from_formulation(neutral, daxpy)
        convenience = build_formulation(daxpy, machine, ii)
        assert direct.model.name == convenience.model.name
        assert direct.model.n_vars == convenience.model.n_vars
        assert len(direct.model.constraints) == len(convenience.model.constraints)
        assert [v.name for v in direct.model.variables] == [
            v.name for v in convenience.model.variables
        ]

    def test_assignment_vars_cover_windows(self, machine, rec1):
        ii = min_ii(rec1, machine)
        neutral = build_modulo_formulation(rec1, machine, ii)
        encoded = model_from_formulation(neutral, rec1)
        for op in range(neutral.n_ops):
            lo, hi = neutral.windows[op]
            for t in range(lo, hi + 1):
                assert (op, t) in encoded.assign

    def test_infeasible_neutral_yields_infeasible_model(self, machine, sdot):
        neutral = build_modulo_formulation(sdot, machine, 1, stages=1)
        encoded = model_from_formulation(neutral, sdot)
        assert encoded.infeasible
        assert encoded.assign == {}

    def test_ilp_solution_passes_neutral_checker(self, machine):
        from repro.ilp import SolverOptions, solve_milp

        loop = build_daxpy(machine)
        ii = min_ii(loop, machine)
        neutral = build_modulo_formulation(loop, machine, ii)
        encoded = model_from_formulation(neutral, loop)
        result = solve_milp(encoded.model, SolverOptions(time_limit=10.0))
        assert result.has_solution
        times = encoded.decode_times(result)
        assert check_witness(neutral, times) == []

    @pytest.mark.parametrize("builder", [build_daxpy, build_recurrence_chain,
                                         build_divider])
    def test_backends_answer_literally_the_same_object(self, builder):
        machine = r8000()
        loop = builder(machine)
        ii = min_ii(loop, machine)
        neutral = build_modulo_formulation(loop, machine, ii)
        assert isinstance(neutral, ModuloFormulation)
        # The MOST encoding consumed the same instance the CP backend gets.
        encoded = model_from_formulation(neutral, loop)
        assert encoded.ii == neutral.ii
        assert encoded.horizon == neutral.horizon
