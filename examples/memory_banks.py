#!/usr/bin/env python3
"""The alvinn story (Section 4.3): memory banks, the bellows, and pairing.

Builds the memory-bound single-precision dot product that motivated the
MIPSpro memory-bank heuristics, shows the reference patterns the paper
describes, and measures the stall behaviour of each:

* the natural pattern  v[i+0],u[i+0] / v[i+1],u[i+1]  — relative banks
  unknowable at compile time, systematically same-bank at run time when
  both arrays are even-aligned;
* the paper's fix      v[i+0],v[i+2] / u[i+0],u[i+2]  — 8 bytes apart,
  provably opposite banks every cycle, zero stalls.

Run:  python examples/memory_banks.py
"""

from repro import DataLayout, LoopBuilder, PipelinerOptions, pipeline_loop, r8000, simulate_pipelined


def build_sdot(machine):
    """Unrolled single-precision dot product, even-aligned arrays."""
    b = LoopBuilder("alvinn_sdot", machine=machine, trip_count=1000)
    s = b.recurrence("s")
    total = None
    for k in range(4):
        x = b.load("v", offset=4 * k, stride=16, width=4)
        y = b.load("u", offset=4 * k, stride=16, width=4)
        p = b.fmul(x, y)
        total = p if total is None else b.fadd(total, p)
    s.close(b.fadd(total, s.use(distance=2)))
    b.set_parity("v", 0)  # even-aligned, as Fortran commons typically are
    b.set_parity("u", 0)
    b.live_out_value(s)
    return b.build()


def report(label, result, machine):
    layout = DataLayout(result.loop, trip_count=1000)
    sim = simulate_pipelined(result.schedule, layout, machine, trips=1000)
    pattern = {}
    for op in result.loop.memory_ops():
        pattern.setdefault(result.schedule.slot(op.index), []).append(
            f"{op.mem.base}+{op.mem.offset}"
        )
    print(f"\n{label}: II={result.ii}, stalls={sim.stall_cycles} "
          f"over {sim.trips} iterations ({sim.cycles} cycles)")
    for slot in sorted(pattern):
        print(f"  cycle {slot}: {', '.join(pattern[slot])}")


def main() -> None:
    machine = r8000()
    loop = build_sdot(machine)
    print(
        "R8000 memory system: 2 refs/cycle, two banks on double-word\n"
        "boundaries, one-element overflow queue ('the bellows').\n"
        "Worst case: two same-bank refs every cycle -> one stall per\n"
        "cycle -> the loop runs at half speed (Section 2.9)."
    )

    off = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=False))
    report("bank heuristics DISABLED", off, machine)

    on = pipeline_loop(loop, machine, PipelinerOptions(enable_membank=True))
    report("bank heuristics ENABLED", on, machine)

    layout = DataLayout(off.loop, trip_count=1000)
    off_sim = simulate_pipelined(off.schedule, layout, machine, trips=1000)
    layout = DataLayout(on.loop, trip_count=1000)
    on_sim = simulate_pipelined(on.schedule, layout, machine, trips=1000)
    print(
        f"\nspeedup from the heuristics: "
        f"{off_sim.cycles / on_sim.cycles:.2f}x "
        f"(paper reports alvinn as the standout of Figure 4)"
    )


if __name__ == "__main__":
    main()
