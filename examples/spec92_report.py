#!/usr/bin/env python3
"""Regenerate the paper's SPEC92 figures from the command line.

Runs any subset of the evaluation experiments against the SPEC92-like
corpus and prints the same tables and bar charts the benchmark harness
records (see EXPERIMENTS.md for the archived full runs).

Run:  python examples/spec92_report.py fig2 fig4
      python examples/spec92_report.py fig5 --ilp-seconds 20
      python examples/spec92_report.py all
"""

import argparse
import sys
import time

from repro.eval import (
    ExperimentConfig,
    fig2_pipelining_effectiveness,
    fig3_priority_heuristics,
    fig4_membank_effectiveness,
    fig5_ilp_vs_heuristic,
    fig6_livermore,
    fig7_static_quality,
    sec47_compile_speed,
    sec5_ii_parity,
    sec5_scalability,
)

EXPERIMENTS = {
    "fig2": fig2_pipelining_effectiveness,
    "fig3": fig3_priority_heuristics,
    "fig4": fig4_membank_effectiveness,
    "fig5": fig5_ilp_vs_heuristic,
    "fig6": fig6_livermore,
    "fig7": fig7_static_quality,
    "sec47": sec47_compile_speed,
    "scalability": sec5_scalability,
    "iiparity": sec5_ii_parity,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figures/sections to regenerate",
    )
    parser.add_argument(
        "--ilp-seconds",
        type=float,
        default=10.0,
        help="ILP solver budget per loop (the paper used 180s)",
    )
    args = parser.parse_args()

    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    config = ExperimentConfig(most_time_limit=args.ilp_seconds)
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - start
        print(result.formatted())
        print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
        sys.stdout.flush()


if __name__ == "__main__":
    main()
