#!/usr/bin/env python3
"""Quickstart: software-pipeline a dot product both ways and compare.

Builds the single-precision dot product from Section 4.3 of the paper,
pipelines it with the SGI-style heuristic scheduler and the MOST-style
ILP scheduler, shows the emitted code, and simulates both against the
non-pipelined baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    DataLayout,
    LoopBuilder,
    emit_pipelined_code,
    list_schedule,
    min_ii,
    most_pipeline_loop,
    pipeline_loop,
    pipeline_overhead,
    r8000,
    run_pipelined,
    run_sequential,
    simulate_pipelined,
)
from repro.most import MostOptions
from repro.sim import simulate_sequential_body


def main() -> None:
    machine = r8000()

    # ------------------------------------------------------------------
    # 1. Describe the loop:  s += x[i] * y[i]  (single precision)
    # ------------------------------------------------------------------
    b = LoopBuilder("sdot", machine=machine, trip_count=1000)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=4, width=4)
    y = b.load("y", offset=0, stride=4, width=4)
    s.close(b.fadd(b.fmul(x, y), s.use()))
    b.live_out_value(s)
    loop = b.build()

    print(loop)
    print(f"\nMinII (max of ResMII and RecMII): {min_ii(loop, machine)}")

    # ------------------------------------------------------------------
    # 2. The heuristic pipeliner (SGI MIPSpro style)
    # ------------------------------------------------------------------
    heuristic = pipeline_loop(loop, machine)
    print(
        f"\nheuristic: II={heuristic.ii}, stages={heuristic.schedule.n_stages}, "
        f"registers={heuristic.allocation.registers_used}, "
        f"order={heuristic.order_name}"
    )
    print(heuristic.schedule)

    # ------------------------------------------------------------------
    # 3. The optimal pipeliner (McGill MOST style)
    # ------------------------------------------------------------------
    optimal = most_pipeline_loop(
        loop, machine, MostOptions(time_limit=30, engine="scipy")
    )
    print(
        f"\noptimal: II={optimal.ii}, proven II-optimal={optimal.optimal}, "
        f"buffers={optimal.buffers}, fallback={optimal.fallback_used}"
    )

    # ------------------------------------------------------------------
    # 4. Emit the software-pipelined code
    # ------------------------------------------------------------------
    print("\n--- pipelined code (heuristic schedule) ---")
    print(emit_pipelined_code(heuristic.schedule, heuristic.allocation).listing())

    # ------------------------------------------------------------------
    # 5. Prove the pipelined code computes the same thing
    # ------------------------------------------------------------------
    layout = DataLayout(heuristic.loop, trip_count=1000)
    seq = run_sequential(heuristic.loop, layout, 200)
    pipe = run_pipelined(heuristic.schedule, heuristic.allocation, layout, 200)
    print(f"\nfunctional check: pipelined == sequential? {seq.matches(pipe)}")
    print(f"  s after 200 iterations = {pipe.live_out['s']:.6f}")

    # ------------------------------------------------------------------
    # 6. Simulate performance against the non-pipelined baseline
    # ------------------------------------------------------------------
    overhead = pipeline_overhead(heuristic.schedule, heuristic.allocation, machine)
    fast = simulate_pipelined(heuristic.schedule, layout, machine, overhead=overhead)
    base = simulate_sequential_body(list_schedule(loop, machine), layout, machine)
    print(
        f"\nsimulated cycles over {loop.trip_count} iterations: "
        f"pipelined {fast.cycles} (incl. {fast.stall_cycles} bank stalls, "
        f"{overhead.total} overhead) vs baseline {base.cycles} "
        f"-> {base.cycles / fast.cycles:.2f}x speedup"
    )


if __name__ == "__main__":
    main()
