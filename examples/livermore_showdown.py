#!/usr/bin/env python3
"""The showdown on the Livermore kernels: heuristic vs optimal, per loop.

For each of the 24 Livermore kernels this example reports what the paper's
Figures 6 and 7 are built from: both pipeliners' IIs against MinII,
register usage, pipeline overhead, and simulated cycles at short and long
trip counts.

Run:  python examples/livermore_showdown.py [--kernels 1,5,20]
"""

import argparse

from repro import (
    DataLayout,
    livermore_kernel,
    min_ii,
    most_pipeline_loop,
    pipeline_loop,
    pipeline_overhead,
    r8000,
    simulate_pipelined,
)
from repro.most import MostOptions
from repro.workloads import LONG_TRIPS, SHORT_TRIPS


def cycles(result, machine, trips, loop):
    layout = DataLayout(result.loop, trip_count=trips)
    overhead = pipeline_overhead(result.schedule, result.allocation, machine)
    return simulate_pipelined(
        result.schedule, layout, machine, trips=trips, overhead=overhead
    ).cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--kernels",
        default=",".join(str(k) for k in range(1, 25)),
        help="comma-separated kernel numbers (default: all 24)",
    )
    parser.add_argument(
        "--ilp-seconds", type=float, default=10.0, help="ILP budget per kernel"
    )
    args = parser.parse_args()
    numbers = [int(k) for k in args.kernels.split(",")]

    machine = r8000()
    header = (
        f"{'kernel':>16} {'MinII':>5} {'SGI':>4} {'ILP':>4} "
        f"{'regs S/I':>9} {'ovh S/I':>9} {'short S/I':>11} {'long S/I':>11}"
    )
    print(header)
    print("-" * len(header))
    for number in numbers:
        loop = livermore_kernel(number, machine)
        sgi = pipeline_loop(loop, machine)
        ilp = most_pipeline_loop(
            loop,
            machine,
            MostOptions(time_limit=args.ilp_seconds, engine="scipy"),
        )
        mii = min_ii(loop, machine)
        regs = f"{sgi.allocation.registers_used}/{ilp.allocation.registers_used}"
        ovh_s = pipeline_overhead(sgi.schedule, sgi.allocation, machine).total
        ovh_i = pipeline_overhead(ilp.schedule, ilp.allocation, machine).total
        short, long_ = SHORT_TRIPS[number], LONG_TRIPS[number]
        cs = f"{cycles(sgi, machine, short, loop)}/{cycles(ilp, machine, short, loop)}"
        cl = f"{cycles(sgi, machine, long_, loop)}/{cycles(ilp, machine, long_, loop)}"
        flag = " *fallback" if ilp.fallback_used else ""
        print(
            f"{loop.name:>16} {mii:>5} {sgi.ii:>4} {ilp.ii:>4} "
            f"{regs:>9} {ovh_s}/{ovh_i:>4} {cs:>11} {cl:>11}{flag}"
        )
    print(
        "\ncolumns: II lower bound, each scheduler's II, total registers, "
        "pipeline fill+drain overhead, and simulated cycles (SGI/ILP) at "
        "the Livermore short and long loop lengths."
    )


if __name__ == "__main__":
    main()
