#!/usr/bin/env python3
"""Anatomy of the optimal pipeliner: the ILP formulation, stage by stage.

Reproduces the McGill methodology of Section 3.3 on one loop with a real
recurrence (Livermore kernel 5, tri-diagonal elimination):

1. prove smaller IIs infeasible and find a resource-constrained schedule;
2. minimise buffers (iteration overlap) at the winning II;
3. compare against the integrated single-solve formulation and against
   the SGI heuristics.

Run:  python examples/ilp_anatomy.py
"""

import time

from repro import Schedule, allocate_schedule, livermore_kernel, min_ii, pipeline_loop, r8000
from repro.ilp import SolverOptions, Status, solve_milp
from repro.most import MostOptions, build_formulation, most_pipeline_loop


def main() -> None:
    machine = r8000()
    loop = livermore_kernel(5, machine)
    print(loop)
    mii = min_ii(loop, machine)
    print(f"\nMinII = {mii} (RecMII-bound: x[i] = z[i]*(y[i]-x[i-1]))")

    # ------------------------------------------------------------------
    # 1. Walk the II range with the resource-constrained formulation.
    # ------------------------------------------------------------------
    print("\nstage 1 — resource-constrained feasibility per II:")
    times = None
    winning_ii = None
    for ii in range(max(1, mii - 2), mii + 2):
        formulation = build_formulation(loop, machine, ii)
        if formulation.infeasible:
            print(f"  II={ii}: infeasible (dependence windows collapse)")
            continue
        result = solve_milp(
            formulation.model, SolverOptions(engine="scipy", time_limit=20)
        )
        print(
            f"  II={ii}: {result.status.value} "
            f"({formulation.model.n_vars} binaries, "
            f"{len(formulation.model.constraints)} constraints, "
            f"{result.seconds:.2f}s)"
        )
        if result.has_solution and times is None:
            times = formulation.decode_times(result)
            winning_ii = ii
    schedule = Schedule(loop=loop, machine=machine, ii=winning_ii, times=times)
    schedule.validate()
    print(f"\nstage-1 schedule at II={winning_ii}: buffers={schedule.buffer_count()}")

    # ------------------------------------------------------------------
    # 2. Buffer minimisation at the winning II.
    # ------------------------------------------------------------------
    formulation = build_formulation(
        loop, machine, winning_ii, minimize_buffers=True,
        buffer_cutoff=schedule.buffer_count(),
    )
    result = solve_milp(formulation.model, SolverOptions(engine="scipy", time_limit=30))
    best = Schedule(
        loop=loop, machine=machine, ii=winning_ii,
        times=formulation.decode_times(result),
    )
    print(
        f"stage 2 — buffer minimisation: {result.status.value}, "
        f"buffers {schedule.buffer_count()} -> {best.buffer_count()}"
    )
    allocation = allocate_schedule(best, machine)
    print(f"register allocation: {allocation.registers_used} registers, kmin={allocation.kmin}")

    # ------------------------------------------------------------------
    # 3. The packaged driver vs the heuristics.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    optimal = most_pipeline_loop(loop, machine, MostOptions(time_limit=30, engine="scipy"))
    ilp_seconds = time.perf_counter() - start
    start = time.perf_counter()
    heuristic = pipeline_loop(loop, machine)
    sgi_seconds = time.perf_counter() - start
    print(
        f"\nshowdown on {loop.name}:"
        f"\n  MOST : II={optimal.ii} (optimal={optimal.optimal}) in {ilp_seconds:.2f}s"
        f"\n  SGI  : II={heuristic.ii} via {heuristic.order_name} in {sgi_seconds:.4f}s"
        f"\n  compile-time ratio: {ilp_seconds / max(sgi_seconds, 1e-9):.0f}x slower"
        " (the paper measured ~285x over SPEC92)"
    )


if __name__ == "__main__":
    main()
