#!/usr/bin/env python3
"""The front-end transformations that feed the pipeliner (Section 2.1).

Demonstrates, on a serial summation, why the MIPSpro compiler runs loop
transformations before software pipelining:

* the raw loop is RecMII-bound (the add's latency serialises iterations);
* *interleaving the register recurrence* splits it into independent
  partial sums, dividing RecMII;
* *unrolling* amortises per-iteration overhead and exposes more work;
* *inter-iteration load promotion* deletes re-reads of last iteration's
  data, cutting memory pressure.

Run:  python examples/loop_transforms.py
"""

from repro import (
    LoopBuilder,
    interleave_reduction,
    min_ii,
    pipeline_loop,
    promote_inter_iteration_loads,
    r8000,
    rec_mii,
    res_mii,
    unroll,
)


def describe(tag, loop, machine):
    res = pipeline_loop(loop, machine)
    per_element = res.ii / max(1, loop.ops[0].mem.stride // 8 if loop.ops[0].mem else 1)
    print(
        f"{tag:>28}: {loop.n_ops:>3} ops, ResMII={res_mii(loop, machine)}, "
        f"RecMII={rec_mii(loop)}, achieved II={res.ii}"
    )
    return res


def main() -> None:
    machine = r8000()

    print("== serial summation: s += x[i] ==")
    b = LoopBuilder("ssum", machine=machine, trip_count=1200)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=8)
    s.close(b.fadd(x, s.use()))
    b.live_out_value(s)
    loop = b.build()

    base = describe("raw loop", loop, machine)
    il = interleave_reduction(loop, "s", ways=4)
    describe("interleaved x4 (Sec 2.1b)", il, machine)
    unrolled = unroll(il, 4)
    u = describe("then unrolled x4", unrolled, machine)
    print(
        f"\ncycles per element: raw {base.ii:.1f} -> transformed "
        f"{u.ii / 4:.2f}  ({base.ii / (u.ii / 4):.1f}x faster steady state)"
    )

    print("\n== rolling window: y[i] = x[i] + x[i-1] ==")
    b = LoopBuilder("rolling", machine=machine, trip_count=1200)
    cur = b.load("x", offset=0, stride=8)
    prev = b.load("x", offset=-8, stride=8)
    b.store("y", b.fadd(cur, prev), offset=0, stride=8)
    rolling = b.build()
    describe("raw loop", rolling, machine)
    promoted = promote_inter_iteration_loads(rolling)
    describe("after load promotion (2.1c)", promoted, machine)
    print(
        f"\nmemory references per iteration: {len(rolling.memory_ops())} -> "
        f"{len(promoted.memory_ops())} (x[i-1] becomes last iteration's x[i])"
    )


if __name__ == "__main__":
    main()
