#!/usr/bin/env python3
"""Register pressure, modulo renaming, and spilling (Sections 2.6-2.8).

Builds a loop with one value whose lifetime the scheduler cannot shorten
(used at both ends of a long dependence chain), then shrinks the FP
register file until the pipeliner is forced to spill — showing:

* modulo renaming's unroll factor kmin growing with lifetime/II;
* the spill-candidate ratio rule ("cycles spanned / references");
* the exponential spill rounds converging to an allocatable schedule;
* the spilled code still computing the right answer.

Run:  python examples/register_pressure.py
"""

from repro import (
    DataLayout,
    LoopBuilder,
    pipeline_loop,
    r8000,
    rename_kernel,
    run_pipelined,
    run_sequential,
)


def build_loop(machine):
    b = LoopBuilder("pressure", machine=machine, trip_count=60)
    a = b.load("a", offset=0, stride=8)
    t = b.load("c", offset=0, stride=8)
    k = b.invariant("k")
    t = b.fadd(t, a)
    for _ in range(10):
        t = b.fadd(t, k)
    b.store("o", b.fadd(t, a), offset=0, stride=8)  # 'a' used again here
    return b.build()


def main() -> None:
    for fp_regs in (30, 18):
        machine = r8000()
        machine.fp_regs = fp_regs
        loop = build_loop(machine)
        res = pipeline_loop(loop, machine)
        print(f"== FP register file: {fp_regs} registers ==")
        if not res.success:
            print("  pipelining failed outright\n")
            continue
        renamed = rename_kernel(res.schedule)
        lifetimes = sorted(renamed.lifetimes.items(), key=lambda kv: -kv[1])[:3]
        print(
            f"  II={res.ii}, stages={res.schedule.n_stages}, "
            f"kmin={res.allocation.kmin}, "
            f"FP registers used={res.allocation.fp_used}"
        )
        print(f"  longest lifetimes: {lifetimes}")
        if res.spilled:
            print(
                f"  spilled after {res.spill_rounds} round(s): {res.spilled} "
                f"(ratio rule picked the forced-long value)"
            )
            print(
                f"  loop grew {res.original.n_ops} -> {res.loop.n_ops} ops "
                f"(spill store + per-use restores)"
            )
        else:
            print("  no spilling needed")
        layout = DataLayout(res.loop, trip_count=60)
        seq = run_sequential(res.loop, layout, 60)
        pipe = run_pipelined(res.schedule, res.allocation, layout, 60)
        print(f"  functional check: {seq.matches(pipe)}\n")


if __name__ == "__main__":
    main()
