"""Figure 3: each scheduling priority heuristic alone vs all four.

Paper: no single heuristic wins everywhere; three of the four are needed
to achieve the best time on at least one benchmark; single-heuristic
runs drop as low as ~0.6 of the best."""

from repro.eval import fig3_priority_heuristics

from .conftest import run_once


def test_fig3(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig3_priority_heuristics(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: more than one heuristic must be the best somewhere, and some
    # benchmark must lose noticeably when restricted to one heuristic.
    assert result.summary["heuristics_winning_somewhere"] >= 2
    assert result.summary["min_single_ratio"] < 0.98
