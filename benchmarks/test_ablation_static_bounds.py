"""Ablation: certified static II bounds pruning the scheduling search.

``repro.analyze`` proves IIs infeasible before the B&B scheduler ever
runs; the driver skips certified-futile IIs without changing which II
the search settles on.  The effect concentrates on recurrence-bound
loops whose certified bound lifts well above MinII (the recbound
corpus): every pruned II is a full failed B&B attempt that never runs.
"""

import pytest

from repro.core import PipelinerOptions, pipeline_loop
from repro.eval import Table
from repro.machine import r8000
from repro.workloads.recbound import recbound_kernels

from .conftest import OUTPUT_DIR, run_once


def test_ablation_static_bounds(benchmark, record_artifact):
    machine = r8000()

    def run():
        table = Table(
            "Ablation: certified static II bounds (B&B placements tried)",
            ["loop", "MinII", "II", "bounds on", "bounds off"],
        )
        totals = {"on": 0, "off": 0}
        for loop in recbound_kernels(machine):
            placements = {}
            iis = {}
            spills = {}
            for mode, enabled in (("on", True), ("off", False)):
                res = pipeline_loop(
                    loop, machine, PipelinerOptions(static_bounds=enabled)
                )
                placements[mode] = res.stats.placements
                iis[mode] = res.ii
                spills[mode] = res.spill_rounds
                totals[mode] += res.stats.placements
            # Pruning is outcome-identical; only the search cost may differ.
            assert iis["on"] == iis["off"], loop.name
            assert spills["on"] == spills["off"], loop.name
            table.add(
                loop.name, res.min_ii, iis["on"], placements["on"], placements["off"]
            )
        table.add("total", "", "", totals["on"], totals["off"])
        return table, totals

    table, totals = run_once(benchmark, run)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablation_static_bounds.txt").write_text(table.formatted() + "\n")
    benchmark.extra_info.update(totals)
    # The corpus lifts on 5/6 loops; the pruned search must do far less work.
    assert totals["on"] < totals["off"] / 2
