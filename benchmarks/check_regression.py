#!/usr/bin/env python
"""Compare a fresh BENCH_pipeline.json against the committed baseline.

Schedule *quality* (II, fallbacks, timeouts, errors) must not regress:
those are machine-independent, so any drift is a code change.  Schedule
*time* is machine-dependent; it is compared per scheduler against a
generous tolerance and only ever warned about.

Warn-only by default — the report prints and the exit code stays 0 so a
noisy runner cannot break CI; ``--strict`` turns quality regressions into
a non-zero exit once the baseline has proven stable.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_FRESH = REPO_ROOT / "benchmarks" / "output" / "BENCH_pipeline.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_pipeline.json"


def _cell_key(cell):
    return (cell["loop"], cell["scheduler"], cell["options_json"])


def compare(fresh: dict, baseline: dict, time_tolerance: float):
    """Return (quality_regressions, time_warnings, infos) as string lists."""
    regressions, warnings, infos = [], [], []
    if fresh.get("code_version") != baseline.get("code_version"):
        infos.append(
            "code_version differs from baseline (expected after source "
            "changes; refresh the baseline when intentional)"
        )

    base_cells = {_cell_key(c): c for c in baseline["cells"]}
    fresh_cells = {_cell_key(c): c for c in fresh["cells"]}
    missing = sorted(set(base_cells) - set(fresh_cells))
    added = sorted(set(fresh_cells) - set(base_cells))
    for key in missing:
        regressions.append(f"cell disappeared: {key[0]} × {key[1]}")
    for key in added:
        infos.append(f"new cell (not in baseline): {key[0]} × {key[1]}")

    for key in sorted(set(base_cells) & set(fresh_cells)):
        base, now = base_cells[key], fresh_cells[key]
        label = f"{key[0]} × {key[1]}"
        if now["ii"] is None or (base["ii"] is not None and now["ii"] > base["ii"]):
            regressions.append(f"II regressed: {label} {base['ii']} -> {now['ii']}")
        elif base["ii"] is not None and now["ii"] < base["ii"]:
            infos.append(f"II improved: {label} {base['ii']} -> {now['ii']}")
        for flag in ("timeout", "fallback"):
            if now[flag] and not base[flag]:
                regressions.append(f"new {flag}: {label}")
        if now["error"] and not base["error"]:
            regressions.append(f"new error: {label}")
        base_cycles, now_cycles = base["sim_cycles"], now["sim_cycles"]
        for trips in set(base_cycles) & set(now_cycles):
            if now_cycles[trips] > base_cycles[trips]:
                regressions.append(
                    f"sim cycles regressed: {label} trips={trips} "
                    f"{base_cycles[trips]:.0f} -> {now_cycles[trips]:.0f}"
                )

    # Timing, per scheduler, warn-only: different machines run the same
    # search at very different speeds.
    base_by = baseline["totals"]["by_scheduler"]
    fresh_by = fresh["totals"]["by_scheduler"]
    for scheduler in sorted(set(base_by) & set(fresh_by)):
        base_t = base_by[scheduler]["schedule_seconds"]
        fresh_t = fresh_by[scheduler]["schedule_seconds"]
        if base_t > 0 and fresh_t > base_t * time_tolerance:
            warnings.append(
                f"schedule time up {fresh_t / base_t:.1f}x for {scheduler}: "
                f"{base_t:.2f}s -> {fresh_t:.2f}s (tolerance {time_tolerance:.1f}x)"
            )
    return regressions, warnings, infos


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", default=str(DEFAULT_FRESH),
        help=f"freshly produced bench json (default: {DEFAULT_FRESH})",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=2.0,
        help="per-scheduler schedule-time ratio that triggers a warning (default: 2.0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on quality regressions (default: warn only)",
    )
    args = parser.parse_args(argv)

    fresh_path, base_path = pathlib.Path(args.fresh), pathlib.Path(args.baseline)
    if not base_path.exists():
        print(f"no baseline at {base_path}; nothing to compare", file=sys.stderr)
        return 0
    if not fresh_path.exists():
        print(f"no fresh bench json at {fresh_path}; run `make bench-quick` first", file=sys.stderr)
        return 1
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(base_path.read_text())
    regressions, warnings, infos = compare(fresh, baseline, args.time_tolerance)

    for line in infos:
        print(f"info: {line}")
    for line in warnings:
        print(f"WARNING: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    if not regressions and not warnings:
        print(
            f"no regressions: {len(fresh['cells'])} cells vs baseline "
            f"{base_path.name} ({len(baseline['cells'])} cells)"
        )
    if regressions and args.strict:
        return 1
    if regressions:
        print(f"({len(regressions)} regressions; warn-only, pass --strict to fail)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
