#!/usr/bin/env python
"""Compare a fresh BENCH_pipeline.json against the committed baseline.

Thin CLI shim over :mod:`repro.obs.diffbench`, kept so existing CI
invocations (``python benchmarks/check_regression.py [--strict]``) keep
working.  The alignment, delta and cause-attribution logic — and the
richer ``python -m repro diff <old> <new>`` front end — live there.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_FRESH = REPO_ROOT / "benchmarks" / "output" / "BENCH_pipeline.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_pipeline.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.diffbench import compare, diff_main  # noqa: E402,F401  (compare re-exported for legacy callers)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", default=str(DEFAULT_FRESH),
        help=f"freshly produced bench json (default: {DEFAULT_FRESH})",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=2.0,
        help="per-scheduler schedule-time ratio that triggers a warning (default: 2.0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on quality regressions (default: warn only)",
    )
    args = parser.parse_args(argv)

    fresh_path, base_path = pathlib.Path(args.fresh), pathlib.Path(args.baseline)
    if not base_path.exists():
        print(f"no baseline at {base_path}; nothing to compare", file=sys.stderr)
        return 0
    if not fresh_path.exists():
        print(f"no fresh bench json at {fresh_path}; run `make bench-quick` first", file=sys.stderr)
        return 1
    argv_out = [str(base_path), str(fresh_path), "--time-tolerance", str(args.time_tolerance)]
    if args.strict:
        argv_out.append("--strict")
    return diff_main(argv_out)


if __name__ == "__main__":
    sys.exit(main())
