"""Ablation (§3.3, adjustment 3): priority-order-guided ILP branching.

"The priority order in which the ILP solver traverses the branch-and-
bound tree is by far the most important factor affecting whether it
could solve the problem.\""""

from repro.core import min_ii, production_orders
from repro.eval import Table
from repro.ilp import SolverOptions, solve_milp
from repro.ir import LoopBuilder
from repro.machine import r8000
from repro.most import build_formulation

from .conftest import OUTPUT_DIR, run_once


def _reduction_loop(machine, pairs):
    b = LoopBuilder(f"red{pairs}", machine=machine)
    acc = b.recurrence("acc")
    total = None
    for k in range(pairs):
        v = b.load("a", offset=8 * k, stride=8 * pairs)
        w = b.load("b", offset=8 * k, stride=8 * pairs)
        p = b.fmul(v, w)
        total = p if total is None else b.fadd(total, p)
    acc.close(b.fadd(total, acc.use()))
    return b.build()


def test_ablation_ilp_branching(benchmark, record_artifact):
    machine = r8000()

    def run():
        table = Table(
            "Ablation: priority-guided vs fractionality branching (our B&B)",
            ["loop", "II", "guided nodes", "guided ok", "unguided nodes", "unguided ok"],
        )
        summary = {"guided_nodes": 0, "unguided_nodes": 0, "guided_solved": 0, "unguided_solved": 0}
        for pairs in (3, 4, 5):
            loop = _reduction_loop(machine, pairs)
            ii = min_ii(loop, machine)
            formulation = build_formulation(loop, machine, ii)
            order = next(iter(production_orders(loop, machine).values()))
            guided = solve_milp(
                formulation.model,
                SolverOptions(
                    engine="bnb", time_limit=20, first_solution=True,
                    branch_priority=formulation.branch_priority(order),
                    branch_up_first=True,
                ),
            )
            formulation2 = build_formulation(loop, machine, ii)
            unguided = solve_milp(
                formulation2.model,
                SolverOptions(engine="bnb", time_limit=20, first_solution=True),
            )
            table.add(
                loop.name, ii, guided.nodes, guided.has_solution,
                unguided.nodes, unguided.has_solution,
            )
            summary["guided_nodes"] += guided.nodes
            summary["unguided_nodes"] += unguided.nodes
            summary["guided_solved"] += int(guided.has_solution)
            summary["unguided_solved"] += int(unguided.has_solution)
        return table, summary

    table, summary = run_once(benchmark, run)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablation_ilp_branching.txt").write_text(table.formatted() + "\n")
    benchmark.extra_info.update(summary)
    # Shape: guidance never solves fewer instances, and within the solved
    # set it explores no more nodes overall.
    assert summary["guided_solved"] >= summary["unguided_solved"]
