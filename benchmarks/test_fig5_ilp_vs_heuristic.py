"""Figure 5: ILP-scheduled code relative to MIPSpro, with and without
the memory-bank pairing heuristics.

Paper: against the full heuristic the ILP code loses (geomean ~8% in
MIPSpro's favour, worst case alvinn ~15%); with pairing disabled the two
are within a few percent of each other."""

from repro.eval import fig5_ilp_vs_heuristic

from .conftest import run_once


def test_fig5(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig5_ilp_vs_heuristic(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: the full heuristic (with bank pairing) beats the ILP overall;
    # without pairing they are close.
    assert result.summary["geomean_vs_bank"] < 1.0
    assert abs(result.summary["geomean_vs_nobank"] - 1.0) < 0.06
    assert result.summary["geomean_vs_nobank"] > result.summary["geomean_vs_bank"] - 1e-9
