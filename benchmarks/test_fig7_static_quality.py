"""Figure 7: second-order static quality (registers, overhead cycles),
MIPSpro minus ILP, per Livermore loop.

Paper: IIs identical for all loops; neither scheduler consistently
better on either measure (heuristic fewer regs 15/26, lower overhead
12/26); for 16 loops the lower-overhead schedule did not use fewer
registers."""

from repro.eval import fig7_static_quality

from .conftest import run_once


def test_fig7(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig7_static_quality(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    n = result.summary["loops"]
    # Shape: IIs agree almost everywhere; neither side sweeps either
    # static measure.
    assert result.summary["identical_ii"] >= n - 2
    assert 0 < result.summary["sgi_fewer_regs"] < n
    assert 0 < result.summary["sgi_lower_overhead"] < n
    assert result.summary["uncorrelated"] > 0
