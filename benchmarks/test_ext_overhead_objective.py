"""Extension (§5 future work): ILP objective that minimises loop overhead.

"Perhaps an ILP formulation can be made that optimizes loop overhead more
directly than by optimizing register usage."  The stage-count objective
must never lose to the buffer objective on the overhead metric at equal
II, and should win somewhere."""

from repro.eval import ext_overhead_objective

from .conftest import run_once


def test_ext_overhead_objective(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: ext_overhead_objective(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    assert result.summary["total_saved"] >= 0
    assert result.summary["regressed"] <= result.summary["improved"] + result.summary["unchanged"]
