"""Section 5: the largest loop each technique can schedule.

Paper: the heuristic handled up to 116 operations, the ILP up to 61."""

from repro.eval import sec5_scalability

from .conftest import run_once


def test_sec5_scalability(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: sec5_scalability(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: the heuristic scales to much larger loops than the ILP; the
    # heuristic comfortably passes the paper's 116-op mark.
    assert result.summary["largest_sgi"] >= 116
    assert result.summary["largest_ilp"] < result.summary["largest_sgi"]
