"""Figure 6: ILP vs MIPSpro on every Livermore kernel, short and long
trip counts.

Paper: the SGI scheduler performs at least as well nearly everywhere at
both trip lengths."""

from repro.eval import fig6_livermore

from .conftest import run_once


def test_fig6(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig6_livermore(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: ILP does not beat the heuristic overall at either length
    # (ratios are SGI/ILP performance: >= ~1 means SGI at least as good).
    assert result.summary["geomean_short"] > 0.97
    assert result.summary["geomean_long"] > 0.97
