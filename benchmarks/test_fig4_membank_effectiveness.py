"""Figure 4: MIPSpro memory-bank heuristics enabled vs disabled.

Paper: alvinn and mdljdp2 stand out as beneficiaries; the remaining
benchmarks sit near 1.0 either way."""

from repro.eval import fig4_membank_effectiveness

from .conftest import run_once


def test_fig4(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig4_membank_effectiveness(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    ratios = {row[0]: row[1] for row in result.table.rows if isinstance(row[1], float)}
    # Shape: alvinn is the standout, mdljdp2 benefits measurably, and the
    # suite as a whole moves only a little.
    assert ratios["alvinn"] > 1.2
    assert ratios["mdljdp2"] > 1.02
    others = [v for k, v in ratios.items() if k not in ("alvinn", "mdljdp2", "geometric mean")]
    assert all(0.85 <= v <= 1.1 for v in others)
