"""Figure 2: SPEC92 fp with software pipelining enabled vs disabled.

Paper: pipelining improves every benchmark; >35% geometric-mean
improvement (understated baseline caveats apply in both directions — see
EXPERIMENTS.md)."""

from repro.eval import fig2_pipelining_effectiveness

from .conftest import run_once


def test_fig2(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: fig2_pipelining_effectiveness(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: pipelining must win overall and on (almost) every benchmark.
    assert result.summary["geomean_speedup"] > 1.35
    speedups = [row[-1] for row in result.table.rows if isinstance(row[-1], float)]
    assert all(s >= 1.0 for s in speedups)
