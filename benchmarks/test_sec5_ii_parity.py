"""Section 5: how often the optimal technique finds a lower II.

Paper: exactly one loop across the whole study, and "a very modest
increase in the backtracking limits of the heuristic approach equalized
the situation"."""

from repro.eval import sec5_ii_parity

from .conftest import run_once


def test_sec5_ii_parity(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: sec5_ii_parity(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: ILP II wins are rare (a handful at most across ~50 loops).
    assert result.summary["ilp_ii_wins"] <= 3
