"""Ablation (§2.3): binary vs linear II search.

The paper: binary search over IIs has "no measurable impact on output
code quality, but can have a dramatic impact on compile speed".  The
effect shows on loops that end up well above MinII."""

import pytest

from repro.core import PipelinerOptions, pipeline_loop
from repro.eval import Table
from repro.machine import r8000
from repro.workloads import livermore_kernel, spec92_benchmark

from .conftest import OUTPUT_DIR, run_once


def _gap_loops(machine):
    """Loops whose achieved II sits well above MinII: the search matters."""
    return [
        livermore_kernel(8, machine),  # II 19 vs MinII 11
        spec92_benchmark("tomcatv", machine).loops[0],
        spec92_benchmark("ora", machine).loops[0],
    ]


def test_ablation_ii_search(benchmark, record_artifact):
    machine = r8000()

    def run():
        table = Table(
            "Ablation: binary vs linear II search (scheduling attempts)",
            ["loop", "MinII", "II", "binary attempts", "linear attempts"],
        )
        totals = {"binary": 0, "linear": 0}
        for loop in _gap_loops(machine):
            attempts = {}
            iis = {}
            for mode, linear in (("binary", False), ("linear", True)):
                res = pipeline_loop(
                    loop, machine, PipelinerOptions(linear_ii_search=linear)
                )
                attempts[mode] = res.stats.attempts
                iis[mode] = res.ii
                totals[mode] += res.stats.attempts
            # Quality must be identical; only the search cost may differ.
            assert iis["binary"] == iis["linear"], loop.name
            table.add(loop.name, res.min_ii, iis["binary"], attempts["binary"], attempts["linear"])
        table.add("total", "", "", totals["binary"], totals["linear"])
        return table, totals

    table, totals = run_once(benchmark, run)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablation_ii_search.txt").write_text(table.formatted() + "\n")
    benchmark.extra_info.update(totals)
    assert totals["binary"] < totals["linear"]
