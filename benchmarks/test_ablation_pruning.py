"""Ablation (§2.4): catch-point pruning of the branch-and-bound search.

"This is an exponential algorithm and is not practical in its unpruned
form."  On small loops both variants find schedules; pruning must not
cost quality while the unpruned search does far more work under
backtracking pressure."""

from repro.core import BnBConfig, min_ii, modulo_schedule_bnb, order_by_name
from repro.eval import Table
from repro.ir import LoopBuilder
from repro.machine import r8000

from .conftest import OUTPUT_DIR, run_once


def _backtracky_loop(machine, n_adds):
    """A divide plus add chains: placements collide and must backtrack."""
    b = LoopBuilder(f"bt{n_adds}", machine=machine)
    x = b.load("x", offset=0, stride=8)
    y = b.load("y", offset=0, stride=8)
    q = b.fdiv(x, y)
    t = b.fadd(q, b.invariant("c"))
    for k in range(n_adds):
        t = b.fadd(t, b.invariant("c"))
    b.store("o", t, offset=0, stride=8)
    return b.build()


def test_ablation_pruning(benchmark, record_artifact):
    machine = r8000()

    def run():
        table = Table(
            "Ablation: catch-point pruning (branch-and-bound placements tried)",
            ["loop", "II", "order", "pruned", "unpruned", "both succeed"],
        )
        totals = {"pruned": 0, "unpruned": 0}
        for n_adds in (2, 4, 6):
            loop = _backtracky_loop(machine, n_adds)
            ii = min_ii(loop, machine)
            for order_name in ("RHMS", "HMS"):
                order = order_by_name(loop, machine, order_name)
                pruned = modulo_schedule_bnb(
                    loop, machine, ii, order, BnBConfig(prune=True)
                )
                unpruned = modulo_schedule_bnb(
                    loop, machine, ii, order,
                    BnBConfig(prune=False, max_backtracks=100_000),
                )
                table.add(
                    loop.name, ii, order_name, pruned.placements,
                    unpruned.placements, pruned.success == unpruned.success,
                )
                totals["pruned"] += pruned.placements
                totals["unpruned"] += unpruned.placements
        return table, totals

    table, totals = run_once(benchmark, run)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablation_pruning.txt").write_text(table.formatted() + "\n")
    benchmark.extra_info.update(totals)
    assert totals["pruned"] <= totals["unpruned"]
