"""Extension: the three-way showdown with iterative modulo scheduling.

[Rau94] is the algorithm the paper's epigraph quotes; adding it shows
where a non-backtracking heuristic lands between the SGI branch-and-bound
and the ILP: usually the same II, far cheaper than the ILP, occasionally
better or worse than the SGI search."""

from repro.eval import ext_rau_comparison

from .conftest import run_once


def test_ext_rau94(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: ext_rau_comparison(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: Rau agrees with the SGI scheduler on most Livermore kernels
    # and is far cheaper than the ILP.
    assert result.summary["rau_matches_sgi"] >= 18
    assert result.summary["rau_seconds"] < result.summary["ilp_seconds"]
