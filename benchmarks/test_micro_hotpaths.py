"""Pinned-seed microbenchmarks of the scheduler hot paths (perf CI lane).

Three timed kernels cover the inner loops the raw-speed campaign
optimized — reservation-table probing, distance-table construction and
query, and one full branch-and-bound search — so a per-PR time series of
``schedule_seconds`` exists below the full bench grid's noise floor.

Two entry points:

* ``pytest benchmarks/test_micro_hotpaths.py`` (or ``make bench-micro``)
  runs the suite, writes ``benchmarks/output/BENCH_micro.json``, and
  compares against the committed ``benchmarks/baseline/BENCH_micro.json``
  with deliberately generous thresholds — warn above 1.5x, fail above
  3x — so CI-runner noise doesn't flake the lane while real hot-path
  regressions still can't land silently.
* ``python benchmarks/test_micro_hotpaths.py --update-baseline`` refreshes
  the committed baseline after an intentional perf change.

Every kernel is deterministic (fixed loops, fixed II sequences, no RNG at
all) and reports the *best* of several repeats, which is the standard way
to damp scheduler-preemption noise out of wall-clock microbenchmarks.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
import warnings
from typing import Callable, Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bnb import BnBConfig, modulo_schedule_bnb  # noqa: E402
from repro.core.distances import SccDistanceTables  # noqa: E402
from repro.core.minii import min_ii  # noqa: E402
from repro.core.priorities import order_by_name  # noqa: E402
from repro.machine.descriptions import r8000  # noqa: E402
from repro.machine.resources import ModuloReservationTable  # noqa: E402
from repro.workloads.livermore import livermore_kernels  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "benchmarks" / "output" / "BENCH_micro.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_micro.json"

WARN_RATIO = 1.5
FAIL_RATIO = 3.0
REPEATS = 5


def _loop(name: str):
    machine = r8000()
    for loop in livermore_kernels(machine):
        if loop.name == name:
            return loop, machine
    raise KeyError(name)


def bench_mrt_fits_place_remove() -> None:
    """Probe/place/remove churn over every opclass of the r8000 tables."""
    machine = r8000()
    loop, _ = _loop("lk09_predict")
    tables = [machine.table(op.opclass) for op in loop.ops]
    for ii in (4, 6, 9):
        mrt = ModuloReservationTable(ii, machine.availability)
        placed = []
        for rep in range(40):
            for op, table in enumerate(tables):
                cycle = (op * 3 + rep) % (4 * ii)
                if mrt.fits(table, cycle):
                    mrt.place(table, cycle)
                    placed.append((table, cycle))
            while placed:
                table, cycle = placed.pop()
                mrt.remove(table, cycle)


def bench_scc_distances() -> None:
    """Distance-table construction + full pair queries at MinII..MinII+4.

    Loops are rebuilt each repeat, so the timing includes the parametric
    profile construction (or per-II Floyd-Warshall under
    ``REPRO_LEGACY_HOTPATHS=1``), not just memo hits.
    """
    machine = r8000()
    for loop in livermore_kernels(machine):
        if not loop.ddg.nontrivial_sccs():
            continue
        mii = min_ii(loop, machine)
        for ii in range(mii, mii + 5):
            dists = SccDistanceTables(loop, ii)
            for scc in loop.ddg.nontrivial_sccs():
                for src in scc:
                    for dst in scc:
                        dists.dist(src, dst)


def bench_bnb_search() -> None:
    """One branch-and-bound search on a backtracking-heavy kernel."""
    loop, machine = _loop("lk14_pic1d")
    priority = order_by_name(loop, machine, "FDMS")
    mii = min_ii(loop, machine)
    for ii in (mii, mii + 1):
        modulo_schedule_bnb(loop, machine, ii, priority, BnBConfig())


BENCHES: Dict[str, Callable[[], None]] = {
    "mrt_fits_place_remove": bench_mrt_fits_place_remove,
    "scc_distances": bench_scc_distances,
    "bnb_search": bench_bnb_search,
}


def run_micro_bench(repeats: int = REPEATS) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per kernel."""
    results: Dict[str, float] = {}
    for name, fn in BENCHES.items():
        fn()  # warm import/lowering caches out of the measurement
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        results[name] = best
    return results


def build_report(benches: Dict[str, float]) -> Dict:
    import datetime

    from repro.exec.hashing import code_version
    from repro.obs.provenance import provenance

    return {
        "name": "micro",
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "code_version": code_version(),
        "provenance": provenance(),
        "machine": "r8000",
        "repeats": REPEATS,
        "benches": benches,
    }


def write_report(benches: Dict[str, float], path: pathlib.Path = OUTPUT_PATH) -> pathlib.Path:
    payload = build_report(benches)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def compare_to_baseline(
    benches: Dict[str, float], baseline_path: pathlib.Path = BASELINE_PATH
) -> Dict[str, Dict[str, float]]:
    """Per-kernel ratio vs the committed baseline, with verdicts."""
    if not baseline_path.exists():
        return {}
    baseline = json.loads(baseline_path.read_text())["benches"]
    report: Dict[str, Dict[str, float]] = {}
    for name, fresh in benches.items():
        base = baseline.get(name)
        if base is None or base <= 0:
            continue
        ratio = fresh / base
        verdict = "ok" if ratio <= WARN_RATIO else ("warn" if ratio <= FAIL_RATIO else "fail")
        report[name] = {"fresh": fresh, "baseline": base, "ratio": ratio, "verdict": verdict}
    return report


def test_micro_hotpaths_within_baseline():
    """The perf gate: no kernel may drift past 3x its committed baseline."""
    benches = run_micro_bench()
    write_report(benches)
    comparison = compare_to_baseline(benches)
    failed = []
    for name, entry in sorted(comparison.items()):
        line = (
            f"{name}: {entry['fresh']*1e3:.2f}ms vs baseline "
            f"{entry['baseline']*1e3:.2f}ms ({entry['ratio']:.2f}x)"
        )
        print(line)
        if entry["verdict"] == "fail":
            failed.append(line)
        elif entry["verdict"] == "warn":
            warnings.warn(f"perf drift (above {WARN_RATIO}x, below {FAIL_RATIO}x): {line}")
    assert not failed, (
        f"hot-path kernels regressed past the {FAIL_RATIO}x gate:\n" + "\n".join(failed)
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"write the fresh numbers to {BASELINE_PATH}",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS, metavar="N",
        help=f"repeats per kernel, best kept (default: {REPEATS})",
    )
    parser.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="also file the run in the repro.obs.history store "
        "(e.g. benchmarks/history); off by default",
    )
    args = parser.parse_args(argv)
    benches = run_micro_bench(args.repeats)
    path = write_report(benches)
    print(f"wrote {path}")
    if args.history_dir:
        from repro.obs.history import append_history

        record = append_history(build_report(benches), history_dir=args.history_dir)
        print(f"history record {record}")
    for name, seconds in sorted(benches.items()):
        print(f"  {name}: {seconds*1e3:.2f}ms")
    if args.update_baseline:
        write_report(benches, BASELINE_PATH)
        print(f"baseline refreshed at {BASELINE_PATH}")
        return 0
    bad = 0
    for name, entry in sorted(compare_to_baseline(benches).items()):
        marker = {"ok": " ", "warn": "~", "fail": "!"}[entry["verdict"]]
        print(f"{marker} {name}: {entry['ratio']:.2f}x baseline")
        bad += entry["verdict"] == "fail"
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
