"""Ablation (§3.3, adjustment 1): staged vs integrated ILP formulation.

"Using the ILP formulation of the integrated register allocation and
scheduling problem was just too slow and unacceptably limited the size of
loop that could be scheduled."  With a 2020s LP engine the integrated
solve is no longer slower outright at Livermore scale; the staged design's
advantage shows as *II quality under a fixed budget*: the resource-first
feasibility pass (stop at the first schedule) finds the low IIs that the
integrated optimality solve burns its budget failing to prove."""

import time

from repro.eval import Table
from repro.machine import r8000
from repro.most import MostOptions, most_pipeline_loop
from repro.workloads import livermore_kernel, scaling_series

from .conftest import OUTPUT_DIR, run_once


def test_ablation_ilp_staging(benchmark, experiment_config, record_artifact):
    machine = r8000()
    loops = [livermore_kernel(5, machine), livermore_kernel(18, machine),
             livermore_kernel(8, machine)]
    loops += scaling_series([52, 64], machine=machine)

    def run():
        table = Table(
            "Ablation: staged (resource-first) vs integrated ILP at equal budget",
            ["loop", "ops", "II staged", "s staged", "II integrated", "s integrated"],
        )
        summary = {
            "staged_wins": 0.0,
            "integrated_wins": 0.0,
            "ties": 0.0,
            "staged_failures": 0.0,
            "integrated_failures": 0.0,
        }
        for loop in loops:
            iis = {}
            for mode in (False, True):
                start = time.perf_counter()
                res = most_pipeline_loop(
                    loop, machine,
                    MostOptions(time_limit=15, engine="scipy", integrated=mode,
                                fallback=False, max_ops=10_000),
                )
                iis[mode] = (res.ii, time.perf_counter() - start, res.success)
            table.add(loop.name, loop.n_ops, iis[False][0], iis[False][1],
                      iis[True][0], iis[True][1])
            staged_ii, _, staged_ok = iis[False]
            integrated_ii, _, integrated_ok = iis[True]
            summary["staged_failures"] += int(not staged_ok)
            summary["integrated_failures"] += int(not integrated_ok)
            if not (staged_ok and integrated_ok):
                if staged_ok and not integrated_ok:
                    summary["staged_wins"] += 1
                elif integrated_ok and not staged_ok:
                    summary["integrated_wins"] += 1
                continue
            if staged_ii < integrated_ii:
                summary["staged_wins"] += 1
            elif integrated_ii < staged_ii:
                summary["integrated_wins"] += 1
            else:
                summary["ties"] += 1
        return table, summary

    table, summary = run_once(benchmark, run)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ablation_ilp_staging.txt").write_text(table.formatted() + "\n")
    benchmark.extra_info.update(summary)
    # Shape: under equal budgets the staged design never schedules fewer
    # loops and never a larger II; it wins outright somewhere.
    assert summary["staged_failures"] <= summary["integrated_failures"]
    assert summary["integrated_wins"] == 0
    assert summary["staged_wins"] >= 1
