"""Section 4.7: compile-speed comparison over the SPEC92-like corpus.

Paper: 237 s in the heuristic scheduler vs 67,634 s in the ILP —
roughly 285x.  Our ILP runs under a much smaller per-loop budget, so the
measured ratio is a lower bound on the true gap."""

from repro.eval import sec47_compile_speed

from .conftest import run_once


def test_sec47(benchmark, experiment_config, record_artifact):
    result = run_once(benchmark, lambda: sec47_compile_speed(experiment_config))
    record_artifact(result)
    benchmark.extra_info.update(result.summary)
    # Shape: on the typical loop both schedulers handle natively, the ILP
    # is at least an order of magnitude slower to compile.  (The aggregate
    # ratio scales with the ILP budget — 6 s here vs the paper's 180 s —
    # and with how long the heuristic's own hardest loops take, so the
    # per-loop geometric mean is the robust like-for-like statistic.)
    assert result.summary["native_geomean"] > 10.0
    assert result.summary["ilp_seconds"] > result.summary["sgi_seconds"]
