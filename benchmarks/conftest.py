"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered artefact is written to ``benchmarks/output/<name>.txt`` so runs
can be archived (EXPERIMENTS.md quotes them), and headline numbers land in
pytest-benchmark's ``extra_info``.

Experiments are deterministic but expensive (they compile the entire
workload corpus, some of it twice, and run the ILP scheduler under a time
budget), so every benchmark executes exactly one round.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval import ExperimentConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session", autouse=True)
def _strict_verification():
    """Benchmarks run strict: the quoted figures must verify cleanly."""
    from repro.verify import set_default_verify

    set_default_verify(True)
    yield
    set_default_verify(False)


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    # The paper gave the ILP three minutes per loop; benchmarks give it a
    # few seconds — enough for optimality on small loops and a faithful
    # "timed out, fell back" signal on big ones.
    return ExperimentConfig(most_time_limit=6.0, most_engine="scipy")


@pytest.fixture(scope="session")
def record_artifact():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        path = OUTPUT_DIR / f"{result.name}.txt"
        path.write_text(result.formatted() + "\n")

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
