"""Workload corpora: Livermore kernels, SPEC92-like loops, random loops."""

from .generators import GeneratorConfig, random_loop, scaling_series
from .livermore import LONG_TRIPS, SHORT_TRIPS, livermore_kernel, livermore_kernels
from .spec92 import SPEC92_FP_NAMES, Benchmark, spec92_benchmark, spec92_suite

__all__ = [
    "Benchmark",
    "GeneratorConfig",
    "LONG_TRIPS",
    "SHORT_TRIPS",
    "SPEC92_FP_NAMES",
    "livermore_kernel",
    "livermore_kernels",
    "random_loop",
    "scaling_series",
    "spec92_benchmark",
    "spec92_suite",
]
