"""Workload corpora: Livermore kernels, SPEC92-like loops, random loops,
and the loop-spec mutation engine the differential fuzzer generates with."""

from .generators import GeneratorConfig, random_loop, random_spec, scaling_series
from .livermore import LONG_TRIPS, SHORT_TRIPS, livermore_kernel, livermore_kernels
from .recbound import recbound_kernel, recbound_kernels
from .mutate import (
    MUTATORS,
    LoopSpec,
    OpSpec,
    crossover,
    mutate,
    normalize,
    remove_position,
    spec_from_token,
    spec_to_token,
)
from .spec92 import SPEC92_FP_NAMES, Benchmark, spec92_benchmark, spec92_suite

__all__ = [
    "Benchmark",
    "GeneratorConfig",
    "LONG_TRIPS",
    "LoopSpec",
    "MUTATORS",
    "OpSpec",
    "SHORT_TRIPS",
    "SPEC92_FP_NAMES",
    "crossover",
    "livermore_kernel",
    "livermore_kernels",
    "mutate",
    "normalize",
    "random_loop",
    "random_spec",
    "recbound_kernel",
    "recbound_kernels",
    "remove_position",
    "scaling_series",
    "spec_from_token",
    "spec_to_token",
    "spec92_benchmark",
    "spec92_suite",
]
