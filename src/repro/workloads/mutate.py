"""Structure-aware mutation engine over loop IR.

The fuzzing subsystem (:mod:`repro.fuzz`) needs to *generate* loops, not
just replay the paper's: this module gives it a declarative, serialisable
loop representation (:class:`LoopSpec`) plus a set of mutators and a
crossover operator in the style of coverage-guided fuzzers.

A :class:`LoopSpec` is a tiny program: an ordered list of :class:`OpSpec`
instructions whose operands reference earlier results positionally, plus
recurrence declarations and optional extra dependence arcs.  Specs are

* **buildable** — :meth:`LoopSpec.build` replays the spec through
  :class:`~repro.ir.builder.LoopBuilder`, yielding a checked
  :class:`~repro.ir.loop.Loop`;
* **closed under mutation** — :func:`normalize` repairs any spec (dangling
  operand references, unclosed recurrences, bad arities) into a buildable
  one, so mutators and crossover can edit freely;
* **serialisable** — :func:`spec_to_token` / :func:`spec_from_token` round
  a spec through compressed base64, which is how fuzz cells reference
  generated loops in the :mod:`repro.exec` registry (``fuzz:<token>``)
  and how minimized reproducers are checked into ``tests/fuzz_corpus/``.

Every function takes an explicit :class:`random.Random` instance; nothing
here touches the module-level ``random`` state, so two processes given the
same seed emit byte-identical loop IR (see the determinism tests).
"""

from __future__ import annotations

import base64
import json
import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000

# Operand encodings (JSON-friendly):
#   ("val", k)     -> result of the k-th value-producing op before this one
#   ("inv", name)  -> loop-invariant input register
#   ("rec", r, d)  -> recurrence r's value from d iterations ago
Src = Tuple[Any, ...]

#: Compute kinds and their arities (builder method names match the kind,
#: except ``select`` which builds an if-converted conditional move).
COMPUTE_ARITY: Dict[str, int] = {
    "fadd": 2,
    "fsub": 2,
    "fmul": 2,
    "fmadd": 3,
    "fdiv": 2,
    "fsqrt": 1,
    "fcmp": 2,
    "select": 3,
}

MEMORY_KINDS = ("load", "store")
#: ``close`` finishes a recurrence: ``acc_r = fadd(feed, acc_r@-distance)``.
SPECIAL_KINDS = ("close",)
ALL_KINDS = tuple(COMPUTE_ARITY) + MEMORY_KINDS + SPECIAL_KINDS

MAX_SPEC_OPS = 64
MAX_RECURRENCES = 4
MAX_DISTANCE = 4
STRIDES = (4, 8, 16, 24, 32)
WIDTHS = (4, 8)
INVARIANT_POOL = ("c0", "c1", "c2", "c3")
BASE_POOL = ("arr0", "arr1", "arr2", "arr3", "out0", "out1", "ind0", "ind1")


@dataclass(frozen=True)
class OpSpec:
    """One instruction of a loop spec.

    ``kind`` is a compute kind, ``load``/``store``, or ``close``.  Memory
    fields are meaningful for loads and stores only (``offset=None`` means
    an indirect, pointer-chased access); ``rec``/``distance`` only for
    ``close``.
    """

    kind: str
    srcs: Tuple[Src, ...] = ()
    base: str = "arr0"
    offset: Optional[int] = 0
    stride: int = 8
    width: int = 8
    rec: int = 0
    distance: int = 1

    @property
    def produces(self) -> bool:
        return self.kind != "store"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.srcs:
            out["srcs"] = [list(s) for s in self.srcs]
        if self.kind in MEMORY_KINDS:
            out.update(base=self.base, offset=self.offset,
                       stride=self.stride, width=self.width)
        if self.kind == "close":
            out.update(rec=self.rec, distance=self.distance)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OpSpec":
        return cls(
            kind=data["kind"],
            srcs=tuple(tuple(s) for s in data.get("srcs", ())),
            base=data.get("base", "arr0"),
            offset=data.get("offset", 0),
            stride=data.get("stride", 8),
            width=data.get("width", 8),
            rec=data.get("rec", 0),
            distance=data.get("distance", 1),
        )


@dataclass(frozen=True)
class LoopSpec:
    """A declarative, mutable-by-copy description of one loop body.

    ``extra_deps`` are explicit dependence arcs ``(src_pos, dst_pos,
    latency, omega)`` over op positions — the IR-level stand-in for
    latency perturbations (a mutator rescales them).
    """

    name: str
    ops: Tuple[OpSpec, ...]
    n_recs: int = 0
    extra_deps: Tuple[Tuple[int, int, int, int], ...] = ()
    trip_count: int = 16
    parity: Tuple[Tuple[str, int], ...] = ()

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": 1,
            "name": self.name,
            "ops": [op.to_dict() for op in self.ops],
            "n_recs": self.n_recs,
            "extra_deps": [list(d) for d in self.extra_deps],
            "trip_count": self.trip_count,
            "parity": [list(p) for p in self.parity],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoopSpec":
        return cls(
            name=data.get("name", "fuzz"),
            ops=tuple(OpSpec.from_dict(o) for o in data.get("ops", ())),
            n_recs=data.get("n_recs", 0),
            extra_deps=tuple(tuple(d) for d in data.get("extra_deps", ())),
            trip_count=data.get("trip_count", 16),
            parity=tuple(tuple(p) for p in data.get("parity", ())),
        )

    # ------------------------------------------------------------------
    def build(self, machine: Optional[MachineDescription] = None) -> Loop:
        """Replay the spec through the LoopBuilder into a checked Loop.

        Specs straight from mutators should be :func:`normalize`-d first;
        building an unnormalized spec may raise.
        """
        machine = machine if machine is not None else r8000()
        b = LoopBuilder(self.name, machine=machine, trip_count=self.trip_count)
        recs = [b.recurrence(f"acc{r}") for r in range(self.n_recs)]
        for base, par in self.parity:
            b.set_parity(base, par)
        values: List[Any] = []  # produced Values, in producer order
        handles: List[Any] = []  # one Value handle per op (stores included)

        def resolve(src: Src):
            if src[0] == "val":
                return values[src[1]]
            if src[0] == "inv":
                return b.invariant(src[1])
            return recs[src[1]].use(src[2])

        for op in self.ops:
            if op.kind == "load":
                v = b.load(op.base, offset=op.offset, stride=op.stride, width=op.width)
            elif op.kind == "store":
                v = b.store(op.base, resolve(op.srcs[0]), offset=op.offset,
                            stride=op.stride, width=op.width)
            elif op.kind == "close":
                v = b.fadd(resolve(op.srcs[0]), recs[op.rec].use(op.distance))
                recs[op.rec].close(v)
                b.live_out_value(recs[op.rec])
            else:
                v = getattr(b, op.kind)(*[resolve(s) for s in op.srcs])
            handles.append(v)
            if op.produces:
                values.append(v)
        for src_pos, dst_pos, latency, omega in self.extra_deps:
            b.extra_dep(handles[src_pos], handles[dst_pos], latency, omega)
        return b.build()


# ----------------------------------------------------------------------
# Normalization: repair any spec into a buildable one
# ----------------------------------------------------------------------
def _norm_src(src: Src, producers: int, n_recs: int) -> Src:
    """Clamp one operand reference into validity."""
    if not isinstance(src, (tuple, list)) or not src:
        return ("inv", "c0")
    tag = src[0]
    if tag == "val" and len(src) == 2 and isinstance(src[1], int) and producers > 0:
        return ("val", src[1] % producers)
    if tag == "inv" and len(src) == 2 and isinstance(src[1], str) and src[1]:
        return ("inv", src[1][:16])
    if tag == "rec" and len(src) == 3 and n_recs > 0 and isinstance(src[1], int):
        d = src[2] if isinstance(src[2], int) else 1
        return ("rec", src[1] % n_recs, max(1, min(MAX_DISTANCE, d)))
    return ("inv", "c0")


def _norm_mem(op: OpSpec) -> OpSpec:
    offset = op.offset
    if offset is not None:
        offset = (abs(int(offset)) % 257) // 4 * 4
    stride = STRIDES[abs(int(op.stride)) % len(STRIDES)] if op.stride not in STRIDES else op.stride
    width = op.width if op.width in WIDTHS else WIDTHS[abs(int(op.width)) % 2]
    base = (op.base or "arr0")[:16]
    return replace(op, base=base, offset=offset, stride=stride, width=width)


def _enforce_mem_contract(ops: List[OpSpec]) -> List[OpSpec]:
    """Keep memory references inside the ir.memdep analysability contract.

    The dependence analyser resolves direct same-stride references exactly;
    same-base references with mismatched strides — and stores sharing a
    base with an indirect load — are *assumed independent* (the
    front-end-proved-independence contract documented in
    :mod:`repro.ir.memdep`).  A generator emitting such pairs would be
    fuzzing the contract, not the schedulers, so every direct reference
    adopts the first ``(stride, width)`` seen for its base, and indirect
    loads are moved off any base that is also stored to.
    """
    store_bases = {op.base for op in ops if op.kind == "store"}
    indirect_remap: Dict[str, str] = {}
    shape: Dict[str, Tuple[int, int]] = {}
    out: List[OpSpec] = []
    for op in ops:
        if op.kind in MEMORY_KINDS:
            if op.offset is None:
                if op.base in store_bases:
                    if op.base not in indirect_remap:
                        k = 0
                        while f"ip{k}" in store_bases:
                            k += 1
                        indirect_remap[op.base] = f"ip{k}"
                        store_bases.add(f"ip{k}")
                    op = replace(op, base=indirect_remap[op.base])
            else:
                stride, width = shape.setdefault(op.base, (op.stride, op.width))
                if (op.stride, op.width) != (stride, width):
                    op = replace(op, stride=stride, width=width)
        out.append(op)
    return out


def normalize(spec: LoopSpec) -> LoopSpec:
    """Repair a spec into one :meth:`LoopSpec.build` always accepts.

    Operand references are clamped into range (or demoted to invariants),
    compute arities fixed, duplicate/impossible recurrence closes rewritten
    to plain adds, unclosed recurrences closed at the end, memory
    references repaired into the :mod:`repro.ir.memdep` analysability
    contract (see :func:`_enforce_mem_contract`), and extra dependence
    arcs restricted to well-defined, satisfiable ones.  The result is also
    what makes arbitrary mutation and crossover safe.
    """
    name = "".join(c if c.isalnum() or c in "_-" else "_" for c in spec.name) or "fuzz"
    trip = max(4, min(512, int(spec.trip_count)))
    n_recs = max(0, min(MAX_RECURRENCES, int(spec.n_recs)))

    ops: List[OpSpec] = []
    producers = 0
    closed: set = set()
    for op in spec.ops[:MAX_SPEC_OPS]:
        kind = op.kind if op.kind in ALL_KINDS else "fadd"
        if kind == "load":
            ops.append(_norm_mem(replace(op, kind=kind, srcs=())))
            producers += 1
            continue
        if kind == "store":
            srcs = op.srcs[:1] or (("inv", "c0"),)
            src = _norm_src(srcs[0], producers, n_recs)
            indirect = op.offset is None
            fixed = _norm_mem(replace(op, kind=kind, srcs=(src,)))
            if indirect:
                # Indirect stores would alias everything; keep them direct.
                fixed = replace(fixed, offset=0)
            ops.append(fixed)
            continue
        if kind == "close":
            r = op.rec % n_recs if n_recs else 0
            feed = op.srcs[0] if op.srcs else ("val", 0)
            usable = (
                n_recs > 0
                and r not in closed
                and producers > 0
                and isinstance(feed, (tuple, list))
                and len(feed) == 2
                and feed[0] == "val"
            )
            if usable:
                ops.append(OpSpec(
                    kind="close",
                    srcs=(("val", feed[1] % producers),),
                    rec=r,
                    distance=max(1, min(MAX_DISTANCE, int(op.distance))),
                ))
                closed.add(r)
                producers += 1
                continue
            kind = "fadd"  # demote an unusable close to a plain compute
        arity = COMPUTE_ARITY[kind]
        srcs = tuple(op.srcs[:arity])
        srcs += tuple(("inv", INVARIANT_POOL[k % len(INVARIANT_POOL)])
                      for k in range(arity - len(srcs)))
        ops.append(OpSpec(kind=kind, srcs=tuple(
            _norm_src(s, producers, n_recs) for s in srcs
        )))
        producers += 1

    # Close any recurrence the op list left open.
    for r in range(n_recs):
        if r in closed:
            continue
        if producers == 0:
            ops.append(OpSpec(kind="fadd", srcs=(("inv", "c0"), ("inv", "c1"))))
            producers += 1
        ops.append(OpSpec(kind="close", srcs=(("val", producers - 1),),
                          rec=r, distance=1))
        producers += 1

    if not ops:
        ops = [OpSpec(kind="load", base="arr0"),
               OpSpec(kind="store", srcs=(("val", 0),), base="out0")]
        producers = 1
    # A loop with no observable output (no store, no live-out recurrence)
    # is a degenerate oracle subject; give it one store.
    if not any(op.kind in ("store", "close") for op in ops):
        ops.append(OpSpec(kind="store", srcs=(("val", producers - 1),), base="out0"))
    ops = _enforce_mem_contract(ops)

    n = len(ops)
    deps: List[Tuple[int, int, int, int]] = []
    seen: set = set()
    for dep in spec.extra_deps:
        if len(dep) != 4:
            continue
        src_pos, dst_pos, latency, omega = (int(x) for x in dep)
        if not (0 <= src_pos < n and 0 <= dst_pos < n):
            continue
        latency = max(1, min(24, latency))
        omega = max(0, min(MAX_DISTANCE, omega))
        if dst_pos <= src_pos:
            omega = max(1, omega)  # backward/self arcs must be loop-carried
        key = (src_pos, dst_pos, omega)
        if key in seen:
            continue
        seen.add(key)
        deps.append((src_pos, dst_pos, latency, omega))

    parity = tuple(sorted({str(b)[:16]: int(p) % 2 for b, p in spec.parity
                           if isinstance(b, str)}.items()))
    return LoopSpec(name=name, ops=tuple(ops), n_recs=n_recs,
                    extra_deps=tuple(deps), trip_count=trip, parity=parity)


# ----------------------------------------------------------------------
# Structured edits shared by mutators and the minimizer
# ----------------------------------------------------------------------
def remove_position(spec: LoopSpec, pos: int) -> Optional[LoopSpec]:
    """Remove the op at ``pos``, remapping every reference to it.

    Removing a ``close`` removes its recurrence entirely (carried uses of
    it are demoted to invariants).  Returns ``None`` when nothing is left
    to remove.  The result is normalized.
    """
    if not (0 <= pos < len(spec.ops)) or len(spec.ops) <= 1:
        return None
    victim = spec.ops[pos]
    producer_positions = [i for i, op in enumerate(spec.ops) if op.produces]
    removed_k = producer_positions.index(pos) if victim.produces else None

    def remap(src: Src) -> Src:
        if src[0] == "val" and removed_k is not None:
            k = src[1]
            if k == removed_k:
                return ("val", k - 1) if k > 0 else ("inv", "c0")
            if k > removed_k:
                return ("val", k - 1)
        if victim.kind == "close" and src[0] == "rec":
            r = src[1]
            if r == victim.rec:
                return ("inv", "c0")
            if r > victim.rec:
                return ("rec", r - 1, src[2])
        return src

    ops: List[OpSpec] = []
    for i, op in enumerate(spec.ops):
        if i == pos:
            continue
        new = replace(op, srcs=tuple(remap(s) for s in op.srcs))
        if victim.kind == "close" and new.kind == "close" and new.rec > victim.rec:
            new = replace(new, rec=new.rec - 1)
        ops.append(new)
    deps = tuple(
        (s - (s > pos), d - (d > pos), lat, om)
        for s, d, lat, om in spec.extra_deps
        if s != pos and d != pos
    )
    n_recs = spec.n_recs - 1 if victim.kind == "close" else spec.n_recs
    return normalize(replace(spec, ops=tuple(ops), extra_deps=deps,
                             n_recs=max(0, n_recs)))


def _rand_src(rng: random.Random, producers: int, n_recs: int) -> Src:
    roll = rng.random()
    if producers and roll < 0.7:
        return ("val", rng.randrange(producers))
    if n_recs and roll < 0.85:
        return ("rec", rng.randrange(n_recs), rng.choice([1, 1, 2]))
    return ("inv", rng.choice(INVARIANT_POOL))


def _producers_before(spec: LoopSpec, pos: int) -> int:
    return sum(1 for op in spec.ops[:pos] if op.produces)


# ----------------------------------------------------------------------
# The mutators
# ----------------------------------------------------------------------
def _mut_add_compute(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    pos = rng.randrange(len(spec.ops) + 1)
    producers = _producers_before(spec, pos)
    kind = rng.choice(tuple(COMPUTE_ARITY))
    srcs = tuple(_rand_src(rng, producers, spec.n_recs)
                 for _ in range(COMPUTE_ARITY[kind]))
    op = OpSpec(kind=kind, srcs=srcs)
    deps = tuple((s + (s >= pos), d + (d >= pos), lat, om)
                 for s, d, lat, om in spec.extra_deps)
    return replace(spec, ops=spec.ops[:pos] + (op,) + spec.ops[pos:], extra_deps=deps)


def _mut_add_load(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    pos = rng.randrange(len(spec.ops) + 1)
    indirect = rng.random() < 0.15
    op = OpSpec(kind="load", base=rng.choice(BASE_POOL),
                offset=None if indirect else rng.randrange(0, 4) * 8,
                stride=rng.choice(STRIDES), width=rng.choice(WIDTHS))
    deps = tuple((s + (s >= pos), d + (d >= pos), lat, om)
                 for s, d, lat, om in spec.extra_deps)
    return replace(spec, ops=spec.ops[:pos] + (op,) + spec.ops[pos:], extra_deps=deps)


def _mut_add_store(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    producers = _producers_before(spec, len(spec.ops))
    if not producers:
        return spec
    op = OpSpec(kind="store", srcs=(("val", rng.randrange(producers)),),
                base=rng.choice(BASE_POOL), offset=rng.randrange(0, 4) * 8,
                stride=rng.choice(STRIDES), width=rng.choice(WIDTHS))
    return replace(spec, ops=spec.ops + (op,))


def _mut_remove_op(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    out = remove_position(spec, rng.randrange(len(spec.ops)))
    return out if out is not None else spec


def _mut_change_opcode(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    compute = [i for i, op in enumerate(spec.ops) if op.kind in COMPUTE_ARITY]
    if not compute:
        return spec
    pos = rng.choice(compute)
    return replace(spec, ops=spec.ops[:pos]
                   + (replace(spec.ops[pos], kind=rng.choice(tuple(COMPUTE_ARITY))),)
                   + spec.ops[pos + 1:])


def _mut_redirect_operand(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    with_srcs = [i for i, op in enumerate(spec.ops) if op.srcs and op.kind != "close"]
    if not with_srcs:
        return spec
    pos = rng.choice(with_srcs)
    op = spec.ops[pos]
    slot = rng.randrange(len(op.srcs))
    srcs = list(op.srcs)
    srcs[slot] = _rand_src(rng, _producers_before(spec, pos), spec.n_recs)
    return replace(spec, ops=spec.ops[:pos] + (replace(op, srcs=tuple(srcs)),)
                   + spec.ops[pos + 1:])


def _mut_perturb_distance(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    """Perturb one loop-carried dependence distance by +-1."""
    candidates: List[Tuple[int, Optional[int]]] = []  # (op pos, src slot | None=close)
    for i, op in enumerate(spec.ops):
        if op.kind == "close":
            candidates.append((i, None))
        for j, src in enumerate(op.srcs):
            if src[0] == "rec":
                candidates.append((i, j))
    if not candidates:
        return spec
    pos, slot = rng.choice(candidates)
    op = spec.ops[pos]
    delta = rng.choice([-1, 1])
    if slot is None:
        op = replace(op, distance=op.distance + delta)
    else:
        srcs = list(op.srcs)
        srcs[slot] = ("rec", srcs[slot][1], srcs[slot][2] + delta)
        op = replace(op, srcs=tuple(srcs))
    return replace(spec, ops=spec.ops[:pos] + (op,) + spec.ops[pos + 1:])


def _mut_toggle_recurrence(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    """Add a recurrence (with its close) or drop an existing one."""
    closes = [i for i, op in enumerate(spec.ops) if op.kind == "close"]
    if closes and (spec.n_recs >= MAX_RECURRENCES or rng.random() < 0.5):
        out = remove_position(spec, rng.choice(closes))
        return out if out is not None else spec
    producers = _producers_before(spec, len(spec.ops))
    if not producers:
        return spec
    op = OpSpec(kind="close", srcs=(("val", rng.randrange(producers)),),
                rec=spec.n_recs, distance=rng.choice([1, 1, 2]))
    return replace(spec, n_recs=spec.n_recs + 1, ops=spec.ops + (op,))


def _mut_toggle_indirect(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    loads = [i for i, op in enumerate(spec.ops) if op.kind == "load"]
    if not loads:
        return spec
    pos = rng.choice(loads)
    op = spec.ops[pos]
    op = replace(op, offset=0 if op.offset is None else None)
    return replace(spec, ops=spec.ops[:pos] + (op,) + spec.ops[pos + 1:])


def _mut_perturb_mem(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    mems = [i for i, op in enumerate(spec.ops) if op.kind in MEMORY_KINDS]
    if not mems:
        return spec
    pos = rng.choice(mems)
    op = spec.ops[pos]
    roll = rng.random()
    if roll < 0.3 and op.offset is not None:
        op = replace(op, offset=op.offset + rng.choice([-8, 8, 4]))
    elif roll < 0.55:
        op = replace(op, stride=rng.choice(STRIDES))
    elif roll < 0.75:
        op = replace(op, width=rng.choice(WIDTHS))
    else:
        op = replace(op, base=rng.choice(BASE_POOL))
    return replace(spec, ops=spec.ops[:pos] + (op,) + spec.ops[pos + 1:])


def _mut_add_extra_dep(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    if len(spec.ops) < 2:
        return spec
    a, b = rng.randrange(len(spec.ops)), rng.randrange(len(spec.ops))
    latency = rng.choice([1, 2, 4, 8, 12, 20])
    omega = rng.choice([0, 0, 1, 1, 2])
    return replace(spec, extra_deps=spec.extra_deps + ((a, b, latency, omega),))


def _mut_rescale_latency(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    """Rescale one explicit dependence latency (x2 or /2)."""
    if not spec.extra_deps:
        return _mut_add_extra_dep(spec, rng)
    idx = rng.randrange(len(spec.extra_deps))
    s, d, lat, om = spec.extra_deps[idx]
    lat = lat * 2 if rng.random() < 0.5 else max(1, lat // 2)
    deps = list(spec.extra_deps)
    deps[idx] = (s, d, lat, om)
    return replace(spec, extra_deps=tuple(deps))


def _mut_drop_extra_dep(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    if not spec.extra_deps:
        return spec
    idx = rng.randrange(len(spec.extra_deps))
    return replace(spec, extra_deps=spec.extra_deps[:idx] + spec.extra_deps[idx + 1:])


def _mut_scale_trip(spec: LoopSpec, rng: random.Random) -> LoopSpec:
    factor = rng.choice([0.5, 2.0])
    return replace(spec, trip_count=int(spec.trip_count * factor))


MUTATORS: Dict[str, Callable[[LoopSpec, random.Random], LoopSpec]] = {
    "add_compute": _mut_add_compute,
    "add_load": _mut_add_load,
    "add_store": _mut_add_store,
    "remove_op": _mut_remove_op,
    "change_opcode": _mut_change_opcode,
    "redirect_operand": _mut_redirect_operand,
    "perturb_distance": _mut_perturb_distance,
    "toggle_recurrence": _mut_toggle_recurrence,
    "toggle_indirect": _mut_toggle_indirect,
    "perturb_mem": _mut_perturb_mem,
    "add_extra_dep": _mut_add_extra_dep,
    "rescale_latency": _mut_rescale_latency,
    "drop_extra_dep": _mut_drop_extra_dep,
    "scale_trip": _mut_scale_trip,
}


def mutate(spec: LoopSpec, rng: random.Random, n: int = 1,
           names: Optional[Sequence[str]] = None) -> LoopSpec:
    """Apply ``n`` random mutations (normalized after each)."""
    pool = list(names) if names else list(MUTATORS)
    out = normalize(spec)
    for _ in range(max(1, n)):
        out = normalize(MUTATORS[rng.choice(pool)](out, rng))
    return out


def crossover(a: LoopSpec, b: LoopSpec, rng: random.Random) -> LoopSpec:
    """Structure-aware crossover: a prefix of ``a`` spliced to a suffix of ``b``."""
    a, b = normalize(a), normalize(b)
    i = rng.randrange(len(a.ops) + 1)
    j = rng.randrange(len(b.ops) + 1)
    ops = a.ops[:i] + b.ops[j:]
    shift = i - j
    deps = tuple(d for d in a.extra_deps if d[0] < i and d[1] < i)
    deps += tuple((s + shift, d + shift, lat, om)
                  for s, d, lat, om in b.extra_deps if s >= j and d >= j)
    return normalize(LoopSpec(
        name=f"x_{a.name[:12]}_{b.name[:12]}",
        ops=ops,
        n_recs=max(a.n_recs, b.n_recs),
        extra_deps=deps,
        trip_count=rng.choice([a.trip_count, b.trip_count]),
        parity=a.parity,
    ))


# ----------------------------------------------------------------------
# Token codec: how fuzz cells and corpus files carry specs
# ----------------------------------------------------------------------
def spec_to_token(spec: LoopSpec) -> str:
    """Compact, URL/filesystem-safe serialisation of a spec."""
    text = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    raw = base64.urlsafe_b64encode(zlib.compress(text.encode("utf-8"), 9))
    return raw.decode("ascii").rstrip("=")


def spec_from_token(token: str) -> LoopSpec:
    """Inverse of :func:`spec_to_token` (normalizes defensively)."""
    pad = "=" * (-len(token) % 4)
    text = zlib.decompress(base64.urlsafe_b64decode(token + pad)).decode("utf-8")
    return normalize(LoopSpec.from_dict(json.loads(text)))
