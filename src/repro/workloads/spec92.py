"""SPEC92 floating-point-like loop corpora (Figures 2-5 workload).

SPEC92 sources and inputs are not redistributable, so each of the 14
floating-point benchmarks is represented by a small corpus of synthetic
inner loops whose *loop-level* structure follows what the paper reports or
what the benchmark is known to spend its time in:

* **alvinn** — two memory-bound loops over consecutive single-precision
  vector elements, even-aligned, with the natural reference patterns that
  batch same-bank accesses (Section 4.3);
* **mdljdp2** — a 95-operation force loop with 16 memory references, some
  through neighbour-list indirections with unknowable relative offsets
  (Section 4.3);
* **tomcatv** — one large mesh-generation loop ("the large N3 loop ...
  far beyond the reach of the integrated formulation", Section 3.3) with
  trip count 300 (Section 4.5);
* the rest follow the published profile of each benchmark (stencils for
  swm256/hydro2d, reductions for su2cor, divide/sqrt chains for ora,
  filters for ear, if-converted conditionals for doduc, indirection-heavy
  short-trip loops for spice2g6, a huge high-pressure body for fpppp).

Benchmark-level numbers are trip-count-weighted aggregates over the
corpus, mirroring how whole-benchmark SPECmarks aggregate loop behaviour.
Each loop's ``weight`` is the assumed fraction of benchmark runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..ir.builder import LoopBuilder, Value
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000

DW = 8
SP = 4  # single-precision width


@dataclass
class Benchmark:
    """A named benchmark: weighted inner loops."""

    name: str
    loops: List[Loop]

    def total_weight(self) -> float:
        return sum(loop.weight for loop in self.loops)


SPEC92_FP_NAMES = [
    "spice2g6", "doduc", "mdljdp2", "wave5", "tomcatv", "ora", "alvinn",
    "ear", "mdljsp2", "swm256", "su2cor", "hydro2d", "nasa7", "fpppp",
]


# ----------------------------------------------------------------------
# Reusable loop shapes
# ----------------------------------------------------------------------
def _sdot_unrolled(
    b: LoopBuilder, u: str, v: str, unroll: int, width: int, acc_name: str
) -> None:
    """Unrolled dot product: the alvinn pattern.  With single precision
    and even-aligned bases, u[i+0]/u[i+1] share a double word: the natural
    pairings have compile-time-unknown relative banks."""
    s = b.recurrence(acc_name)
    stride = width * unroll
    total = None
    for k in range(unroll):
        x = b.load(u, offset=width * k, stride=stride, width=width)
        y = b.load(v, offset=width * k, stride=stride, width=width)
        p = b.fmul(x, y)
        total = p if total is None else b.fadd(total, p)
    s.close(b.fadd(total, s.use(distance=2)))
    b.live_out_value(s)


def _vector_update(b: LoopBuilder, dst: str, src: str, unroll: int, width: int) -> None:
    """dst[i] += eta * src[i], unrolled: alvinn's weight-update loop."""
    eta = b.invariant("eta")
    stride = width * unroll
    for k in range(unroll):
        w = b.load(dst, offset=width * k, stride=stride, width=width)
        g = b.load(src, offset=width * k, stride=stride, width=width)
        b.store(dst, b.fmadd(eta, g, w), offset=width * k, stride=stride, width=width)


def _stencil5(b: LoopBuilder, src: str, dst: str, row_dw: int = 256) -> Value:
    """A 5-point stencil update: the shallow-water/hydro shape."""
    c = b.load(src, offset=0, stride=DW)
    n = b.load(src, offset=-row_dw * DW, stride=DW)
    s_ = b.load(src, offset=row_dw * DW, stride=DW)
    e = b.load(src, offset=DW, stride=DW)
    w = b.load(src, offset=-DW, stride=DW)
    a1, a2 = b.invariant("a1"), b.invariant("a2")
    horiz = b.fmul(a1, b.fadd(e, w))
    vert = b.fmul(a2, b.fadd(n, s_))
    out = b.fadd(b.fadd(horiz, vert), c)
    b.store(dst, out, offset=0, stride=DW)
    return out


# ----------------------------------------------------------------------
# Per-benchmark corpora
# ----------------------------------------------------------------------
def _alvinn(machine: MachineDescription) -> Benchmark:
    loops = []
    b = LoopBuilder("alvinn_sdot", machine=machine, trip_count=1200, weight=0.55)
    _sdot_unrolled(b, "v", "u", unroll=4, width=SP, acc_name="s")
    b.set_parity("v", 0)
    b.set_parity("u", 0)
    loops.append(b.build())

    b = LoopBuilder("alvinn_update", machine=machine, trip_count=1200, weight=0.45)
    _vector_update(b, "w", "g", unroll=4, width=SP)
    b.set_parity("w", 0)
    b.set_parity("g", 0)
    loops.append(b.build())
    return Benchmark("alvinn", loops)


def _mdl_force_loop(
    machine: MachineDescription, name: str, width: int, trip: int, weight: float
) -> Loop:
    """The molecular-dynamics force loop: ~95 operations, 16 memory
    references (some indirect through the neighbour list), dominated by
    floating-point arithmetic with a divide chain for r**-k terms."""
    b = LoopBuilder(name, machine=machine, trip_count=trip, weight=weight)
    stride = 3 * width
    # Own-particle coordinates: direct; neighbour coordinates: indirect.
    own = [b.load("pos", offset=k * width, stride=stride, width=width) for k in range(3)]
    neigh = [b.load("npos", offset=None, width=width) for _ in range(3)]
    cut1, cut2 = b.invariant("cut1"), b.invariant("cut2")
    sw, cc = b.invariant("sw"), b.invariant("cc")
    deltas = [b.fsub(o, n) for o, n in zip(own, neigh)]
    r2 = None
    for d in deltas:
        sq = b.fmul(d, d)
        r2 = sq if r2 is None else b.fadd(r2, sq)
    rinv2 = b.fdiv(sw, r2)
    rinv6 = b.fmul(b.fmul(rinv2, rinv2), rinv2)
    # Lennard-Jones term and cutoff select.
    lj = b.fmul(rinv6, b.fsub(rinv6, cut1))
    inside = b.fcmp(r2, cut2)
    scale = b.select(inside, lj, cc)
    # Expand into per-axis forces with accumulation and plenty of
    # arithmetic (virial, energy, shifted potentials) to reach the
    # reported ~95-operation body.
    energy = b.recurrence("energy")
    virial = b.recurrence("virial")
    force_terms = []
    for axis, d in enumerate(deltas):
        # A self-contained chain per axis: intermediates live briefly.
        f = b.fmul(scale, d)
        f2 = b.fmadd(f, sw, b.fmul(f, cc))
        smooth = b.fmadd(f2, sw, b.fmul(f2, f2))
        f3 = b.fadd(f2, b.fmul(smooth, cc))
        # Switching-function polish, still per-axis and immediately consumed.
        g = b.fmadd(f3, cc, b.fmul(f3, f3))
        f4 = b.fadd(f3, b.fmul(g, sw))
        force_terms.append(f4)
        old = b.load("force", offset=axis * width, stride=stride, width=width)
        b.store("force", b.fadd(old, f4), offset=axis * width, stride=stride, width=width)
    vsum = None
    for d, f in zip(deltas, force_terms):
        term = b.fmul(d, f)
        vsum = term if vsum is None else b.fadd(vsum, term)
    epot = b.fmul(scale, b.fmadd(rinv6, sw, cc))
    # Tail correction: short local Horner chains, evaluated in parallel
    # (no value threads the whole body).
    tail1 = b.fmadd(epot, sw, b.fmul(epot, epot))
    tail2 = b.fmadd(tail1, cc, b.fmul(tail1, sw))
    extra = b.fmadd(tail2, tail1, b.fmul(tail2, cc))
    # Table interpolation of the shifted-force correction: two table loads
    # plus two more neighbour-list indirections (16 memory refs total,
    # matching the reported loop).
    t0 = b.load("ftab", offset=0, stride=2 * width, width=width)
    t1 = b.load("ftab", offset=width, stride=2 * width, width=width)
    corr = b.fmadd(b.fsub(t1, t0), r2, t0)
    nv0 = b.load("nvel", offset=None, width=width)
    nv1 = b.load("nvel", offset=None, width=width)
    kin = b.fmadd(nv0, nv0, b.fmul(nv1, nv1))
    blend = b.fmadd(corr, sw, b.fmul(kin, cc))
    blend2 = b.fmadd(blend, cc, b.fmul(blend, blend))
    blend3 = b.fmadd(blend2, sw, b.fmul(blend2, corr))
    energy.close(b.fadd(b.fadd(epot, b.fadd(extra, blend3)), energy.use(distance=2)))
    virial.close(b.fadd(vsum, virial.use(distance=2)))
    b.live_out_value(energy)
    b.live_out_value(virial)
    return b.build()


def _mdljdp2(machine: MachineDescription) -> Benchmark:
    return Benchmark(
        "mdljdp2", [_mdl_force_loop(machine, "mdljdp2_force", DW, 500, 1.0)]
    )


def _mdljsp2(machine: MachineDescription) -> Benchmark:
    return Benchmark(
        "mdljsp2", [_mdl_force_loop(machine, "mdljsp2_force", SP, 500, 1.0)]
    )


def _tomcatv(machine: MachineDescription) -> Benchmark:
    loops = []
    # The big mesh-generation loop: wide 9-point stencils over two fields.
    b = LoopBuilder("tomcatv_main", machine=machine, trip_count=300, weight=0.7)
    row = 257 * DW
    fields = {}
    for f in ("xf", "yf"):
        fields[f] = {
            "c": b.load(f, offset=0, stride=DW),
            "e": b.load(f, offset=DW, stride=DW),
            "w": b.load(f, offset=-DW, stride=DW),
            "n": b.load(f, offset=row, stride=DW),
            "s": b.load(f, offset=-row, stride=DW),
            "ne": b.load(f, offset=row + DW, stride=DW),
            "sw": b.load(f, offset=-row - DW, stride=DW),
        }
    outs = []
    for f in ("xf", "yf"):
        v = fields[f]
        xx = b.fmul(b.invariant("half"), b.fsub(v["e"], v["w"]))
        yy = b.fmul(b.invariant("half"), b.fsub(v["n"], v["s"]))
        xy = b.fmul(b.invariant("quarter"), b.fsub(v["ne"], v["sw"]))
        a = b.fmadd(xx, xx, b.fmul(yy, yy))
        bb = b.fmadd(yy, xy, b.fmul(xx, xy))
        c = b.fmadd(xy, xy, b.fmul(xx, yy))
        rhs = b.fmadd(a, v["e"], b.fmadd(c, v["n"], b.fmul(bb, v["ne"])))
        rhs2 = b.fmadd(a, v["w"], b.fmadd(c, v["s"], b.fmul(bb, v["sw"])))
        res = b.fsub(b.fadd(rhs, rhs2), b.fmul(b.invariant("two"), v["c"]))
        outs.append(res)
        b.store(f + "r", res, offset=0, stride=DW)
    err = b.fmadd(outs[0], outs[0], b.fmul(outs[1], outs[1]))
    rmax = b.recurrence("rmax")
    cmp = b.fcmp(rmax.use(), err)
    rmax.close(b.select(cmp, err, rmax.use()))
    b.live_out_value(rmax)
    loops.append(b.build())

    # SOR-style relaxation sweep with a carried dependence.
    b = LoopBuilder("tomcatv_relax", machine=machine, trip_count=300, weight=0.3)
    x = b.recurrence("x")
    r = b.load("rx", offset=0, stride=DW)
    d = b.load("dd", offset=0, stride=DW)
    x.close(b.fmadd(b.fsub(r, x.use()), d, x.use()))
    b.store("xout", x, offset=0, stride=DW)
    b.live_out_value(x)
    loops.append(b.build())
    return Benchmark("tomcatv", loops)


def _ora(machine: MachineDescription) -> Benchmark:
    # Ray tracing through optical surfaces: divide/sqrt chains, almost no
    # memory traffic.
    b = LoopBuilder("ora_trace", machine=machine, trip_count=800, weight=1.0)
    dirx = b.load("ray", offset=0, stride=4 * DW)
    diry = b.load("ray", offset=DW, stride=4 * DW)
    curv = b.invariant("curv")
    dot = b.fmadd(dirx, dirx, b.fmul(diry, diry))
    disc = b.fsub(b.invariant("one"), b.fmul(curv, dot))
    root = b.fsqrt(disc)
    denom = b.fadd(b.invariant("one"), root)
    t = b.fdiv(b.fmul(curv, dot), denom)
    newx = b.fmadd(t, dirx, b.invariant("ox"))
    newy = b.fmadd(t, diry, b.invariant("oy"))
    norm = b.fsqrt(b.fmadd(newx, newx, b.fmul(newy, newy)))
    b.store("out", b.fdiv(newx, norm), offset=0, stride=2 * DW)
    b.store("out", b.fdiv(newy, norm), offset=DW, stride=2 * DW)
    return Benchmark("ora", [b.build()])


def _ear(machine: MachineDescription) -> Benchmark:
    loops = []
    # Second-order IIR filter bank: carried at distances 1 and 2.
    b = LoopBuilder("ear_iir", machine=machine, trip_count=900, weight=0.6)
    y = b.recurrence("y")
    x = b.load("x", offset=0, stride=DW)
    a1, a2 = b.invariant("a1"), b.invariant("a2")
    acc = b.fmadd(a1, y.use(distance=1), b.fmul(a2, y.use(distance=2)))
    y.close(b.fadd(x, acc))
    b.store("y", y, offset=0, stride=DW)
    b.live_out_value(y)
    loops.append(b.build())

    # Hair-cell stage: pointwise nonlinearity (polynomial + select).
    b = LoopBuilder("ear_haircell", machine=machine, trip_count=900, weight=0.4)
    v = b.load("v", offset=0, stride=DW)
    c0, c1, c2 = b.invariant("c0"), b.invariant("c1"), b.invariant("c2")
    nl = b.fmadd(v, b.fmadd(v, c2, c1), c0)
    pos = b.fcmp(b.invariant("zero"), v)
    b.store("o", b.select(pos, nl, b.invariant("rest")), offset=0, stride=DW)
    loops.append(b.build())
    return Benchmark("ear", loops)


def _swm256(machine: MachineDescription) -> Benchmark:
    loops = []
    names = ("calc1", "calc2", "calc3")
    weights = (0.35, 0.4, 0.25)
    for name, weight in zip(names, weights):
        b = LoopBuilder(f"swm_{name}", machine=machine, trip_count=256, weight=weight)
        _stencil5(b, "u", "unew")
        _stencil5(b, "v", "vnew")
        loops.append(b.build())
    return Benchmark("swm256", loops)


def _su2cor(machine: MachineDescription) -> Benchmark:
    loops = []
    # SU(2) link products: small complex matrix multiplies (reductions).
    b = LoopBuilder("su2cor_gemm", machine=machine, trip_count=128, weight=0.6)
    accr = b.recurrence("accr")
    acci = b.recurrence("acci")
    ar = b.load("a", offset=0, stride=2 * DW)
    ai = b.load("a", offset=DW, stride=2 * DW)
    br = b.load("bm", offset=0, stride=2 * DW)
    bi = b.load("bm", offset=DW, stride=2 * DW)
    prodr = b.fsub(b.fmul(ar, br), b.fmul(ai, bi))
    prodi = b.fmadd(ar, bi, b.fmul(ai, br))
    accr.close(b.fadd(prodr, accr.use(distance=2)))
    acci.close(b.fadd(prodi, acci.use(distance=2)))
    b.live_out_value(accr)
    b.live_out_value(acci)
    loops.append(b.build())

    b = LoopBuilder("su2cor_update", machine=machine, trip_count=128, weight=0.4)
    g = b.load("gauge", offset=0, stride=DW)
    s = b.load("stpl", offset=0, stride=DW)
    beta = b.invariant("beta")
    b.store("gauge", b.fmadd(beta, s, g), offset=0, stride=DW)
    loops.append(b.build())
    return Benchmark("su2cor", loops)


def _hydro2d(machine: MachineDescription) -> Benchmark:
    loops = []
    for idx, weight in ((1, 0.5), (2, 0.5)):
        b = LoopBuilder(f"hydro2d_sweep{idx}", machine=machine, trip_count=402, weight=weight)
        row = 402 * DW
        d = b.load("den", offset=0, stride=DW)
        dn = b.load("den", offset=row, stride=DW)
        ds = b.load("den", offset=-row, stride=DW)
        u = b.load("vel", offset=0, stride=DW)
        ue = b.load("vel", offset=DW, stride=DW)
        flux = b.fmul(b.fsub(ue, u), b.invariant("dtdx"))
        src = b.fmul(b.fadd(dn, ds), b.invariant("gam"))
        out = b.fmadd(flux, d, src)
        b.store("dnew", out, offset=0, stride=DW)
        p = b.fmul(out, b.fmadd(out, b.invariant("g1"), b.invariant("g2")))
        b.store("press", p, offset=0, stride=DW)
        loops.append(b.build())
    return Benchmark("hydro2d", loops)


def _nasa7(machine: MachineDescription) -> Benchmark:
    loops = []
    # Matrix multiply kernel.
    b = LoopBuilder("nasa7_mxm", machine=machine, trip_count=128, weight=0.3)
    acc = b.recurrence("acc")
    x = b.load("ma", offset=0, stride=DW)
    y = b.load("mb", offset=0, stride=128 * DW)
    acc.close(b.fmadd(x, y, acc.use(distance=2)))
    b.live_out_value(acc)
    loops.append(b.build())

    # FFT butterfly.
    b = LoopBuilder("nasa7_fft", machine=machine, trip_count=512, weight=0.3)
    wr, wi = b.invariant("wr"), b.invariant("wi")
    xr = b.load("re", offset=0, stride=DW)
    xi = b.load("im", offset=0, stride=DW)
    yr = b.load("re", offset=256 * DW, stride=DW)
    yi = b.load("im", offset=256 * DW, stride=DW)
    tr = b.fsub(b.fmul(wr, yr), b.fmul(wi, yi))
    ti = b.fmadd(wr, yi, b.fmul(wi, yr))
    b.store("re", b.fadd(xr, tr), offset=0, stride=DW)
    b.store("im", b.fadd(xi, ti), offset=0, stride=DW)
    b.store("re", b.fsub(xr, tr), offset=256 * DW, stride=DW)
    b.store("im", b.fsub(xi, ti), offset=256 * DW, stride=DW)
    loops.append(b.build())

    # Gaussian elimination inner loop.
    b = LoopBuilder("nasa7_gauss", machine=machine, trip_count=128, weight=0.2)
    piv = b.invariant("piv")
    rowv = b.load("row", offset=0, stride=DW)
    tgt = b.load("tgt", offset=0, stride=DW)
    b.store("tgt", b.fmadd(piv, rowv, tgt), offset=0, stride=DW)
    loops.append(b.build())

    # Vortex/penta-diagonal solver with a recurrence.
    b = LoopBuilder("nasa7_gmtry", machine=machine, trip_count=128, weight=0.2)
    x = b.recurrence("x")
    rr = b.load("rhs", offset=0, stride=DW)
    dd = b.load("diag", offset=0, stride=DW)
    x.close(b.fmul(b.fsub(rr, x.use()), dd))
    b.store("sol", x, offset=0, stride=DW)
    b.live_out_value(x)
    loops.append(b.build())
    return Benchmark("nasa7", loops)


def _fpppp(machine: MachineDescription) -> Benchmark:
    # Two-electron integrals: an enormous mostly-straight-line FP body with
    # severe register pressure and relatively little memory traffic.
    b = LoopBuilder("fpppp_integrals", machine=machine, trip_count=60, weight=1.0)
    vals = [b.load("q", offset=DW * k, stride=12 * DW) for k in range(12)]
    live = list(vals)
    count = 0
    while count < 70:
        a = live[count % len(live)]
        c = live[(count * 7 + 3) % len(live)]
        if count % 9 == 4:
            nxt = b.fdiv(a, b.fadd(c, b.invariant("eps")))
        elif count % 3 == 0:
            nxt = b.fmadd(a, c, live[(count + 5) % len(live)])
        elif count % 3 == 1:
            nxt = b.fmul(a, c)
        else:
            nxt = b.fsub(a, c)
        live.append(nxt)
        count += 1
    for k in range(4):
        b.store("fock", live[-1 - k], offset=DW * k, stride=4 * DW)
    return Benchmark("fpppp", [b.build()])


def _doduc(machine: MachineDescription) -> Benchmark:
    loops = []
    # Thermo-hydraulic update with if-converted saturation clamps.
    b = LoopBuilder("doduc_state", machine=machine, trip_count=64, weight=0.5)
    h = b.load("h", offset=0, stride=DW)
    p = b.load("p", offset=0, stride=DW)
    rho = b.fdiv(p, b.fmadd(h, b.invariant("k1"), b.invariant("k2")))
    hi = b.fcmp(rho, b.invariant("rhomax"))
    clamped = b.select(hi, rho, b.invariant("rhomax"))
    lo = b.fcmp(b.invariant("rhomin"), clamped)
    clamped2 = b.select(lo, clamped, b.invariant("rhomin"))
    b.store("rho", clamped2, offset=0, stride=DW)
    loops.append(b.build())

    # Interpolation table walk (short trip counts).
    b = LoopBuilder("doduc_interp", machine=machine, trip_count=24, weight=0.5)
    x0 = b.load("tab", offset=0, stride=2 * DW)
    y0 = b.load("tab", offset=DW, stride=2 * DW)
    dx = b.fsub(b.invariant("xq"), x0)
    b.store("res", b.fmadd(dx, y0, b.invariant("y_base")), offset=0, stride=DW)
    loops.append(b.build())
    return Benchmark("doduc", loops)


def _wave5(machine: MachineDescription) -> Benchmark:
    loops = []
    # Field solve: stencil (favours one priority heuristic).
    b = LoopBuilder("wave5_field", machine=machine, trip_count=512, weight=0.4)
    _stencil5(b, "ex", "exn", row_dw=512)
    loops.append(b.build())

    # Particle push: gather + update + scatter (favours another).
    b = LoopBuilder("wave5_push", machine=machine, trip_count=512, weight=0.4)
    vx = b.load("pv", offset=0, stride=2 * DW)
    px = b.load("pp", offset=0, stride=2 * DW)
    eg = b.load("efield", offset=None)
    nvx = b.fmadd(eg, b.invariant("qm"), vx)
    b.store("pv", nvx, offset=0, stride=2 * DW)
    b.store("pp", b.fadd(px, nvx), offset=0, stride=2 * DW)
    loops.append(b.build())

    # Charge accumulation: reduction with indirect scatter.
    b = LoopBuilder("wave5_deposit", machine=machine, trip_count=512, weight=0.2)
    w = b.load("wgt", offset=0, stride=DW)
    rho = b.load("rho", offset=None)
    st = b.store("rho", b.fadd(rho, w), offset=None)
    b.alias(rho, st)
    loops.append(b.build())
    return Benchmark("wave5", loops)


def _spice2g6(machine: MachineDescription) -> Benchmark:
    loops = []
    # Sparse matrix LU inner loop: indirection, short trips, serial.
    b = LoopBuilder("spice_lu", machine=machine, trip_count=12, weight=0.6)
    aval = b.load("a", offset=None)
    pivv = b.invariant("piv")
    upd = b.load("u", offset=0, stride=DW)
    st = b.store("a", b.fmadd(pivv, upd, aval), offset=None)
    b.alias(aval, st)
    loops.append(b.build())

    # Device model evaluation: divides and selects, short trips.
    b = LoopBuilder("spice_model", machine=machine, trip_count=16, weight=0.4)
    vgs = b.load("v", offset=0, stride=DW)
    vth = b.invariant("vth")
    od = b.fsub(vgs, vth)
    on = b.fcmp(b.invariant("zero"), od)
    idrain = b.fmul(b.fmul(od, od), b.invariant("beta"))
    b.store("i", b.select(on, idrain, b.invariant("zero")), offset=0, stride=DW)
    loops.append(b.build())
    return Benchmark("spice2g6", loops)


_BENCHMARK_BUILDERS: Dict[str, Callable[[MachineDescription], Benchmark]] = {
    "spice2g6": _spice2g6,
    "doduc": _doduc,
    "mdljdp2": _mdljdp2,
    "wave5": _wave5,
    "tomcatv": _tomcatv,
    "ora": _ora,
    "alvinn": _alvinn,
    "ear": _ear,
    "mdljsp2": _mdljsp2,
    "swm256": _swm256,
    "su2cor": _su2cor,
    "hydro2d": _hydro2d,
    "nasa7": _nasa7,
    "fpppp": _fpppp,
}


def spec92_benchmark(name: str, machine: Optional[MachineDescription] = None) -> Benchmark:
    machine = machine if machine is not None else r8000()
    try:
        builder = _BENCHMARK_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown SPEC92fp benchmark {name!r}") from None
    return builder(machine)


def spec92_suite(machine: Optional[MachineDescription] = None) -> List[Benchmark]:
    """All 14 SPEC92 floating-point benchmark corpora."""
    machine = machine if machine is not None else r8000()
    return [_BENCHMARK_BUILDERS[name](machine) for name in SPEC92_FP_NAMES]
