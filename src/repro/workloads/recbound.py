"""Recurrence-bound stress kernels for the certified-bound analysis.

The Livermore and SPEC92 corpora never separate ``MinII`` from the true
feasibility threshold: every loop either achieves MinII outright or
misses it for search-budget reasons (the B&B backtrack cap), not because
the II is impossible.  That makes them useless for exercising
:mod:`repro.analyze` — a sound bound cannot lift above MinII on a loop
whose MinII is achievable.

These six kernels are built so the *combined* recurrence x resource
structure provably binds above MinII.  They are small numerical idioms,
not random graphs: coupled divide/sqrt recurrences interlock their
unpipelined repeat patterns, reduction fans force too many equal
dependence paths through one modulo slot, and an invariant-coefficient
farm oversubscribes the FP register file at every II the schedule
bounds admit.  Each docstring records the
intended certificate class and the certified bound's derivation; the
golden test pins the numbers.

All kernels pipeline cleanly on the R8000 model and simulate under the
functional simulator, so they ride the normal bench/verify/fuzz lanes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000

DW = 8  # bytes per double word


def kernel_coupled_division(machine: MachineDescription) -> Loop:
    """Coupled divide recurrence: ``x = a/y``, ``y' = c/x`` with ``y``
    carried two iterations.

    RecMII is 20 (circuit latency 40 over distance 2) and ResMII 28 (two
    14-cycle ``fpdiv`` repeat patterns), but the two divide runs must
    thread *around each other* modulo II while the dependence window
    pins their relative offset: every II in 28..33 is certified
    infeasible by offset exclusion, so the certified bound — and the
    achieved II — is 34.
    """
    b = LoopBuilder("rb_coupled_division", machine=machine, trip_count=200)
    a = b.load("a", offset=0, stride=DW)
    c = b.load("c", offset=0, stride=DW)
    y = b.recurrence("y")
    x = b.fdiv(a, y.use(distance=2))
    y.close(b.fdiv(c, x))
    b.store("o", x, offset=0, stride=DW)
    b.live_out_value(y)
    return b.build()


def kernel_div_sqrt(machine: MachineDescription) -> Loop:
    """Heron-style iteration: ``x = a/y``, ``y' = sqrt(x)``, ``y`` carried
    two back.

    The 14-cycle divide and 20-cycle square-root repeat patterns fill
    ResMII = 34 exactly; offset exclusion certifies 34..36 infeasible
    (the sqrt run cannot reach the single gap the divide run leaves),
    giving a certified bound of 37.
    """
    b = LoopBuilder("rb_div_sqrt", machine=machine, trip_count=200)
    a = b.load("a", offset=0, stride=DW)
    y = b.recurrence("y")
    x = b.fdiv(a, y.use(distance=2))
    y.close(b.fsqrt(x))
    b.store("o", x, offset=0, stride=DW)
    b.live_out_value(y)
    return b.build()


def kernel_diamond3(machine: MachineDescription) -> Loop:
    """Three-way diamond on a carried accumulator.

    The three interior adds sit on equal-weight paths of the critical
    circuit (RecMII 12), so at II = 12 all three are *rigid* in the same
    modulo slot — three FP issues against two FP units.  Slot conflict
    certifies 12 infeasible; the bound and the achieved II are 13.
    """
    b = LoopBuilder("rb_diamond3", machine=machine, trip_count=200)
    w = b.load("w", offset=0, stride=DW)
    u = b.recurrence("u")
    uv = b.fadd(u.use(distance=1), w)
    s1 = b.fadd(uv, b.invariant("k1"))
    s2 = b.fadd(uv, b.invariant("k2"))
    s3 = b.fadd(uv, b.invariant("k3"))
    t = b.fmadd(s1, s2, s3)
    u.close(t)
    b.store("o", t, offset=0, stride=DW)
    return b.build()


def kernel_fan5(machine: MachineDescription) -> Loop:
    """Five-way reduction fan on a carried accumulator.

    Five adds on equal-weight paths of a RecMII = 16 circuit: at 16 they
    are rigid in one slot (slot conflict), at 17 they are confined to a
    two-cycle window holding at most four FP issues (window density).
    Certified bound and achieved II: 18.
    """
    b = LoopBuilder("rb_fan5", machine=machine, trip_count=200)
    w = b.load("w", offset=0, stride=DW)
    u = b.recurrence("u")
    uv = b.fadd(u.use(distance=1), w)
    fans = [b.fadd(uv, b.invariant(f"k{i}")) for i in range(5)]
    t1 = b.fmadd(fans[0], fans[1], fans[2])
    t2 = b.fadd(fans[3], fans[4])
    t = b.fadd(t1, t2)
    u.close(t)
    b.store("o", t, offset=0, stride=DW)
    return b.build()


def kernel_reg_farm(machine: MachineDescription) -> Loop:
    """Invariant-coefficient farm on a divide/sqrt recurrence.

    Twenty-six loop-invariant coefficients each hold an FP register for
    the whole kernel, and the value lifetimes the dependences force (the
    divide chain plus the 26-add reduction) average out to five more
    registers per II cycle at II = 37 — 31 > 30, certified infeasible to
    allocate at 37 and 38.  The schedulability bound is 37 (same
    divide/sqrt offset exclusion as :func:`kernel_div_sqrt`), so the
    allocation bound is the binding one: spill-free pipelining needs
    II >= 39, and the restore-only invariant spilling the driver actually
    performs at 37 is certified forced, not a heuristic artifact.
    """
    b = LoopBuilder("rb_reg_farm", machine=machine, trip_count=200)
    a = b.load("a", offset=0, stride=DW)
    y = b.recurrence("y")
    x = b.fdiv(a, y.use(distance=2))
    y.close(b.fsqrt(x))
    s = x
    for i in range(26):
        s = b.fadd(s, b.invariant(f"k{i}"))
    b.store("o", s, offset=0, stride=DW)
    b.live_out_value(y)
    return b.build()


def kernel_stream_control(machine: MachineDescription) -> Loop:
    """Control: a plain stream kernel with no refined bound.

    ``o[i] = a[i]*s + c[i]`` achieves MinII = 2; the analyzer must report
    a certified bound *equal* to MinII here (certifying tightness, not
    inventing slack).  All three references provably share a memory bank,
    so the pairing bound (3) shows the Section 2.9 goal is unreachable
    below II = 3 — a report-only fact, not a schedulability limit.
    """
    b = LoopBuilder("rb_stream_control", machine=machine, trip_count=200)
    b.set_parity("a", 0)
    b.set_parity("c", 0)
    b.set_parity("o", 0)
    a = b.load("a", offset=0, stride=DW)
    c = b.load("c", offset=0, stride=DW)
    b.store("o", b.fmadd(a, b.invariant("s"), c), offset=0, stride=DW)
    return b.build()


_KERNELS: List[Callable[[MachineDescription], Loop]] = [
    kernel_coupled_division,
    kernel_div_sqrt,
    kernel_diamond3,
    kernel_fan5,
    kernel_reg_farm,
    kernel_stream_control,
]


def recbound_kernels(machine: Optional[MachineDescription] = None) -> List[Loop]:
    """All recurrence-bound stress kernels, in a fixed order."""
    machine = machine if machine is not None else r8000()
    return [kernel(machine) for kernel in _KERNELS]


def recbound_kernel(name: str, machine: Optional[MachineDescription] = None) -> Loop:
    """One kernel by loop name (e.g. ``rb_fan5``)."""
    for loop in recbound_kernels(machine):
        if loop.name == name:
            return loop
    known = ", ".join(loop.name for loop in recbound_kernels(machine))
    raise KeyError(f"unknown recbound kernel {name!r}; known: {known}")
