"""The 24 Livermore kernels as pipelinable loop bodies (Figure 6/7 workload).

Each kernel is hand-translated from the public Livermore Fortran Kernels
into the loop IR the pipeliners consume.  Translation conventions, matching
what the MIPSpro front end would have produced before software pipelining
(Section 2.1):

* scalar recurrences are scalar-replaced (e.g. kernel 5's ``x[i-1]``
  becomes a loop-carried virtual register rather than a memory reload);
* two-dimensional arrays are linearised with a fixed leading dimension
  (``ROW`` double words);
* ``exp`` in kernel 22 is expanded to a 4-term Horner polynomial — the
  R8000 has no exp instruction and the MIPSpro compiler would inline a
  polynomial or call a routine; the polynomial keeps the loop pipelinable
  and preserves the operation mix (documented substitution);
* gather/scatter subscripts (kernels 13, 14, 16) become indirect memory
  references with explicit alias groups where stores may collide.

Trip counts: the Livermore measurement harness runs each kernel at short,
medium and long vector lengths; ``SHORT_TRIPS``/``LONG_TRIPS`` give the
per-kernel loop lengths used by the Figure 6 experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000

ROW = 64  # leading dimension (double words) for linearised 2-D arrays
DW = 8  # bytes per double word

# Loop lengths from the Livermore harness (long) and its short runs.
LONG_TRIPS: Dict[int, int] = {
    1: 1001, 2: 101, 3: 1001, 4: 600, 5: 1000, 6: 64, 7: 995, 8: 100,
    9: 101, 10: 101, 11: 1000, 12: 1000, 13: 128, 14: 1001, 15: 101,
    16: 75, 17: 101, 18: 100, 19: 101, 20: 500, 21: 101, 22: 101,
    23: 100, 24: 1000,
}
SHORT_TRIPS: Dict[int, int] = {
    1: 27, 2: 15, 3: 27, 4: 24, 5: 27, 6: 8, 7: 21, 8: 14, 9: 15,
    10: 15, 11: 27, 12: 27, 13: 8, 14: 27, 15: 15, 16: 15, 17: 15,
    18: 14, 19: 15, 20: 24, 21: 15, 22: 15, 23: 14, 24: 27,
}


def _builder(name: str, kernel: int, machine: MachineDescription) -> LoopBuilder:
    return LoopBuilder(name, machine=machine, trip_count=LONG_TRIPS[kernel])


def kernel_01(machine: MachineDescription) -> Loop:
    """Hydro fragment: ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``."""
    b = _builder("lk01_hydro", 1, machine)
    q, r, t = b.invariant("q"), b.invariant("r"), b.invariant("t")
    z10 = b.load("z", offset=10 * DW, stride=DW)
    z11 = b.load("z", offset=11 * DW, stride=DW)
    y = b.load("y", offset=0, stride=DW)
    inner = b.fmadd(t, z11, b.fmul(r, z10))
    b.store("x", b.fmadd(y, inner, q), offset=0, stride=DW)
    return b.build()


def kernel_02(machine: MachineDescription) -> Loop:
    """ICCG inner loop: ``x'[k] = x[2k] - v[2k]*x[2k-1] - v[2k+1]*x[2k+1]``."""
    b = _builder("lk02_iccg", 2, machine)
    x0 = b.load("x", offset=0, stride=2 * DW)
    xm = b.load("x", offset=-DW, stride=2 * DW)
    xp = b.load("x", offset=DW, stride=2 * DW)
    v0 = b.load("v", offset=0, stride=2 * DW)
    v1 = b.load("v", offset=DW, stride=2 * DW)
    t = b.fsub(x0, b.fmul(v0, xm))
    b.store("xo", b.fsub(t, b.fmul(v1, xp)), offset=0, stride=DW)
    return b.build()


def kernel_03(machine: MachineDescription) -> Loop:
    """Inner product: ``q += z[k] * x[k]`` (interleaved 2-deep by the
    front end's recurrence interleaving, Section 2.1)."""
    b = _builder("lk03_inner", 3, machine)
    q = b.recurrence("q")
    z = b.load("z", offset=0, stride=DW)
    x = b.load("x", offset=0, stride=DW)
    q.close(b.fmadd(z, x, q.use(distance=2)))
    b.live_out_value(q)
    return b.build()


def kernel_04(machine: MachineDescription) -> Loop:
    """Banded linear equations inner reduction: strided dot product."""
    b = _builder("lk04_banded", 4, machine)
    q = b.recurrence("q")
    x = b.load("x", offset=0, stride=5 * DW)
    y = b.load("y", offset=0, stride=DW)
    q.close(b.fmadd(x, y, q.use(distance=2)))
    b.live_out_value(q)
    return b.build()


def kernel_05(machine: MachineDescription) -> Loop:
    """Tri-diagonal elimination: ``x[i] = z[i]*(y[i] - x[i-1])`` — the
    classic first-order recurrence (scalar-replaced)."""
    b = _builder("lk05_tridiag", 5, machine)
    x = b.recurrence("x")
    z = b.load("z", offset=0, stride=DW)
    y = b.load("y", offset=0, stride=DW)
    x.close(b.fmul(z, b.fsub(y, x.use())))
    b.store("xout", x, offset=0, stride=DW)
    b.live_out_value(x)
    return b.build()


def kernel_06(machine: MachineDescription) -> Loop:
    """General linear recurrence (inner k loop): ``w += b[k] * wprev[k]``.

    The ``w[i-k-1]`` gather walks backward through already-computed
    elements; within the inner loop it is a plain descending stream.
    """
    b = _builder("lk06_linrec", 6, machine)
    w = b.recurrence("w")
    bb = b.load("b", offset=0, stride=DW)
    wp = b.load("wprev", offset=0, stride=-DW)
    w.close(b.fmadd(bb, wp, w.use()))
    b.live_out_value(w)
    return b.build()


def kernel_07(machine: MachineDescription) -> Loop:
    """Equation of state fragment: wide expression, no recurrence."""
    b = _builder("lk07_eos", 7, machine)
    q, r, t = b.invariant("q"), b.invariant("r"), b.invariant("t")
    u0 = b.load("u", offset=0, stride=DW)
    u1 = b.load("u", offset=1 * DW, stride=DW)
    u2 = b.load("u", offset=2 * DW, stride=DW)
    u3 = b.load("u", offset=3 * DW, stride=DW)
    u4 = b.load("u", offset=4 * DW, stride=DW)
    u5 = b.load("u", offset=5 * DW, stride=DW)
    u6 = b.load("u", offset=6 * DW, stride=DW)
    z = b.load("z", offset=0, stride=DW)
    y = b.load("y", offset=0, stride=DW)
    inner1 = b.fmadd(r, z, y)
    inner2 = b.fmadd(r, b.fmadd(r, u2, u1), u3)
    inner3 = b.fmadd(q, b.fmadd(q, u4, u5), u6)
    total = b.fmadd(t, b.fmadd(t, inner3, inner2), b.fmadd(r, inner1, u0))
    b.store("x", total, offset=0, stride=DW)
    return b.build()


def kernel_08(machine: MachineDescription) -> Loop:
    """ADI integration fragment: two result arrays from three input
    stencils — a large, parallel loop body."""
    b = _builder("lk08_adi", 8, machine)
    a11, a12, a13 = b.invariant("a11"), b.invariant("a12"), b.invariant("a13")
    a21, a22, a23 = b.invariant("a21"), b.invariant("a22"), b.invariant("a23")
    sig, mu = b.invariant("sig"), b.invariant("mu")
    results = []
    for field in ("u1", "u2", "u3"):
        lo = b.load(field, offset=-DW, stride=DW)
        mid = b.load(field, offset=0, stride=DW)
        hi = b.load(field, offset=DW, stride=DW)
        d = b.fsub(hi, lo)
        second = b.fsub(b.fadd(hi, lo), b.fmul(mid, sig))
        results.append((mid, d, second))
    (m1, d1, s1), (m2, d2, s2), (m3, d3, s3) = results
    du1 = b.fmadd(a11, d1, b.fmadd(a12, d2, b.fmul(a13, d3)))
    du2 = b.fmadd(a21, s1, b.fmadd(a22, s2, b.fmul(a23, s3)))
    b.store("u1out", b.fmadd(mu, du1, m1), offset=0, stride=DW)
    b.store("u2out", b.fmadd(sig, du2, m2), offset=0, stride=DW)
    b.store("u3out", b.fmadd(mu, b.fadd(du1, du2), m3), offset=0, stride=DW)
    return b.build()


def kernel_09(machine: MachineDescription) -> Loop:
    """Integrate predictors: a 10-term fused-multiply-add fan-in."""
    b = _builder("lk09_predict", 9, machine)
    acc = None
    for k in range(10):
        coeff = b.invariant(f"dm{k}")
        px = b.load("px", offset=(k + 3) * DW, stride=13 * DW)
        acc = b.fmul(coeff, px) if acc is None else b.fmadd(coeff, px, acc)
    b.store("px", acc, offset=0, stride=13 * DW)
    return b.build()


def kernel_10(machine: MachineDescription) -> Loop:
    """Difference predictors: serial chain of differences through the
    predictor table — long intra-iteration chain, many memory refs."""
    b = _builder("lk10_diffpred", 10, machine)
    ar = b.load("cx", offset=4 * DW, stride=13 * DW)
    prev = ar
    for k in range(1, 7):
        px = b.load("px", offset=(k + 3) * DW, stride=13 * DW)
        cur = b.fsub(prev, px)
        b.store("px", prev, offset=(k + 3) * DW, stride=13 * DW)
        prev = cur
    b.store("px", prev, offset=11 * DW, stride=13 * DW)
    return b.build()


def kernel_11(machine: MachineDescription) -> Loop:
    """First sum: ``x[k] = x[k-1] + y[k]`` (scalar-replaced partial sum)."""
    b = _builder("lk11_firstsum", 11, machine)
    s = b.recurrence("s")
    y = b.load("y", offset=0, stride=DW)
    s.close(b.fadd(s.use(), y))
    b.store("x", s, offset=0, stride=DW)
    b.live_out_value(s)
    return b.build()


def kernel_12(machine: MachineDescription) -> Loop:
    """First difference: ``x[k] = y[k+1] - y[k]``."""
    b = _builder("lk12_firstdiff", 12, machine)
    y1 = b.load("y", offset=DW, stride=DW)
    y0 = b.load("y", offset=0, stride=DW)
    b.store("x", b.fsub(y1, y0), offset=0, stride=DW)
    return b.build()


def kernel_13(machine: MachineDescription) -> Loop:
    """2-D particle in cell: indirect gathers and a scatter update."""
    b = _builder("lk13_pic2d", 13, machine)
    p1 = b.load("p", offset=0, stride=4 * DW)
    p2 = b.load("p", offset=DW, stride=4 * DW)
    i1 = b.iadd(p1, b.invariant("grid_base1"))
    j1 = b.iadd(p2, b.invariant("grid_base2"))
    bgather = b.load("bfield", offset=None)
    cgather = b.load("cfield", offset=None)
    newp1 = b.fadd(p1, b.fadd(bgather, b.invariant("dt1")))
    newp2 = b.fadd(p2, b.fadd(cgather, b.invariant("dt2")))
    b.store("p", newp1, offset=0, stride=4 * DW)
    b.store("p", newp2, offset=DW, stride=4 * DW)
    ygather = b.load("ycell", offset=None)
    updated = b.fadd(ygather, b.invariant("one"))
    scatter = b.store("ycell", updated, offset=None)
    b.alias(ygather, scatter)
    return b.build()


def kernel_14(machine: MachineDescription) -> Loop:
    """1-D particle in cell: gather, update, scatter-accumulate."""
    b = _builder("lk14_pic1d", 14, machine)
    grd = b.load("grd", offset=0, stride=DW)
    ix = b.iadd(grd, b.invariant("base"))
    vx = b.load("vx", offset=0, stride=DW)
    ex_g = b.load("ex", offset=None)
    dex = b.fadd(ex_g, b.invariant("flx"))
    newvx = b.fadd(vx, dex)
    b.store("vx", newvx, offset=0, stride=DW)
    xi = b.fadd(newvx, b.fmul(dex, b.invariant("xi_coef")))
    b.store("xx", xi, offset=0, stride=DW)
    rho = b.load("rh", offset=None)
    scatter = b.store("rh", b.fadd(rho, b.invariant("chg")), offset=None)
    b.alias(rho, scatter)
    return b.build()


def kernel_15(machine: MachineDescription) -> Loop:
    """Casual Fortran (hydro-like conditional updates), if-converted."""
    b = _builder("lk15_casual", 15, machine)
    vy = b.load("vy", offset=0, stride=DW)
    vh = b.load("vh", offset=0, stride=DW)
    vf = b.load("vf", offset=0, stride=DW)
    vg = b.load("vg", offset=0, stride=DW)
    cmp1 = b.fcmp(vy, vh)
    t1 = b.select(cmp1, vh, vy)
    cmp2 = b.fcmp(vf, vg)
    t2 = b.select(cmp2, vg, vf)
    r = b.fmul(t1, t2)
    s = b.fdiv(b.fadd(t1, t2), b.fsub(r, b.invariant("rr")))
    b.store("vs", s, offset=0, stride=DW)
    return b.build()


def kernel_16(machine: MachineDescription) -> Loop:
    """Monte Carlo search (if-converted inner probe of the zone table)."""
    b = _builder("lk16_monte", 16, machine)
    zone = b.load("zone", offset=None)
    plan = b.load("plan", offset=0, stride=DW)
    diff = b.fsub(plan, zone)
    cmp = b.fcmp(diff, b.invariant("zero"))
    m = b.recurrence("m")
    k2 = b.recurrence("k2")
    m.close(b.select(cmp, b.fadd(m.use(), b.invariant("one")), m.use()))
    k2.close(b.select(cmp, k2.use(), b.fadd(k2.use(), b.invariant("one"))))
    b.live_out_value(m)
    b.live_out_value(k2)
    return b.build()


def kernel_17(machine: MachineDescription) -> Loop:
    """Implicit conditional computation: a recurrence through selects."""
    b = _builder("lk17_implicit", 17, machine)
    scale = b.invariant("scale")
    xnm = b.recurrence("xnm")
    vlr = b.load("vlr", offset=0, stride=DW)
    vxne = b.fmul(vlr, scale)
    cmp = b.fcmp(xnm.use(), vxne)
    picked = b.select(cmp, vxne, xnm.use())
    xnm.close(b.fadd(picked, b.load("vxnd", offset=0, stride=DW)))
    b.store("ve3", xnm, offset=0, stride=DW)
    b.live_out_value(xnm)
    return b.build()


def kernel_18(machine: MachineDescription) -> Loop:
    """2-D explicit hydrodynamics fragment: wide stencil updates of two
    fields — the big parallel loop body of the suite."""
    b = _builder("lk18_hydro2d", 18, machine)
    s, t = b.invariant("s"), b.invariant("t")
    row = ROW * DW

    def stencil(base: str):
        c = b.load(base, offset=0, stride=DW)
        n = b.load(base, offset=-row, stride=DW)
        sgn = b.load(base, offset=row, stride=DW)
        w = b.load(base, offset=-DW, stride=DW)
        return c, n, sgn, w

    za_c, za_n, za_s, za_w = stencil("za")
    zb_c, zb_n, zb_s, zb_w = stencil("zb")
    zu_c = b.load("zu", offset=0, stride=DW)
    zv_c = b.load("zv", offset=0, stride=DW)
    zr = b.fmadd(s, b.fsub(za_n, za_s), za_c)
    zz = b.fmadd(t, b.fsub(zb_w, zb_c), zb_n)
    new_zu = b.fmadd(s, b.fmul(zr, b.fsub(za_c, za_w)), zu_c)
    new_zv = b.fmadd(t, b.fmul(zz, b.fsub(zb_s, zb_c)), zv_c)
    b.store("zuout", new_zu, offset=0, stride=DW)
    b.store("zvout", new_zv, offset=0, stride=DW)
    zrh = b.fmadd(s, new_zu, za_c)
    zzh = b.fmadd(t, new_zv, zb_c)
    b.store("zrout", zrh, offset=0, stride=DW)
    b.store("zzout", zzh, offset=0, stride=DW)
    return b.build()


def kernel_19(machine: MachineDescription) -> Loop:
    """General linear recurrence: ``stb5 = sa[k] + stb5*sb[k]``."""
    b = _builder("lk19_linrec2", 19, machine)
    stb5 = b.recurrence("stb5")
    sa = b.load("sa", offset=0, stride=DW)
    sb = b.load("sb", offset=0, stride=DW)
    stb5.close(b.fmadd(stb5.use(), sb, sa))
    b.store("stb", stb5, offset=0, stride=DW)
    b.live_out_value(stb5)
    return b.build()


def kernel_20(machine: MachineDescription) -> Loop:
    """Discrete ordinates transport: a recurrence through a divide —
    RecMII is dominated by the unpipelined divider."""
    b = _builder("lk20_ordinates", 20, machine)
    xx = b.recurrence("xx")
    y = b.load("y", offset=0, stride=DW)
    g = b.load("g", offset=0, stride=DW)
    dk = b.invariant("dk")
    di = b.fsub(y, b.fdiv(g, b.fadd(xx.use(), dk)))
    xx.close(b.fmadd(di, b.invariant("dt"), xx.use()))
    b.store("xxout", xx, offset=0, stride=DW)
    b.live_out_value(xx)
    return b.build()


def kernel_21(machine: MachineDescription) -> Loop:
    """Matrix * matrix product inner loop: ``px += vh[k]*cx[k]``."""
    b = _builder("lk21_matmul", 21, machine)
    px = b.recurrence("px")
    vh = b.load("vh", offset=0, stride=DW)
    cx = b.load("cx", offset=0, stride=ROW * DW)
    px.close(b.fmadd(vh, cx, px.use(distance=2)))
    b.live_out_value(px)
    return b.build()


def kernel_22(machine: MachineDescription) -> Loop:
    """Planckian distribution: ``y = u/v; w = x/(exp(y)-1)`` with exp
    expanded to a 4-term Horner polynomial (documented substitution)."""
    b = _builder("lk22_planck", 22, machine)
    u = b.load("u", offset=0, stride=DW)
    v = b.load("v", offset=0, stride=DW)
    x = b.load("x", offset=0, stride=DW)
    y = b.fdiv(u, v)
    c1, c2, c3 = b.invariant("c1"), b.invariant("c2"), b.invariant("c3")
    expy = b.fmadd(y, b.fmadd(y, b.fmadd(y, c3, c2), c1), b.invariant("one"))
    b.store("y", y, offset=0, stride=DW)
    b.store("w", b.fdiv(x, b.fsub(expy, b.invariant("one"))), offset=0, stride=DW)
    return b.build()


def kernel_23(machine: MachineDescription) -> Loop:
    """2-D implicit hydrodynamics: the update of ``za[j][k]`` reads the
    element stored on the previous iteration — a loop-carried memory
    recurrence the dependence analyser must find."""
    b = _builder("lk23_implhydro", 23, machine)
    row = ROW * DW
    qa_n = b.load("za", offset=row, stride=DW)
    qa_s = b.load("za", offset=-row, stride=DW)
    qa_e = b.load("za", offset=DW, stride=DW)
    qa_w = b.load("za", offset=-DW, stride=DW)  # stored last iteration
    zr = b.load("zr", offset=0, stride=DW)
    zb = b.load("zb", offset=0, stride=DW)
    zu = b.load("zu", offset=0, stride=DW)
    zv = b.load("zv", offset=0, stride=DW)
    zz = b.load("zz", offset=0, stride=DW)
    qa = b.fmadd(qa_n, zr, b.fmadd(qa_s, zb, b.fmadd(qa_e, zu, b.fmadd(qa_w, zv, zz))))
    old = b.load("za", offset=0, stride=DW)
    b.store("za", b.fmadd(b.invariant("f"), b.fsub(qa, old), old), offset=0, stride=DW)
    return b.build()


def kernel_24(machine: MachineDescription) -> Loop:
    """Location of the first minimum: compare/select recurrences carrying
    the running minimum and its index."""
    b = _builder("lk24_firstmin", 24, machine)
    xmin = b.recurrence("xmin")
    xindex = b.recurrence("xindex")
    x = b.load("x", offset=0, stride=DW)
    idx = b.load("idx", offset=0, stride=DW)
    cmp = b.fcmp(x, xmin.use())
    xmin.close(b.select(cmp, x, xmin.use()))
    xindex.close(b.select(cmp, idx, xindex.use()))
    b.live_out_value(xmin)
    b.live_out_value(xindex)
    return b.build()


KERNEL_BUILDERS: Dict[int, Callable[[MachineDescription], Loop]] = {
    1: kernel_01, 2: kernel_02, 3: kernel_03, 4: kernel_04, 5: kernel_05,
    6: kernel_06, 7: kernel_07, 8: kernel_08, 9: kernel_09, 10: kernel_10,
    11: kernel_11, 12: kernel_12, 13: kernel_13, 14: kernel_14, 15: kernel_15,
    16: kernel_16, 17: kernel_17, 18: kernel_18, 19: kernel_19, 20: kernel_20,
    21: kernel_21, 22: kernel_22, 23: kernel_23, 24: kernel_24,
}


def livermore_kernel(number: int, machine: Optional[MachineDescription] = None) -> Loop:
    """Build one Livermore kernel (1-24)."""
    machine = machine if machine is not None else r8000()
    try:
        builder = KERNEL_BUILDERS[number]
    except KeyError:
        raise ValueError(f"Livermore kernels are numbered 1..24, got {number}") from None
    return builder(machine)


def livermore_kernels(machine: Optional[MachineDescription] = None) -> List[Loop]:
    """All 24 kernels, in order."""
    machine = machine if machine is not None else r8000()
    return [KERNEL_BUILDERS[k](machine) for k in sorted(KERNEL_BUILDERS)]
