"""Random loop-body generation.

Used by the property-based test suite (any generated loop must pipeline to
a valid, functionally correct schedule) and by the scalability experiment
of Section 5 (largest schedulable loop: 116 operations for the heuristics
vs 61 for the ILP).

Loops are generated as layered expression DAGs: load leaves, arithmetic
interior, store roots, with optional first-order recurrences threading
accumulators through the body.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..ir.builder import LoopBuilder, Value
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000


@dataclass
class GeneratorConfig:
    """Shape parameters for random loops."""

    n_compute: int = 12  # arithmetic operations to generate
    n_streams: int = 4  # input memory streams
    n_stores: int = 2
    n_recurrences: int = 1
    p_fmadd: float = 0.25
    p_fdiv: float = 0.03
    p_indirect: float = 0.0  # fraction of loads through pointers
    trip_count: int = 100


def random_loop(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    machine: Optional[MachineDescription] = None,
    name: Optional[str] = None,
) -> Loop:
    """Generate a well-formed random loop body."""
    config = config or GeneratorConfig()
    machine = machine if machine is not None else r8000()
    rng = random.Random(seed)
    b = LoopBuilder(
        name or f"rand{seed}", machine=machine, trip_count=config.trip_count
    )

    values: List[Value] = []
    for k in range(config.n_streams):
        if rng.random() < config.p_indirect:
            values.append(b.load(f"ind{k}", offset=None))
        else:
            stride = rng.choice([8, 8, 8, 16, 4])
            width = 4 if stride == 4 else 8
            values.append(
                b.load(f"arr{k}", offset=rng.randrange(0, 4) * 8, stride=stride, width=width)
            )

    recs = []
    for r in range(config.n_recurrences):
        recs.append(b.recurrence(f"acc{r}"))

    def operand() -> Value:
        if values and rng.random() < 0.85:
            # Prefer recent values: realistic expression locality.
            idx = max(0, len(values) - 1 - rng.randrange(0, min(6, len(values))))
            return values[idx]
        return b.invariant(f"c{rng.randrange(0, 4)}")

    for _ in range(config.n_compute):
        roll = rng.random()
        if roll < config.p_fdiv:
            v = b.fdiv(operand(), operand())
        elif roll < config.p_fdiv + config.p_fmadd:
            v = b.fmadd(operand(), operand(), operand())
        else:
            v = rng.choice([b.fadd, b.fsub, b.fmul])(operand(), operand())
        values.append(v)

    for r, rec in enumerate(recs):
        # Close each accumulator over a distinct recent value; the carried
        # read makes this a genuine inter-iteration recurrence.
        feed = values[-(r + 1) if len(values) > r else -1]
        closed = b.fadd(feed, rec.use(distance=rng.choice([1, 1, 2])))
        rec.close(closed)
        b.live_out_value(rec)
        values.append(closed)

    used_for_store = rng.sample(values, k=min(config.n_stores, len(values)))
    for k, v in enumerate(used_for_store):
        b.store(f"out{k}", v, offset=0, stride=8)

    return b.build()


def scaling_series(
    sizes: List[int],
    seed: int = 7,
    machine: Optional[MachineDescription] = None,
) -> List[Loop]:
    """Loops of increasing size for the scalability experiment (§5).

    The series measures how far each *search* scales, so the loops must
    stay register-allocatable as they grow.  Large 1990s floating-point
    loop bodies overwhelmingly came from unrolling (Section 2.1), which is
    exactly the shape whose pressure stays constant per unrolled element —
    so sizes beyond ~32 operations are produced by unrolling a random base
    body, mirroring how the paper's 116-operation loop would have arisen.
    """
    from ..ir.transforms import unroll

    config = GeneratorConfig(
        n_compute=9,
        n_streams=3,
        n_stores=2,
        n_recurrences=1,
        p_fdiv=0.0,
        trip_count=2520,  # divisible by every unroll factor up to 12
    )
    base = random_loop(seed, config, machine, name="scalebase")
    loops = []
    for size in sizes:
        factor = max(1, round(size / base.n_ops))
        loop = unroll(base, factor) if factor > 1 else base
        loop.name = f"scale{size}"
        loops.append(loop)
    return loops
