"""Random loop-body generation.

Used by the property-based test suite (any generated loop must pipeline to
a valid, functionally correct schedule), by the scalability experiment
of Section 5 (largest schedulable loop: 116 operations for the heuristics
vs 61 for the ILP), and as the seed generator for the differential fuzzer
(:mod:`repro.fuzz`).

Loops are generated as layered expression DAGs: load leaves, arithmetic
interior, store roots, with optional first-order recurrences threading
accumulators through the body.  Generation is expressed as a
:class:`~repro.workloads.mutate.LoopSpec` (:func:`random_spec`) so the
fuzzer can mutate and serialise generated loops; :func:`random_loop` is
the historical entry point and simply builds the spec.

All randomness flows through one explicit :class:`random.Random` instance
per call (never module-level state), so equal seeds give byte-identical
loop IR across processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from .mutate import LoopSpec, OpSpec


@dataclass
class GeneratorConfig:
    """Shape parameters for random loops.

    Degenerate shapes are legal: negative counts clamp to zero, and a
    config with more recurrences than compute ops (or no streams at all)
    still yields a well-formed loop — the generator synthesises the
    minimum structure each recurrence close and the loop body need.
    """

    n_compute: int = 12  # arithmetic operations to generate
    n_streams: int = 4  # input memory streams
    n_stores: int = 2
    n_recurrences: int = 1
    p_fmadd: float = 0.25
    p_fdiv: float = 0.03
    p_indirect: float = 0.0  # fraction of loads through pointers
    trip_count: int = 100


def random_spec(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> LoopSpec:
    """Generate a random loop as a mutable, serialisable :class:`LoopSpec`.

    Draws from ``rng`` (or ``random.Random(seed)``) in exactly the order
    the historical ``random_loop`` did, so seeds keep producing the same
    loops.  The spec is well-formed by construction; it does not need
    :func:`~repro.workloads.mutate.normalize` unless subsequently mutated.
    """
    config = config or GeneratorConfig()
    rng = rng if rng is not None else random.Random(seed)
    n_streams = max(0, config.n_streams)
    n_compute = max(0, config.n_compute)
    n_stores = max(0, config.n_stores)
    n_recurrences = max(0, config.n_recurrences)

    ops: List[OpSpec] = []
    producers = 0
    for k in range(n_streams):
        if rng.random() < config.p_indirect:
            ops.append(OpSpec(kind="load", base=f"ind{k}", offset=None))
        else:
            stride = rng.choice([8, 8, 8, 16, 4])
            width = 4 if stride == 4 else 8
            ops.append(OpSpec(kind="load", base=f"arr{k}",
                              offset=rng.randrange(0, 4) * 8,
                              stride=stride, width=width))
        producers += 1

    def operand():
        if producers and rng.random() < 0.85:
            # Prefer recent values: realistic expression locality.
            idx = max(0, producers - 1 - rng.randrange(0, min(6, producers)))
            return ("val", idx)
        return ("inv", f"c{rng.randrange(0, 4)}")

    for _ in range(n_compute):
        roll = rng.random()
        if roll < config.p_fdiv:
            ops.append(OpSpec(kind="fdiv", srcs=(operand(), operand())))
        elif roll < config.p_fdiv + config.p_fmadd:
            ops.append(OpSpec(kind="fmadd", srcs=(operand(), operand(), operand())))
        else:
            kind = rng.choice(["fadd", "fsub", "fmul"])
            ops.append(OpSpec(kind=kind, srcs=(operand(), operand())))
        producers += 1

    if n_recurrences and producers == 0:
        # Degenerate shape (no streams, no compute): every close still
        # needs a feed value, so synthesise one.
        ops.append(OpSpec(kind="fadd", srcs=(("inv", "c0"), ("inv", "c1"))))
        producers += 1
    for r in range(n_recurrences):
        # Close each accumulator over a distinct recent value; the carried
        # read makes this a genuine inter-iteration recurrence.
        feed = producers - (r + 1) if producers > r else producers - 1
        ops.append(OpSpec(kind="close", srcs=(("val", feed),), rec=r,
                          distance=rng.choice([1, 1, 2])))
        producers += 1

    used_for_store = rng.sample(range(producers), k=min(n_stores, producers))
    for k, idx in enumerate(used_for_store):
        ops.append(OpSpec(kind="store", srcs=(("val", idx),),
                          base=f"out{k}", offset=0, stride=8))

    if not ops:
        # Fully degenerate config: emit the smallest observable loop.
        ops = [OpSpec(kind="load", base="arr0"),
               OpSpec(kind="store", srcs=(("val", 0),), base="out0")]

    return LoopSpec(
        name=name or f"rand{seed}",
        ops=tuple(ops),
        n_recs=n_recurrences,
        trip_count=config.trip_count,
    )


def random_loop(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    machine: Optional[MachineDescription] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Loop:
    """Generate a well-formed random loop body."""
    machine = machine if machine is not None else r8000()
    return random_spec(seed, config, name=name, rng=rng).build(machine)


def scaling_series(
    sizes: List[int],
    seed: int = 7,
    machine: Optional[MachineDescription] = None,
) -> List[Loop]:
    """Loops of increasing size for the scalability experiment (§5).

    The series measures how far each *search* scales, so the loops must
    stay register-allocatable as they grow.  Large 1990s floating-point
    loop bodies overwhelmingly came from unrolling (Section 2.1), which is
    exactly the shape whose pressure stays constant per unrolled element —
    so sizes beyond ~32 operations are produced by unrolling a random base
    body, mirroring how the paper's 116-operation loop would have arisen.
    """
    from ..ir.transforms import unroll

    config = GeneratorConfig(
        n_compute=9,
        n_streams=3,
        n_stores=2,
        n_recurrences=1,
        p_fdiv=0.0,
        trip_count=2520,  # divisible by every unroll factor up to 12
    )
    base = random_loop(seed, config, machine, name="scalebase")
    loops = []
    for size in sizes:
        factor = max(1, round(size / base.n_ops))
        loop = unroll(base, factor) if factor > 1 else base
        loop.name = f"scale{size}"
        loops.append(loop)
    return loops
