"""MILP solving: LP-relaxation branch-and-bound with time limits.

The solver mirrors what the paper's study needed from its "standard ILP
solving packages" (Section 3.3):

* hard per-solve *time limits*, returning the best incumbent found;
* *priority-guided branching* — "the priority order in which the ILP
  solver traverses the branch-and-bound tree is by far the most important
  factor affecting whether it could solve the problem";
* proven optimality when the search completes.

The linear relaxations are solved with scipy's HiGHS ``linprog``.  A
``scipy`` engine using :func:`scipy.optimize.milp` directly is provided for
cross-checking our branch-and-bound on small instances.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..obs import get_recorder
from .model import Model

INT_TOL = 1e-6


class Status(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven (time/node limit)
    INFEASIBLE = "infeasible"
    UNSOLVED = "unsolved"  # limit hit with no incumbent


@dataclass
class MILPResult:
    status: Status
    x: Optional[np.ndarray]
    objective: Optional[float]
    nodes: int = 0
    seconds: float = 0.0
    # Search-effort accounting, from both engines: total simplex (LP)
    # iterations, the final MIP gap ((incumbent - bound)/|incumbent|; 0.0
    # when optimality is proven, None with no incumbent), and which budget
    # stopped the search ("time", "nodes", scipy's undifferentiated
    # "budget", or None when it ran to completion).
    simplex_iterations: int = 0
    mip_gap: Optional[float] = None
    limit: Optional[str] = None

    @property
    def has_solution(self) -> bool:
        return self.x is not None

    def value(self, var) -> float:
        return float(self.x[var.index])


@dataclass
class SolverOptions:
    time_limit: float = 60.0
    max_nodes: int = 200_000
    # Variable indices in preferred branching order; unlisted variables
    # are branched on by maximum fractionality.
    branch_priority: Optional[Sequence[int]] = None
    engine: str = "bnb"  # "bnb" (ours) or "scipy" (HiGHS MILP)
    # Stop at the first integral solution (feasibility problems).
    first_solution: bool = False
    # Explore the ceil ("place it") branch first — effective for
    # time-indexed scheduling models driven by a priority order.
    branch_up_first: bool = False


def _solve_lp(model: Model, extra_bounds: Dict[int, Tuple[float, Optional[float]]]):
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays(extra_bounds)
    return optimize.linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )


def solve_milp(model: Model, options: Optional[SolverOptions] = None) -> MILPResult:
    options = options or SolverOptions()
    rec = get_recorder()
    with rec.span("ilp.solve", engine=options.engine, n_vars=model.n_vars):
        if options.engine == "scipy":
            result = _solve_with_scipy(model, options)
        else:
            result = _solve_with_bnb(model, options)
    if rec.enabled:
        rec.counter("ilp.solves")
        rec.counter("ilp.nodes", result.nodes)
        rec.counter("ilp.simplex_iters", result.simplex_iterations)
        if result.limit == "nodes":
            rec.counter("ilp.node_limit_hits")
        elif result.limit is not None:
            rec.counter("ilp.time_limit_hits")
        rec.event(
            "ilp.result",
            status=result.status.value,
            nodes=result.nodes,
            simplex_iters=result.simplex_iterations,
            mip_gap=result.mip_gap,
            limit=result.limit,
            seconds=result.seconds,
        )
    return result


def _solve_with_scipy(model: Model, options: SolverOptions) -> MILPResult:
    start = time.perf_counter()
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays(None)
    constraints = []
    if A_ub is not None:
        constraints.append(optimize.LinearConstraint(A_ub, -np.inf, b_ub))
    if A_eq is not None:
        constraints.append(optimize.LinearConstraint(A_eq, b_eq, b_eq))
    integrality = np.zeros(model.n_vars)
    for idx in model.integer_indices():
        integrality[idx] = 1
    lb = np.array([b[0] for b in bounds])
    ub = np.array([b[1] if b[1] is not None else np.inf for b in bounds])
    res = optimize.milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=optimize.Bounds(lb, ub),
        # The node limit is the *deterministic* budget: identical models
        # stop at identical search states regardless of machine load.  The
        # wall-clock limit stays as the hard backstop.
        options={"time_limit": options.time_limit, "node_limit": options.max_nodes},
    )
    elapsed = time.perf_counter() - start
    # HiGHS reports its node count and final gap on the result object;
    # older scipy builds may omit them, so degrade to safe defaults.
    nodes = int(getattr(res, "mip_node_count", 0) or 0)
    gap = getattr(res, "mip_gap", None)
    gap = float(gap) if gap is not None and math.isfinite(gap) else None
    # status 1 is scipy's undifferentiated iteration/time budget stop.
    limit = "budget" if res.status == 1 else None
    if res.status == 0:
        sign = 1.0 if model.minimize else -1.0
        return MILPResult(
            Status.OPTIMAL, res.x, sign * res.fun, nodes=nodes, seconds=elapsed,
            mip_gap=0.0 if gap is None else gap, limit=limit,
        )
    if res.x is not None:
        sign = 1.0 if model.minimize else -1.0
        return MILPResult(
            Status.FEASIBLE, res.x, sign * res.fun, nodes=nodes, seconds=elapsed,
            mip_gap=gap, limit=limit,
        )
    if res.status == 2:
        return MILPResult(Status.INFEASIBLE, None, None, nodes=nodes, seconds=elapsed)
    return MILPResult(
        Status.UNSOLVED, None, None, nodes=nodes, seconds=elapsed, limit=limit
    )


def _branch_variable(
    x: np.ndarray,
    integer_indices: Sequence[int],
    priority: Optional[Sequence[int]],
) -> Optional[int]:
    """Pick the variable to branch on: first fractional in priority order,
    else the most fractional integer variable."""
    if priority is not None:
        for idx in priority:
            frac = x[idx] - math.floor(x[idx] + INT_TOL)
            if frac > INT_TOL and frac < 1 - INT_TOL:
                return idx
    best, best_score = None, 0.0
    for idx in integer_indices:
        frac = x[idx] - math.floor(x[idx])
        score = min(frac, 1 - frac)
        if score > INT_TOL and score > best_score:
            best, best_score = idx, score
    return best


def _solve_with_bnb(model: Model, options: SolverOptions) -> MILPResult:
    """Depth-first branch-and-bound over LP relaxations."""
    start = time.perf_counter()
    integer_indices = model.integer_indices()
    sign = 1.0 if model.minimize else -1.0

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf  # in minimisation space
    nodes = 0
    simplex_iters = 0
    root_bound: Optional[float] = None  # root LP relaxation: global lower bound
    # Each stack entry: extra bound dict for this node.
    stack: List[Dict[int, Tuple[float, Optional[float]]]] = [{}]
    timed_out = False
    limit: Optional[str] = None

    while stack:
        if time.perf_counter() - start > options.time_limit:
            timed_out, limit = True, "time"
            break
        if nodes >= options.max_nodes:
            timed_out, limit = True, "nodes"
            break
        bounds = stack.pop()
        nodes += 1
        res = _solve_lp(model, bounds)
        simplex_iters += int(getattr(res, "nit", 0) or 0)
        if res.status != 0:
            continue  # infeasible or unbounded subproblem: prune
        lp_obj = res.fun  # minimisation space (to_arrays flips sign)
        if root_bound is None:
            root_bound = lp_obj
        if lp_obj >= incumbent_obj - 1e-9:
            continue  # bound prune
        x = res.x
        branch = _branch_variable(x, integer_indices, options.branch_priority)
        if branch is None:
            incumbent_x = np.round(x[:])
            # Keep continuous vars unrounded.
            for v in model.variables:
                if not v.integer:
                    incumbent_x[v.index] = x[v.index]
            incumbent_obj = lp_obj
            if options.first_solution:
                elapsed = time.perf_counter() - start
                return MILPResult(
                    Status.FEASIBLE, incumbent_x, sign * incumbent_obj,
                    nodes=nodes, seconds=elapsed,
                    simplex_iterations=simplex_iters,
                    mip_gap=_gap(incumbent_obj, root_bound),
                )
            continue
        value = x[branch]
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        down = dict(bounds)
        lo, hi = down.get(branch, (-math.inf, None))
        down[branch] = (lo, float(floor_v) if hi is None else min(hi, float(floor_v)))
        up = dict(bounds)
        lo, hi = up.get(branch, (-math.inf, None))
        up[branch] = (max(lo, float(ceil_v)), hi)
        # Depth-first; the stack top is explored next.  Scheduling models
        # do best placing the priority variable (ceil side) first;
        # otherwise explore the side nearer the LP value.
        if options.branch_up_first or value - floor_v > 0.5:
            stack.append(down)
            stack.append(up)
        else:
            stack.append(up)
            stack.append(down)

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        status = Status.UNSOLVED if timed_out else Status.INFEASIBLE
        return MILPResult(
            status, None, None, nodes=nodes, seconds=elapsed,
            simplex_iterations=simplex_iters, limit=limit,
        )
    status = Status.FEASIBLE if (timed_out or stack) else Status.OPTIMAL
    return MILPResult(
        status, incumbent_x, sign * incumbent_obj, nodes=nodes, seconds=elapsed,
        simplex_iterations=simplex_iters,
        mip_gap=0.0 if status is Status.OPTIMAL else _gap(incumbent_obj, root_bound),
        limit=limit if timed_out else None,
    )


def _gap(incumbent_obj: float, bound: Optional[float]) -> Optional[float]:
    """Relative MIP gap of an incumbent against a proven lower bound.

    The root LP relaxation is the bound our depth-first search carries, so
    this gap is conservative (an exhaustive solver would tighten it as the
    tree closes); ``None`` when no bound was ever established.
    """
    if bound is None:
        return None
    return max(0.0, (incumbent_obj - bound) / max(abs(incumbent_obj), 1e-9))
