"""MILP solving: LP-relaxation branch-and-bound with time limits.

The solver mirrors what the paper's study needed from its "standard ILP
solving packages" (Section 3.3):

* hard per-solve *time limits*, returning the best incumbent found;
* *priority-guided branching* — "the priority order in which the ILP
  solver traverses the branch-and-bound tree is by far the most important
  factor affecting whether it could solve the problem";
* proven optimality when the search completes.

The linear relaxations are solved with scipy's HiGHS ``linprog``.  A
``scipy`` engine using :func:`scipy.optimize.milp` directly is provided for
cross-checking our branch-and-bound on small instances.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .model import Model

INT_TOL = 1e-6


class Status(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven (time/node limit)
    INFEASIBLE = "infeasible"
    UNSOLVED = "unsolved"  # limit hit with no incumbent


@dataclass
class MILPResult:
    status: Status
    x: Optional[np.ndarray]
    objective: Optional[float]
    nodes: int = 0
    seconds: float = 0.0

    @property
    def has_solution(self) -> bool:
        return self.x is not None

    def value(self, var) -> float:
        return float(self.x[var.index])


@dataclass
class SolverOptions:
    time_limit: float = 60.0
    max_nodes: int = 200_000
    # Variable indices in preferred branching order; unlisted variables
    # are branched on by maximum fractionality.
    branch_priority: Optional[Sequence[int]] = None
    engine: str = "bnb"  # "bnb" (ours) or "scipy" (HiGHS MILP)
    # Stop at the first integral solution (feasibility problems).
    first_solution: bool = False
    # Explore the ceil ("place it") branch first — effective for
    # time-indexed scheduling models driven by a priority order.
    branch_up_first: bool = False


def _solve_lp(model: Model, extra_bounds: Dict[int, Tuple[float, Optional[float]]]):
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays(extra_bounds)
    return optimize.linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )


def solve_milp(model: Model, options: Optional[SolverOptions] = None) -> MILPResult:
    options = options or SolverOptions()
    if options.engine == "scipy":
        return _solve_with_scipy(model, options)
    return _solve_with_bnb(model, options)


def _solve_with_scipy(model: Model, options: SolverOptions) -> MILPResult:
    start = time.perf_counter()
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays(None)
    constraints = []
    if A_ub is not None:
        constraints.append(optimize.LinearConstraint(A_ub, -np.inf, b_ub))
    if A_eq is not None:
        constraints.append(optimize.LinearConstraint(A_eq, b_eq, b_eq))
    integrality = np.zeros(model.n_vars)
    for idx in model.integer_indices():
        integrality[idx] = 1
    lb = np.array([b[0] for b in bounds])
    ub = np.array([b[1] if b[1] is not None else np.inf for b in bounds])
    res = optimize.milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=optimize.Bounds(lb, ub),
        # The node limit is the *deterministic* budget: identical models
        # stop at identical search states regardless of machine load.  The
        # wall-clock limit stays as the hard backstop.
        options={"time_limit": options.time_limit, "node_limit": options.max_nodes},
    )
    elapsed = time.perf_counter() - start
    if res.status == 0:
        sign = 1.0 if model.minimize else -1.0
        return MILPResult(Status.OPTIMAL, res.x, sign * res.fun, seconds=elapsed)
    if res.x is not None:
        sign = 1.0 if model.minimize else -1.0
        return MILPResult(Status.FEASIBLE, res.x, sign * res.fun, seconds=elapsed)
    if res.status == 2:
        return MILPResult(Status.INFEASIBLE, None, None, seconds=elapsed)
    return MILPResult(Status.UNSOLVED, None, None, seconds=elapsed)


def _branch_variable(
    x: np.ndarray,
    integer_indices: Sequence[int],
    priority: Optional[Sequence[int]],
) -> Optional[int]:
    """Pick the variable to branch on: first fractional in priority order,
    else the most fractional integer variable."""
    if priority is not None:
        for idx in priority:
            frac = x[idx] - math.floor(x[idx] + INT_TOL)
            if frac > INT_TOL and frac < 1 - INT_TOL:
                return idx
    best, best_score = None, 0.0
    for idx in integer_indices:
        frac = x[idx] - math.floor(x[idx])
        score = min(frac, 1 - frac)
        if score > INT_TOL and score > best_score:
            best, best_score = idx, score
    return best


def _solve_with_bnb(model: Model, options: SolverOptions) -> MILPResult:
    """Depth-first branch-and-bound over LP relaxations."""
    start = time.perf_counter()
    integer_indices = model.integer_indices()
    sign = 1.0 if model.minimize else -1.0

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf  # in minimisation space
    nodes = 0
    # Each stack entry: extra bound dict for this node.
    stack: List[Dict[int, Tuple[float, Optional[float]]]] = [{}]
    timed_out = False

    while stack:
        if time.perf_counter() - start > options.time_limit or nodes >= options.max_nodes:
            timed_out = True
            break
        bounds = stack.pop()
        nodes += 1
        res = _solve_lp(model, bounds)
        if res.status != 0:
            continue  # infeasible or unbounded subproblem: prune
        lp_obj = res.fun  # minimisation space (to_arrays flips sign)
        if lp_obj >= incumbent_obj - 1e-9:
            continue  # bound prune
        x = res.x
        branch = _branch_variable(x, integer_indices, options.branch_priority)
        if branch is None:
            incumbent_x = np.round(x[:])
            # Keep continuous vars unrounded.
            for v in model.variables:
                if not v.integer:
                    incumbent_x[v.index] = x[v.index]
            incumbent_obj = lp_obj
            if options.first_solution:
                elapsed = time.perf_counter() - start
                return MILPResult(
                    Status.FEASIBLE, incumbent_x, sign * incumbent_obj,
                    nodes=nodes, seconds=elapsed,
                )
            continue
        value = x[branch]
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        down = dict(bounds)
        lo, hi = down.get(branch, (-math.inf, None))
        down[branch] = (lo, float(floor_v) if hi is None else min(hi, float(floor_v)))
        up = dict(bounds)
        lo, hi = up.get(branch, (-math.inf, None))
        up[branch] = (max(lo, float(ceil_v)), hi)
        # Depth-first; the stack top is explored next.  Scheduling models
        # do best placing the priority variable (ceil side) first;
        # otherwise explore the side nearer the LP value.
        if options.branch_up_first or value - floor_v > 0.5:
            stack.append(down)
            stack.append(up)
        else:
            stack.append(up)
            stack.append(down)

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        status = Status.UNSOLVED if timed_out else Status.INFEASIBLE
        return MILPResult(status, None, None, nodes=nodes, seconds=elapsed)
    status = Status.FEASIBLE if (timed_out or stack) else Status.OPTIMAL
    return MILPResult(status, incumbent_x, sign * incumbent_obj, nodes=nodes, seconds=elapsed)
