"""Integer linear programming substrate: model builder and MILP solvers."""

from .model import Constraint, Model, Sense, Var
from .solver import MILPResult, SolverOptions, Status, solve_milp

__all__ = [
    "Constraint",
    "MILPResult",
    "Model",
    "Sense",
    "SolverOptions",
    "Status",
    "Var",
    "solve_milp",
]
