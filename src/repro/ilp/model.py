"""A small integer-linear-programming modelling layer.

The MOST scheduler formulates modulo scheduling as an ILP and hands it "to
one of a number of standard ILP solving packages" (Section 1.2).  This
module is our stand-in for the modelling front of such a package: variables
with bounds and integrality, linear constraints, a linear objective, and a
conversion to the sparse arrays the LP engine consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Var:
    """A decision variable (identified by its index in the model)."""

    index: int
    name: str
    lb: float
    ub: Optional[float]
    integer: bool


@dataclass
class Constraint:
    coeffs: Dict[int, float]  # var index -> coefficient
    sense: Sense
    rhs: float
    name: str = ""


class Model:
    """An ILP model: variables, constraints, objective."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: Dict[int, float] = {}
        self.minimize = True

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: Optional[float] = None,
        integer: bool = False,
        binary: bool = False,
    ) -> Var:
        if binary:
            lb, ub, integer = 0.0, 1.0, True
        var = Var(index=len(self.variables), name=name, lb=lb, ub=ub, integer=integer)
        self.variables.append(var)
        return var

    def add_constraint(
        self,
        coeffs: Dict[Var, float],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        constraint = Constraint(
            coeffs={v.index: c for v, c in coeffs.items() if c != 0.0},
            sense=sense,
            rhs=rhs,
            name=name,
        )
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, coeffs: Dict[Var, float], minimize: bool = True) -> None:
        self.objective = {v.index: c for v, c in coeffs.items()}
        self.minimize = minimize

    @property
    def n_vars(self) -> int:
        return len(self.variables)

    def integer_indices(self) -> List[int]:
        return [v.index for v in self.variables if v.integer]

    # ------------------------------------------------------------------
    def to_arrays(
        self,
        extra_bounds: Optional[Dict[int, Tuple[float, Optional[float]]]] = None,
    ):
        """Convert to (c, A_ub, b_ub, A_eq, b_eq, bounds) for the LP engine.

        ``extra_bounds`` lets a branch-and-bound driver tighten variable
        bounds per node without copying the model.
        """
        n = self.n_vars
        c = np.zeros(n)
        for idx, coeff in self.objective.items():
            c[idx] = coeff
        if not self.minimize:
            c = -c

        ub_rows: List[Dict[int, float]] = []
        ub_rhs: List[float] = []
        eq_rows: List[Dict[int, float]] = []
        eq_rhs: List[float] = []
        for con in self.constraints:
            if con.sense is Sense.LE:
                ub_rows.append(con.coeffs)
                ub_rhs.append(con.rhs)
            elif con.sense is Sense.GE:
                ub_rows.append({i: -v for i, v in con.coeffs.items()})
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(con.coeffs)
                eq_rhs.append(con.rhs)

        def build(rows: List[Dict[int, float]]):
            if not rows:
                return None
            data, ri, ci = [], [], []
            for r, row in enumerate(rows):
                for col, val in row.items():
                    data.append(val)
                    ri.append(r)
                    ci.append(col)
            return sparse.csr_matrix((data, (ri, ci)), shape=(len(rows), n))

        bounds = []
        for v in self.variables:
            lo, hi = v.lb, v.ub
            if extra_bounds and v.index in extra_bounds:
                extra_lo, extra_hi = extra_bounds[v.index]
                lo = max(lo, extra_lo)
                if extra_hi is not None:
                    hi = extra_hi if hi is None else min(hi, extra_hi)
            bounds.append((lo, hi))
        return (
            c,
            build(ub_rows),
            np.array(ub_rhs) if ub_rhs else None,
            build(eq_rows),
            np.array(eq_rhs) if eq_rhs else None,
            bounds,
        )

    def __str__(self) -> str:
        return (
            f"Model({self.name}: {self.n_vars} vars, "
            f"{len(self.integer_indices())} integer, "
            f"{len(self.constraints)} constraints)"
        )
