"""The common answer type every portfolio backend returns.

A backend is a function ``(formulation, budget knobs) -> BackendAnswer``.
Three answers are possible, with deliberately asymmetric meanings:

* ``sat``     — a witness was found; ``times`` maps op -> issue cycle and
                must pass :func:`repro.portfolio.formulation.check_witness`;
* ``unsat``   — *proven* infeasible at this II and horizon (exhaustive
                search / solver infeasibility certificate), never a budget
                artifact;
* ``unknown`` — the budget (time or nodes) ran out first.  Unknown agrees
                with everything; only definitive answers can disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass
class BackendAnswer:
    """One backend's verdict on one formulation."""

    backend: str
    answer: str  # SAT | UNSAT | UNKNOWN
    times: Optional[Dict[int, int]] = None
    seconds: float = 0.0
    nodes: int = 0
    detail: str = ""

    @property
    def definitive(self) -> bool:
        return self.answer in (SAT, UNSAT)


@dataclass
class ProbeRecord:
    """One recorded (II, backend) probe — the agreement oracle's raw data.

    Serialised into ``CellResult.backend_probes`` so the fuzz oracle and
    the differential test suite can audit, after the fact, exactly which
    backend said what at which II.  ``witness_ok`` is the independent
    :func:`~repro.portfolio.formulation.check_witness` verdict for sat
    answers (None otherwise).
    """

    ii: int
    backend: str
    answer: str
    seconds: float = 0.0
    nodes: int = 0
    witness_ok: Optional[bool] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ii": self.ii,
            "backend": self.backend,
            "answer": self.answer,
            "seconds": self.seconds,
            "nodes": self.nodes,
            "witness_ok": self.witness_ok,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProbeRecord":
        return cls(
            ii=data["ii"],
            backend=data["backend"],
            answer=data["answer"],
            seconds=data.get("seconds", 0.0),
            nodes=data.get("nodes", 0),
            witness_ok=data.get("witness_ok"),
            detail=data.get("detail", ""),
        )


def probe_disagreements(probes) -> list:
    """Cross-backend contradictions in a probe list (the oracle's core).

    Groups probes by II; any II where one backend answered ``sat`` and
    another ``unsat`` — or where a sat witness failed the independent
    check — yields one human-readable finding string.  ``unknown`` never
    contradicts anything.
    """
    findings = []
    by_ii: Dict[int, list] = {}
    for probe in probes:
        record = probe if isinstance(probe, ProbeRecord) else ProbeRecord.from_dict(probe)
        by_ii.setdefault(record.ii, []).append(record)
    for ii in sorted(by_ii):
        records = by_ii[ii]
        sats = [r for r in records if r.answer == SAT]
        unsats = [r for r in records if r.answer == UNSAT]
        if sats and unsats:
            findings.append(
                f"II={ii}: {'/'.join(sorted(r.backend for r in sats))} answered sat "
                f"but {'/'.join(sorted(r.backend for r in unsats))} answered unsat"
            )
        for record in sats:
            if record.witness_ok is False:
                findings.append(
                    f"II={ii}: {record.backend} sat witness failed the "
                    f"independent check ({record.detail or 'no detail'})"
                )
    return findings
