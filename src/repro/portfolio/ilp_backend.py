"""The ILP backend: MOST's time-indexed model behind the portfolio API.

A thin adapter — the model construction lives in
:mod:`repro.most.formulation` (itself built *from* the neutral
formulation, so all backends answer the same object) and the solve in
:mod:`repro.ilp.solver`.  Status mapping is the portfolio's three-valued
contract: OPTIMAL/FEASIBLE -> sat (with decoded times), INFEASIBLE ->
unsat, UNSOLVED (budget) -> unknown.

Imports of :mod:`repro.most` stay inside the function: the MOST modules
import the neutral formulation from this package, and a top-level import
back into ``most`` would complete a cycle.
"""

from __future__ import annotations

from typing import Optional

from .answer import SAT, UNKNOWN, UNSAT, BackendAnswer
from .formulation import ModuloFormulation


def solve_ilp(
    formulation: ModuloFormulation,
    loop,
    time_limit: Optional[float] = None,
    max_nodes: int = 200_000,
    engine: str = "bnb",
    branch_priority=None,
) -> BackendAnswer:
    """Answer one formulation with the time-indexed ILP.

    ``loop`` is the IR loop the formulation was built from (the ILP layer
    needs it to attach decode bookkeeping); ``branch_priority`` optionally
    carries an SGI production order of op indices (§3.3 adjustment 3).
    """
    from ..ilp.solver import SolverOptions, Status, solve_milp
    from ..most.formulation import model_from_formulation

    if formulation.infeasible:
        return BackendAnswer(
            backend="ilp", answer=UNSAT, detail=formulation.infeasible_reason
        )
    encoded = model_from_formulation(formulation, loop)
    priority = (
        encoded.branch_priority(branch_priority)
        if branch_priority is not None
        else None
    )
    # The B&B compares the wall clock against time_limit directly, so a
    # "no limit" request becomes the solver's own generous default.
    if time_limit is None:
        time_limit = SolverOptions.time_limit
    options = SolverOptions(
        time_limit=time_limit,
        max_nodes=max_nodes,
        branch_priority=priority,
        engine=engine,
        first_solution=True,  # the portfolio asks feasibility, not optimality
        branch_up_first=priority is not None,
    )
    result = solve_milp(encoded.model, options)
    if result.status is Status.INFEASIBLE:
        return BackendAnswer(
            backend="ilp", answer=UNSAT, seconds=result.seconds, nodes=result.nodes
        )
    if result.has_solution:
        return BackendAnswer(
            backend="ilp",
            answer=SAT,
            times=encoded.decode_times(result),
            seconds=result.seconds,
            nodes=result.nodes,
        )
    return BackendAnswer(
        backend="ilp",
        answer=UNKNOWN,
        seconds=result.seconds,
        nodes=result.nodes,
        detail=f"limit={result.limit or 'none'}",
    )
