"""A portfolio of optimal modulo-scheduling backends over one formulation.

The paper's "optimal" side of the showdown is a single time-indexed ILP
(MOST, Section 3).  Its direct successors swapped the decision procedure
but kept the question: Roorda's SMT-solver modulo scheduling
(arXiv 2601.21842) encodes the same windows and modulo resource rows in
difference logic; the combinatorial-scheduling survey of Castañeda Lozano
& Schulte (arXiv 1409.7628) catalogues CP propagation over the identical
structure.  This package makes that literal: one backend-neutral
:class:`~repro.portfolio.formulation.ModuloFormulation` extracted from the
MOST model builder, and interchangeable decision procedures behind it —

* ``ilp`` — the existing time-indexed ILP (:mod:`repro.ilp`);
* ``cp``  — a pure-python CP solver: window propagation, modulo-resource
  filtering, conflict-driven chronological search (always available);
* ``smt`` — a difference-logic encoding for Z3, optional-dependency-gated
  and skipped cleanly when ``z3-solver`` is absent.

:func:`~repro.portfolio.driver.portfolio_pipeline_loop` races the
registered backends per (loop, II) under one shared
:class:`~repro.most.scheduler.SolveBudget` and takes the first definitive
sat/unsat answer.  Because every backend answers the *same* formulation,
any disagreement is a soundness bug in one of them — the cross-backend
agreement oracle (``repro.fuzz`` layer ``agreement``) turns that into a
standing differential test.

Only the leaf modules (formulation, answer) are imported eagerly;
driver-level names resolve lazily so :mod:`repro.most` can import the
neutral formulation without pulling the drivers back in (no import cycle).
"""

from .answer import BackendAnswer, ProbeRecord, probe_disagreements
from .formulation import ModuloFormulation, build_modulo_formulation, check_witness

__all__ = [
    "BackendAnswer",
    "ModuloFormulation",
    "PortfolioOptions",
    "PortfolioResult",
    "PortfolioStats",
    "ProbeRecord",
    "available_backend_names",
    "build_modulo_formulation",
    "check_witness",
    "portfolio_pipeline_loop",
    "probe_disagreements",
    "smt_available",
]

_LAZY = {
    "PortfolioOptions": "driver",
    "PortfolioResult": "driver",
    "PortfolioStats": "driver",
    "available_backend_names": "driver",
    "portfolio_pipeline_loop": "driver",
    "smt_available": "smt",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
