"""The backend-neutral modulo-scheduling formulation.

One candidate (loop, machine, II) pair induces one *formulation*: the
ASAP/ALAP issue window of every operation at a horizon of ``stages * II``
cycles, the dependence arcs (``sigma_dst - sigma_src >= latency -
II*omega``), and the modulo reservation rows (per resource and modulo
slot, summed reservation-table demand may not exceed availability).  The
MOST ILP (:mod:`repro.most.formulation`), the CP backend
(:mod:`repro.portfolio.cp`) and the SMT backend
(:mod:`repro.portfolio.smt`) are all *encodings of this one object*, which
is what makes cross-backend agreement a meaningful oracle: a sat witness
of one backend must satisfy :func:`check_witness` here, and two definitive
answers at the same II must match.

The module deliberately imports nothing from :mod:`repro.ilp` or any
solver — it holds plain data plus the window computation, so every
backend (and the independent witness checker) can depend on it without
cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription


@dataclass(frozen=True)
class FormulationArc:
    """One dependence arc of the formulation.

    ``kind`` is the :class:`~repro.ir.ddg.DepKind` value string ("flow",
    "anti", "output", "mem") and ``value`` the carried register name for
    flow arcs — both kept so objective builders (buffer minimisation,
    lifetime tie-breaks) need no access to the original DDG.
    """

    src: int
    dst: int
    latency: int
    omega: int
    kind: str = "flow"
    value: Optional[str] = None

    def weight(self, ii: int) -> int:
        """The difference-constraint weight at this II."""
        return self.latency - ii * self.omega


@dataclass
class ModuloFormulation:
    """Everything a decision procedure needs to answer one (loop, II).

    ``windows[op]`` is the inclusive ASAP/ALAP issue range; ``arcs`` keeps
    the DDG's arc order (self-arcs included — they are either screened
    into ``infeasible`` or vacuous at this II); ``op_uses[op]`` lists the
    reservation-table demand ``(offset, resource, count)`` in machine
    table order.  ``infeasible`` short-circuits every backend: the windows
    collapsed (or a self-recurrence exceeded ``II*omega``), which this
    repo treats as a proven *unsat* at this II and horizon.
    """

    loop_name: str
    n_ops: int
    ii: int
    stages: int
    horizon: int
    windows: List[Tuple[int, int]] = field(default_factory=list)
    arcs: List[FormulationArc] = field(default_factory=list)
    op_uses: List[List[Tuple[int, str, int]]] = field(default_factory=list)
    availability: Dict[str, int] = field(default_factory=dict)
    infeasible: bool = False
    infeasible_reason: str = ""

    def domain(self, op: int) -> range:
        lo, hi = self.windows[op]
        return range(lo, hi + 1)

    def dep_arcs(self) -> List[FormulationArc]:
        """The non-self arcs — the difference constraints of the encoding."""
        return [arc for arc in self.arcs if arc.src != arc.dst]

    def flow_value_arcs(self) -> List[FormulationArc]:
        """Flow arcs carrying a named value (buffer/lifetime objectives)."""
        return [arc for arc in self.arcs if arc.kind == "flow" and arc.value]


def critical_path(loop: Loop) -> int:
    """Longest acyclic latency path (carried arcs excluded)."""
    heights = loop.ddg.height_map()
    return max(heights.values(), default=0) + 1


def default_horizon_stages(loop: Loop, machine: MachineDescription, ii: int) -> int:
    """Stage bound K: enough for the critical path plus slack."""
    return max(2, math.ceil((critical_path(loop) + 1) / ii) + 1)


def time_windows(loop: Loop, ii: int, horizon: int) -> Optional[List[Tuple[int, int]]]:
    """ASAP/ALAP windows per operation at this II and horizon.

    Longest-path relaxation over arc weights ``latency - II*omega``; no
    positive cycles exist at a feasible II, so ``n`` passes converge.
    Returns None when some window is empty (horizon too small or II
    infeasible).
    """
    n = loop.n_ops
    arcs = [
        (a.src, a.dst, a.latency - ii * a.omega)
        for a in loop.ddg.arcs
        if a.src != a.dst
    ]
    earliest = [0] * n
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if earliest[src] + w > earliest[dst]:
                earliest[dst] = earliest[src] + w
                changed = True
        if not changed:
            break
    latest = [horizon - 1] * n
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if latest[dst] - w < latest[src]:
                latest[src] = latest[dst] - w
                changed = True
        if not changed:
            break
    windows = list(zip(earliest, latest))
    if any(lo > hi for lo, hi in windows):
        return None
    return windows


def build_modulo_formulation(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    stages: Optional[int] = None,
) -> ModuloFormulation:
    """Build the neutral formulation of ``loop`` at candidate ``ii``.

    Performs the two feasibility screens every backend shares — the
    self-recurrence check (``latency > II*omega`` cannot be satisfied at
    any horizon) and the ASAP/ALAP window collapse — and marks the result
    ``infeasible`` instead of raising, mirroring how the MOST driver
    treats a collapsed formulation as a proven-infeasible II.
    """
    if stages is None:
        stages = default_horizon_stages(loop, machine, ii)
    horizon = stages * ii
    arcs = [
        FormulationArc(
            src=a.src,
            dst=a.dst,
            latency=a.latency,
            omega=a.omega,
            kind=a.kind.value,
            value=a.value,
        )
        for a in loop.ddg.arcs
    ]
    formulation = ModuloFormulation(
        loop_name=loop.name,
        n_ops=loop.n_ops,
        ii=ii,
        stages=stages,
        horizon=horizon,
        arcs=arcs,
        availability=dict(machine.availability),
    )
    for arc in loop.ddg.arcs:
        if arc.src == arc.dst and arc.latency > ii * arc.omega:
            formulation.infeasible = True
            formulation.infeasible_reason = (
                f"self-recurrence on op {arc.src}: latency {arc.latency} > "
                f"II*omega = {ii * arc.omega}"
            )
            return formulation
    windows = time_windows(loop, ii, horizon)
    if windows is None:
        formulation.infeasible = True
        formulation.infeasible_reason = "ASAP/ALAP windows collapsed at this horizon"
        return formulation
    formulation.windows = windows
    formulation.op_uses = [
        [
            (use.offset, use.resource, use.count)
            for use in machine.table(loop.ops[op].opclass).uses
        ]
        for op in range(loop.n_ops)
    ]
    return formulation


def check_witness(formulation: ModuloFormulation, times: Dict[int, int]) -> List[str]:
    """Independently check a sat witness against the formulation.

    Returns human-readable violation strings (empty = the witness is a
    genuine solution).  This is deliberately *not* any backend's own
    consistency code: it re-derives windows, dependences and modulo
    resource usage from the neutral data, so a backend that decodes its
    model wrong cannot also vouch for itself.
    """
    errors: List[str] = []
    if formulation.infeasible:
        errors.append(
            f"witness offered for a formulation proven infeasible "
            f"({formulation.infeasible_reason})"
        )
        return errors
    missing = sorted(set(range(formulation.n_ops)) - set(times))
    if missing:
        errors.append(f"ops {missing} are unplaced")
        return errors
    for op in range(formulation.n_ops):
        lo, hi = formulation.windows[op]
        t = times[op]
        if not lo <= t <= hi:
            errors.append(f"op {op} at t={t} outside window [{lo}, {hi}]")
    for arc in formulation.dep_arcs():
        slack = times[arc.dst] - times[arc.src] - arc.weight(formulation.ii)
        if slack < 0:
            errors.append(
                f"arc {arc.src}->{arc.dst} violated: "
                f"{times[arc.dst]} - {times[arc.src]} < {arc.weight(formulation.ii)}"
            )
    usage: Dict[Tuple[str, int], int] = {}
    for op in range(formulation.n_ops):
        for offset, resource, count in formulation.op_uses[op]:
            slot = (times[op] + offset) % formulation.ii
            usage[(resource, slot)] = usage.get((resource, slot), 0) + count
    for (resource, slot), demand in sorted(usage.items()):
        limit = formulation.availability.get(resource, 0)
        if demand > limit:
            errors.append(
                f"resource {resource} oversubscribed at slot {slot}: "
                f"{demand} > {limit}"
            )
    return errors
