"""A pure-python CP backend: propagate windows, filter slots, search.

The classic constraint-programming reading of modulo scheduling (surveyed
in Castañeda Lozano & Schulte, arXiv 1409.7628): each operation has an
integer issue-time variable over its ASAP/ALAP window, the dependence
arcs are difference constraints (bounds-consistent via longest-path
propagation), and the modulo reservation tables are a global resource
constraint filtered per modulo slot.  Search is chronological DFS with a
deterministic static order, so — like the repo's other schedulers — the
same inputs yield the same answer on any machine, and a *node* budget
(not the wall clock) is what bounds reproducible runs.

Soundness contract (what the agreement oracle leans on):

* ``sat`` answers carry a witness that satisfies every window, arc and
  modulo resource row (checked independently by the caller);
* ``unsat`` is returned only when the search exhausted the full window
  space at this horizon — never when a budget stopped it;
* budget exhaustion (nodes or the wall-clock backstop) is ``unknown``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from .answer import SAT, UNKNOWN, UNSAT, BackendAnswer
from .formulation import ModuloFormulation

#: How many search nodes between wall-clock checks: the node budget is the
#: deterministic limit, the clock only a backstop against pathological
#: propagation cost per node.
_CLOCK_STRIDE = 256


class _Search:
    """One DFS over a formulation; state is trailed for O(1) undo."""

    def __init__(self, formulation: ModuloFormulation, order: Sequence[int]):
        self.f = formulation
        self.n = formulation.n_ops
        self.ii = formulation.ii
        self.order = list(order)
        self.lo = [w[0] for w in formulation.windows]
        self.hi = [w[1] for w in formulation.windows]
        self.fixed = [False] * self.n
        # Difference arcs grouped by endpoint for incremental propagation.
        self.out_arcs: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        self.in_arcs: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        for arc in formulation.dep_arcs():
            w = arc.weight(self.ii)
            self.out_arcs[arc.src].append((arc.dst, w))
            self.in_arcs[arc.dst].append((arc.src, w))
        # Modulo reservation table of the currently fixed ops.
        self.usage: Dict[Tuple[str, int], int] = {}
        self.nodes = 0
        self.propagations = 0
        self.conflicts = 0

    # -- modulo resource filtering ------------------------------------
    def _slot_fits(self, op: int, t: int) -> bool:
        """Would fixing ``op`` at ``t`` keep every reservation row within
        availability, given the already-fixed ops?

        The op's *own* uses accumulate too: a long unpipelined table (e.g.
        fpdiv busy for II+ cycles) can land two of its own reservations in
        one modulo slot, which is just as over-subscribed as a clash with
        another op.
        """
        f = self.f
        own: Dict[Tuple[str, int], int] = {}
        for offset, resource, count in f.op_uses[op]:
            slot = (t + offset) % self.ii
            key = (resource, slot)
            demand = own.get(key, 0) + count
            if self.usage.get(key, 0) + demand > f.availability[resource]:
                return False
            own[key] = demand
        return True

    def _has_live_slot(self, op: int) -> bool:
        """Does any value in ``op``'s current bounds fit the partial MRT?

        Bounds intervals are contiguous, so only ``min(width, ii)``
        residues need probing — beyond one full period the slots repeat.
        """
        lo, hi = self.lo[op], self.hi[op]
        for t in range(lo, min(hi, lo + self.ii - 1) + 1):
            if self._slot_fits(op, t):
                return True
        return False

    def _place(self, op: int, t: int) -> None:
        for offset, resource, count in self.f.op_uses[op]:
            slot = (t + offset) % self.ii
            key = (resource, slot)
            self.usage[key] = self.usage.get(key, 0) + count

    def _unplace(self, op: int, t: int) -> None:
        for offset, resource, count in self.f.op_uses[op]:
            slot = (t + offset) % self.ii
            key = (resource, slot)
            self.usage[key] -= count
            if not self.usage[key]:
                del self.usage[key]

    # -- bounds propagation -------------------------------------------
    def _propagate(self, seed: int, trail: List[Tuple[int, int, int]]) -> bool:
        """Bounds-consistency fixpoint after tightening op ``seed``.

        Difference constraints only ever *raise* ``lo`` and *lower* ``hi``,
        so a worklist pass terminates; every change is trailed for undo.
        Returns False on a domain wipeout or a fixed op losing its MRT
        slot (dead end).
        """
        work = [seed]
        while work:
            src = work.pop()
            self.propagations += 1
            for dst, w in self.out_arcs[src]:
                floor = self.lo[src] + w
                if floor > self.lo[dst]:
                    trail.append((dst, self.lo[dst], self.hi[dst]))
                    self.lo[dst] = floor
                    if self.lo[dst] > self.hi[dst]:
                        return False
                    work.append(dst)
            for dst, w in self.in_arcs[src]:
                ceil = self.hi[src] - w
                if ceil < self.hi[dst]:
                    trail.append((dst, self.lo[dst], self.hi[dst]))
                    self.hi[dst] = ceil
                    if self.lo[dst] > self.hi[dst]:
                        return False
                    work.append(dst)
        # Modulo-resource lookahead: every unfixed op must retain at least
        # one issue cycle whose reservation demand still fits the MRT.
        for op in range(self.n):
            if not self.fixed[op] and not self._has_live_slot(op):
                return False
        return True

    def _undo(self, trail: List[Tuple[int, int, int]]) -> None:
        while trail:
            op, lo, hi = trail.pop()
            self.lo[op] = lo
            self.hi[op] = hi

    # -- search --------------------------------------------------------
    def run(self, max_nodes: int, deadline: Optional[float]) -> BackendAnswer:
        start = time.perf_counter()
        status = self._dfs(0, max_nodes, deadline, start)
        seconds = time.perf_counter() - start
        if status == SAT:
            times = {op: self.lo[op] for op in range(self.n)}
            return BackendAnswer(
                backend="cp", answer=SAT, times=times,
                seconds=seconds, nodes=self.nodes,
            )
        detail = (
            f"{self.conflicts} conflicts, {self.propagations} propagations"
        )
        return BackendAnswer(
            backend="cp", answer=status, seconds=seconds,
            nodes=self.nodes, detail=detail,
        )

    def _out_of_budget(self, max_nodes: int, deadline: Optional[float], start: float) -> bool:
        if self.nodes >= max_nodes:
            return True
        if (
            deadline is not None
            and self.nodes % _CLOCK_STRIDE == 0
            and time.perf_counter() - start >= deadline
        ):
            return True
        return False

    def _dfs(self, depth: int, max_nodes: int, deadline: Optional[float], start: float) -> str:
        if depth == len(self.order):
            return SAT
        op = self.order[depth]
        for t in range(self.lo[op], self.hi[op] + 1):
            self.nodes += 1
            if self._out_of_budget(max_nodes, deadline, start):
                return UNKNOWN
            if not self._slot_fits(op, t):
                continue
            trail: List[Tuple[int, int, int]] = [(op, self.lo[op], self.hi[op])]
            self.lo[op] = self.hi[op] = t
            self.fixed[op] = True
            self._place(op, t)
            if self._propagate(op, trail):
                status = self._dfs(depth + 1, max_nodes, deadline, start)
                if status == SAT:
                    return SAT  # keep the trail: self.lo now holds the witness
            else:
                self.conflicts += 1
                status = UNSAT
            self._unplace(op, t)
            self.fixed[op] = False
            self._undo(trail)
            if status == UNKNOWN:
                return UNKNOWN
        return UNSAT


def default_order(formulation: ModuloFormulation) -> List[int]:
    """Static variable order: tightest window first, index as tie-break.

    Deterministic by construction (no hashing, no randomness), and a good
    proxy for the fail-first principle: critical-recurrence ops have the
    narrowest windows and get decided before the slack ones.
    """
    return sorted(
        range(formulation.n_ops),
        key=lambda op: (
            formulation.windows[op][1] - formulation.windows[op][0],
            op,
        ),
    )


def solve_cp(
    formulation: ModuloFormulation,
    time_limit: Optional[float] = None,
    max_nodes: int = 200_000,
    order: Optional[Sequence[int]] = None,
) -> BackendAnswer:
    """Answer one formulation with the CP search.

    ``order`` overrides the static variable order (the portfolio driver
    passes nothing — the built-in fail-first order is already the
    deterministic choice); ``max_nodes`` is the reproducible budget and
    ``time_limit`` the wall-clock backstop.
    """
    if formulation.infeasible:
        return BackendAnswer(
            backend="cp", answer=UNSAT, detail=formulation.infeasible_reason
        )
    if formulation.n_ops == 0:
        return BackendAnswer(backend="cp", answer=SAT, times={})
    search = _Search(formulation, order or default_order(formulation))
    return search.run(max_nodes=max_nodes, deadline=time_limit)
