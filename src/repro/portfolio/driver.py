"""The portfolio driver: race the registered backends per (loop, II).

Walks the II range exactly like the MOST driver (MinII up to a cap,
II-optimality proven when every smaller II was proven infeasible), but at
each II the *neutral* formulation is answered by a sequence of backends —
CP propagation, the time-indexed ILP, optionally Z3 — racing under one
shared :class:`~repro.most.scheduler.SolveBudget`.  The first definitive
sat/unsat wins; ``cross_check`` mode instead queries *every* backend and
records the full probe trail, which is what the cross-backend agreement
oracle audits.

Budget discipline (the single-owner invariant MOST established): every
backend invocation asks the shared budget for its slice, a slice can
never exceed what remains, and a backend overshooting its granted slice
by more than the enforcement slack is an assertion failure — racing
backends cannot over-spend the loop's budget no matter how many are
registered.

Per-backend effort lands in ``repro.obs`` counters
(``portfolio.<backend>.seconds``, ``.sat``, ``.unsat``, ``.unknown``,
``.nodes``), so traced bench runs aggregate solver effort per backend in
BENCH_pipeline.json.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.driver import PipelineResult, PipelinerOptions, pipeline_loop
from ..core.minii import min_ii as compute_min_ii
from ..core.priorities import production_orders
from ..core.sched import Schedule
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..obs import get_recorder
from ..regalloc.coloring import AllocationResult, allocate_schedule
from .answer import SAT, UNSAT, BackendAnswer, ProbeRecord, probe_disagreements
from .cp import solve_cp
from .formulation import ModuloFormulation, build_modulo_formulation, check_witness
from .ilp_backend import solve_ilp
from .smt import smt_available, solve_smt

#: Backends every build of this repo can run.  ``smt`` joins the set only
#: when ``z3-solver`` is importable — requesting it without z3 is a clean
#: skip (recorded in the result), not an error, so one options dict works
#: on machines with and without the optional dependency.
ALWAYS_AVAILABLE = ("cp", "ilp")
KNOWN_BACKENDS = ("cp", "ilp", "smt")

#: A backend may overshoot its granted slice by at most this many seconds
#: plus half the slice (both CP and the ILP check their deadlines at node
#: granularity; a node can straddle the boundary).  Beyond that the
#: backend ignored its budget — the over-spend bug the single-owner
#: invariant exists to catch.
SLICE_GRACE = 1.0


def available_backend_names() -> Tuple[str, ...]:
    """The backends runnable in this environment, in race order."""
    return KNOWN_BACKENDS if smt_available() else ALWAYS_AVAILABLE


def _parse_backends(spec: str) -> List[str]:
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = sorted(set(names) - set(KNOWN_BACKENDS))
    if unknown:
        raise ValueError(
            f"unknown portfolio backends: {', '.join(unknown)} "
            f"(known: {', '.join(KNOWN_BACKENDS)})"
        )
    if not names:
        raise ValueError("portfolio needs at least one backend")
    return names


@dataclass
class PortfolioOptions:
    """Configuration of the portfolio pipeliner."""

    # Per-loop search budget shared by *all* backends across *all* IIs.
    time_limit: float = 20.0
    # Comma-separated race order.  The default deliberately omits smt:
    # z3's budget is wall-clock only, so letting it decide results would
    # make committed benchmarks machine-dependent; cross-check lanes and
    # the CI z3 matrix opt it in explicitly.
    backends: str = "cp,ilp"
    # Query every backend at every II (instead of stopping at the first
    # definitive answer) and record the full probe trail — the agreement
    # oracle's mode.  Costs roughly a factor of len(backends).
    cross_check: bool = False
    max_ops: int = 80  # loops beyond this go straight to the fallback
    ii_cap_factor: int = 2
    stages: Optional[int] = None
    fallback: bool = True  # use the heuristic pipeliner as backup
    max_nodes: int = 200_000  # deterministic per-solve budget (cp + ilp bnb)
    ilp_engine: str = "bnb"
    priority_branching: bool = True  # feed the ILP an SGI production order

    def budget(self):
        """Start the wall clock on this loop's shared solve budget."""
        from ..most.scheduler import SolveBudget

        return SolveBudget(total=self.time_limit)

    def backend_names(self) -> List[str]:
        return _parse_backends(self.backends)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PortfolioOptions":
        """Build options from a JSON-style mapping (the repro.exec cell form)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown PortfolioOptions keys: {', '.join(unknown)}")
        options = cls(**dict(data))
        options.backend_names()  # validate eagerly, inside the worker
        return options


@dataclass
class PortfolioStats:
    """Accumulated effort, total and per backend."""

    solves: int = 0
    nodes: int = 0
    seconds: float = 0.0
    ii_attempts: int = 0
    per_backend: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def charge(self, answer: BackendAnswer) -> None:
        self.solves += 1
        self.nodes += answer.nodes
        self.seconds += answer.seconds
        agg = self.per_backend.setdefault(
            answer.backend,
            {"solves": 0, "seconds": 0.0, "nodes": 0, "sat": 0, "unsat": 0, "unknown": 0},
        )
        agg["solves"] += 1
        agg["seconds"] += answer.seconds
        agg["nodes"] += answer.nodes
        agg[answer.answer] = agg.get(answer.answer, 0) + 1

    def backend_seconds(self) -> Dict[str, float]:
        return {name: agg["seconds"] for name, agg in sorted(self.per_backend.items())}


@dataclass
class PortfolioResult:
    """Outcome of the portfolio pipeliner (possibly via fallback)."""

    success: bool
    schedule: Optional[Schedule]
    allocation: Optional[AllocationResult]
    loop: Loop
    min_ii: int
    optimal: bool = False  # II-optimality proven (every smaller II unsat)
    winning_backend: str = ""
    fallback_used: bool = False
    fallback_result: Optional[PipelineResult] = None
    skipped_backends: Tuple[str, ...] = ()  # requested but unavailable (smt w/o z3)
    probes: List[ProbeRecord] = field(default_factory=list)
    disagreements: List[str] = field(default_factory=list)
    stats: PortfolioStats = field(default_factory=PortfolioStats)

    @property
    def ii(self) -> Optional[int]:
        return self.schedule.ii if self.schedule is not None else None


def _backend_callable(
    name: str, loop: Loop, machine: MachineDescription, options: PortfolioOptions
) -> Callable[[ModuloFormulation, float], BackendAnswer]:
    """Bind one backend name to a ``(formulation, time_limit) -> answer``."""
    if name == "cp":
        return lambda f, limit: solve_cp(
            f, time_limit=limit, max_nodes=options.max_nodes
        )
    if name == "ilp":
        order = (
            next(iter(production_orders(loop, machine).values()))
            if options.priority_branching
            else None
        )
        return lambda f, limit: solve_ilp(
            f,
            loop,
            time_limit=limit,
            max_nodes=options.max_nodes,
            engine=options.ilp_engine,
            branch_priority=order,
        )
    if name == "smt":
        return lambda f, limit: solve_smt(f, time_limit=limit)
    raise ValueError(f"unknown backend {name!r}")  # pragma: no cover - validated


def _probe_ii(
    formulation: ModuloFormulation,
    backends: List[Tuple[str, Callable[[ModuloFormulation, float], BackendAnswer]]],
    budget,
    options: PortfolioOptions,
    stats: PortfolioStats,
    probes: List[ProbeRecord],
) -> List[BackendAnswer]:
    """Race the backends on one formulation under the shared budget.

    Sequential and deterministic: race order is the configured backend
    order, each invocation gets an even slice of the *total* budget capped
    by what remains (the single-owner invariant), and without
    ``cross_check`` the first definitive answer ends the round.
    """
    rec = get_recorder()
    answers: List[BackendAnswer] = []
    for name, fn in backends:
        if budget.expired():
            break
        granted = budget.slice(parts=len(backends), floor=0.05)
        answer = fn(formulation, granted)
        # Single-owner budget invariant: a slice is a ceiling, not a hint.
        # CP and the B&B check their deadline per node, so enforcement
        # slack is half a slice plus a constant; beyond it the backend
        # simply ignored the budget it was granted.
        assert answer.seconds <= granted + SLICE_GRACE + 0.5 * granted, (
            f"backend {name!r} spent {answer.seconds:.3f}s of a "
            f"{granted:.3f}s budget slice"
        )
        stats.charge(answer)
        witness_ok: Optional[bool] = None
        detail = answer.detail
        if answer.answer == SAT:
            errors = check_witness(formulation, answer.times or {})
            witness_ok = not errors
            if errors:
                detail = "; ".join(errors[:3])
        probes.append(
            ProbeRecord(
                ii=formulation.ii,
                backend=name,
                answer=answer.answer,
                seconds=answer.seconds,
                nodes=answer.nodes,
                witness_ok=witness_ok,
                detail=detail,
            )
        )
        if rec.enabled:
            rec.counter(f"portfolio.{name}.seconds", answer.seconds)
            rec.counter(f"portfolio.{name}.nodes", answer.nodes)
            rec.counter(f"portfolio.{name}.{answer.answer}")
        answers.append(answer)
        if answer.definitive and not options.cross_check:
            break
    return answers


def portfolio_pipeline_loop(
    loop: Loop,
    machine: Optional[MachineDescription] = None,
    options: Optional[PortfolioOptions] = None,
    verify: Optional[bool] = None,
) -> PortfolioResult:
    """Schedule ``loop`` with the backend portfolio, falling back to heuristics.

    ``verify`` cross-checks successful results with the independent
    ``repro.verify`` analyzers (``None`` = process default); ERROR
    diagnostics raise :class:`repro.verify.VerificationError`.
    """
    from ..core.driver import _maybe_verify

    machine = machine if machine is not None else r8000()
    options = options or PortfolioOptions()
    stats = PortfolioStats()
    probes: List[ProbeRecord] = []
    mii = compute_min_ii(loop, machine)
    budget = options.budget()

    requested = options.backend_names()
    usable = [n for n in requested if n != "smt" or smt_available()]
    skipped = tuple(n for n in requested if n not in usable)
    backends = [
        (name, _backend_callable(name, loop, machine, options)) for name in usable
    ]

    rec = get_recorder()
    if loop.n_ops <= options.max_ops and backends:
        max_ii = options.ii_cap_factor * mii
        smaller_proven_infeasible = True
        for ii in range(mii, max_ii + 1):
            if budget.expired():
                break
            stats.ii_attempts += 1
            if rec.enabled:
                rec.counter("portfolio.ii_attempts")
                rec.event("portfolio.ii", loop=loop.name, ii=ii)
            formulation = build_modulo_formulation(
                loop, machine, ii, stages=options.stages
            )
            if formulation.infeasible:
                # The shared screen is a proof every backend would repeat;
                # record it once so the probe trail stays complete.
                probes.append(
                    ProbeRecord(
                        ii=ii,
                        backend="screen",
                        answer=UNSAT,
                        detail=formulation.infeasible_reason,
                    )
                )
                continue
            answers = _probe_ii(formulation, backends, budget, options, stats, probes)
            usable_sat = next(
                (
                    a
                    for a in answers
                    if a.answer == SAT and not check_witness(formulation, a.times or {})
                ),
                None,
            )
            proven_unsat = any(a.answer == UNSAT for a in answers)
            if usable_sat is None:
                if not proven_unsat:
                    smaller_proven_infeasible = False
                continue
            schedule = Schedule(
                loop=loop,
                machine=machine,
                ii=ii,
                times=dict(usable_sat.times or {}),
                producer=f"portfolio/{usable_sat.backend}",
            )
            allocation = allocate_schedule(schedule, machine)
            if allocation.success:
                result = PortfolioResult(
                    success=True,
                    schedule=schedule,
                    allocation=allocation,
                    loop=loop,
                    min_ii=mii,
                    optimal=smaller_proven_infeasible,
                    winning_backend=usable_sat.backend,
                    skipped_backends=skipped,
                    probes=probes,
                    disagreements=probe_disagreements(probes),
                    stats=stats,
                )
                if rec.enabled and result.disagreements:
                    rec.counter("portfolio.disagreements", len(result.disagreements))
                return _maybe_verify(result, machine, verify)
            # Register allocation failed at this II: a larger II shortens
            # relative lifetimes, so keep walking the II range before
            # resorting to the heuristic fallback.
            smaller_proven_infeasible = False

    disagreements = probe_disagreements(probes)
    if rec.enabled and disagreements:
        rec.counter("portfolio.disagreements", len(disagreements))
    if not options.fallback:
        return PortfolioResult(
            success=False,
            schedule=None,
            allocation=None,
            loop=loop,
            min_ii=mii,
            skipped_backends=skipped,
            probes=probes,
            disagreements=disagreements,
            stats=stats,
        )
    # verify=False here: the wrapping PortfolioResult is verified below
    # instead, so the fallback schedule is not checked twice.
    fallback = pipeline_loop(
        loop, machine, PipelinerOptions(enable_membank=False), verify=False
    )
    return _maybe_verify(
        PortfolioResult(
            success=fallback.success,
            schedule=fallback.schedule,
            allocation=fallback.allocation,
            loop=fallback.loop,
            min_ii=mii,
            fallback_used=True,
            fallback_result=fallback,
            skipped_backends=skipped,
            probes=probes,
            disagreements=disagreements,
            stats=stats,
        ),
        machine,
        verify,
    )
