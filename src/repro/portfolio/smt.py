"""The optional Z3 SMT backend: difference logic plus modulo slot sums.

The encoding follows the SMT reading of modulo scheduling (Roorda,
arXiv 2601.21842): one integer ``sigma_i`` per operation bounded by its
ASAP/ALAP window, a difference constraint per dependence arc, and — per
resource and modulo slot — a sum of ``If(sigma_i mod II == slot)`` terms
bounded by availability.  Z3 is an *optional* dependency: this module
imports it lazily, :func:`smt_available` reports the seam, and callers
(the backend registry, the test suite) skip cleanly when it is absent —
never crash, never silently pretend an answer.

Determinism note: the default portfolio keeps this backend opt-in.  Z3's
budget is wall-clock only (no reproducible node limit), so a result that
depends on an SMT race could differ between machines; the CP and ILP
backends are node-limited and keep the committed benchmarks
machine-independent.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .answer import SAT, UNKNOWN, UNSAT, BackendAnswer
from .formulation import ModuloFormulation


def smt_available() -> bool:
    """True when the ``z3-solver`` package is importable."""
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


def solve_smt(
    formulation: ModuloFormulation,
    time_limit: Optional[float] = None,
    max_nodes: int = 0,  # accepted for signature parity; z3 has no node budget
) -> BackendAnswer:
    """Answer one formulation with Z3; requires :func:`smt_available`.

    ``unsat`` is z3's own proof; ``unknown`` covers both the wall-clock
    timeout and any other inconclusive solver outcome.
    """
    import z3

    if formulation.infeasible:
        return BackendAnswer(
            backend="smt", answer=UNSAT, detail=formulation.infeasible_reason
        )
    start = time.perf_counter()
    n = formulation.n_ops
    ii = formulation.ii
    solver = z3.Solver()
    if time_limit is not None:
        solver.set("timeout", max(1, int(time_limit * 1000)))
    sigma = [z3.Int(f"sigma_{op}") for op in range(n)]
    for op in range(n):
        lo, hi = formulation.windows[op]
        solver.add(sigma[op] >= lo, sigma[op] <= hi)
    for arc in formulation.dep_arcs():
        solver.add(sigma[arc.dst] - sigma[arc.src] >= arc.weight(ii))
    # Modulo slot variables: slot_i = sigma_i mod II, defined through the
    # quotient so the formula stays in linear integer arithmetic.
    slot = [z3.Int(f"slot_{op}") for op in range(n)]
    stage = [z3.Int(f"stage_{op}") for op in range(n)]
    for op in range(n):
        solver.add(sigma[op] == stage[op] * ii + slot[op])
        solver.add(slot[op] >= 0, slot[op] < ii)
    demand: Dict[str, Dict[int, list]] = {}
    for op in range(n):
        for offset, resource, count in formulation.op_uses[op]:
            for s in range(ii):
                # op contributes `count` to (resource, s) iff its issue
                # slot is (s - offset) mod II.
                home = (s - offset) % ii
                demand.setdefault(resource, {}).setdefault(s, []).append(
                    z3.If(slot[op] == home, count, 0)
                )
    for resource, rows in demand.items():
        for s, terms in rows.items():
            solver.add(z3.Sum(terms) <= formulation.availability[resource])
    verdict = solver.check()
    seconds = time.perf_counter() - start
    if verdict == z3.sat:
        model = solver.model()
        times = {op: model.eval(sigma[op]).as_long() for op in range(n)}
        return BackendAnswer(backend="smt", answer=SAT, times=times, seconds=seconds)
    if verdict == z3.unsat:
        return BackendAnswer(backend="smt", answer=UNSAT, seconds=seconds)
    return BackendAnswer(
        backend="smt", answer=UNKNOWN, seconds=seconds,
        detail=str(solver.reason_unknown()),
    )
