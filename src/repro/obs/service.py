"""Service-side metrics for the scheduling daemon (:mod:`repro.serve`).

The serving front end needs the classic latency/throughput/saturation
triple on top of the per-cell measurements the exec layer already makes:
request latency percentiles (p50/p99), queue depth, load-shedding and
cache-tier counters, and per-scheduler throughput.  Everything here is
plain counters and bounded sample reservoirs — cheap enough to update on
every request — and snapshots render straight into the ``service`` block
of ``BENCH_service.json``.

Nothing imports the asyncio daemon from here: the metrics objects are
synchronous and single-threaded by design (the daemon updates them only
from its event loop), which keeps them reusable from tests and from the
load generator's client side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Keep at most this many latency samples per distribution; beyond it the
#: reservoir degrades to coarse decimation (every other sample dropped),
#: which is plenty for p50/p99 on a long-running daemon.
MAX_SAMPLES = 100_000


class LatencyStats:
    """A bounded reservoir of latency samples with percentile queries."""

    def __init__(self, max_samples: int = MAX_SAMPLES):
        self.max_samples = max_samples
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._samples: List[float] = []
        self._keep_every = 1
        self._skip = 0

    def record(self, latency_ms: float) -> None:
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms
        self._skip += 1
        if self._skip >= self._keep_every:
            self._skip = 0
            self._samples.append(latency_ms)
            if len(self._samples) >= self.max_samples:
                # Halve the resolution rather than the history: drop every
                # other retained sample and double the decimation stride.
                self._samples = self._samples[::2]
                self._keep_every *= 2

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0..100) of the retained samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean_ms(self) -> Optional[float]:
        return self.total_ms / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_ms if self.count else None,
        }


@dataclass
class SchedulerLane:
    """Per-scheduler accounting: request count, latency, schedule time."""

    requests: int = 0
    errors: int = 0
    schedule_seconds: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "schedule_seconds": self.schedule_seconds,
            "latency_ms": self.latency.to_dict(),
        }


class ServiceMetrics:
    """Everything the daemon counts; snapshot with :meth:`to_dict`.

    ``requests`` counts every accepted schedule request; ``shed`` the ones
    rejected for a full queue (the 429 path) and ``rejected`` the
    malformed/shutting-down ones.  Cache counters distinguish the memory
    tier, the disk tier and single-flight deduplication (a concurrent
    identical request that waited on an in-flight solve rather than
    solving again).  ``queue_depth``/``queue_depth_max`` are sampled at
    enqueue time.
    """

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.shed = 0
        self.rejected = 0
        self.worker_respawns = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.inflight_dedup = 0
        self.queue_depth = 0
        self.queue_depth_max = 0
        self.latency = LatencyStats()
        self.by_scheduler: Dict[str, SchedulerLane] = {}

    # -- updates -------------------------------------------------------
    def lane(self, scheduler: str) -> SchedulerLane:
        if scheduler not in self.by_scheduler:
            self.by_scheduler[scheduler] = SchedulerLane()
        return self.by_scheduler[scheduler]

    def observe_queue(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.queue_depth_max:
            self.queue_depth_max = depth

    def record_response(
        self,
        scheduler: str,
        latency_ms: float,
        schedule_seconds: float = 0.0,
        error: bool = False,
    ) -> None:
        self.responses += 1
        self.latency.record(latency_ms)
        lane = self.lane(scheduler)
        lane.requests += 1
        lane.latency.record(latency_ms)
        lane.schedule_seconds += schedule_seconds
        if error:
            self.errors += 1
            lane.errors += 1

    # -- derived -------------------------------------------------------
    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Hits over lookups since the daemon started (dedup excluded)."""
        lookups = self.memory_hits + self.disk_hits + self.misses
        if not lookups:
            return None
        return (self.memory_hits + self.disk_hits) / lookups

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    @property
    def throughput_rps(self) -> Optional[float]:
        elapsed = self.uptime_seconds
        return self.responses / elapsed if elapsed > 0 and self.responses else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "shed": self.shed,
            "rejected": self.rejected,
            "worker_respawns": self.worker_respawns,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency.to_dict(),
            "queue": {"depth": self.queue_depth, "depth_max": self.queue_depth_max},
            "cache": {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "inflight_dedup": self.inflight_dedup,
                "hit_rate": self.cache_hit_rate,
            },
            "by_scheduler": {
                name: lane.to_dict() for name, lane in sorted(self.by_scheduler.items())
            },
        }
