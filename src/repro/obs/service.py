"""Service-side metrics for the scheduling daemon (:mod:`repro.serve`).

The serving front end needs the classic latency/throughput/saturation
triple on top of the per-cell measurements the exec layer already makes:
request latency percentiles (p50/p99), queue depth, load-shedding and
cache-tier counters, and per-scheduler throughput.  Everything here is
plain counters and bounded sample reservoirs — cheap enough to update on
every request — and snapshots render straight into the ``service`` block
of ``BENCH_service.json``.

Nothing imports the asyncio daemon from here: the metrics objects are
synchronous and single-threaded by design (the daemon updates them only
from its event loop), which keeps them reusable from tests and from the
load generator's client side.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Keep at most this many latency samples per distribution; beyond it the
#: reservoir degrades to coarse decimation (every other sample dropped),
#: which is plenty for p50/p99 on a long-running daemon.
MAX_SAMPLES = 100_000


class LatencyStats:
    """A bounded reservoir of latency samples with percentile queries."""

    def __init__(self, max_samples: int = MAX_SAMPLES):
        self.max_samples = max_samples
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._samples: List[float] = []
        self._keep_every = 1
        self._skip = 0

    def record(self, latency_ms: float) -> None:
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms
        self._skip += 1
        if self._skip >= self._keep_every:
            self._skip = 0
            self._samples.append(latency_ms)
            if len(self._samples) >= self.max_samples:
                # Halve the resolution rather than the history: drop every
                # other retained sample and double the decimation stride.
                self._samples = self._samples[::2]
                self._keep_every *= 2

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0..100) of the retained samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean_ms(self) -> Optional[float]:
        return self.total_ms / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_ms if self.count else None,
        }


@dataclass
class SchedulerLane:
    """Per-scheduler accounting: request count, latency, schedule time."""

    requests: int = 0
    errors: int = 0
    schedule_seconds: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "schedule_seconds": self.schedule_seconds,
            "latency_ms": self.latency.to_dict(),
        }


class ServiceMetrics:
    """Everything the daemon counts; snapshot with :meth:`to_dict`.

    ``requests`` counts every accepted schedule request; ``shed`` the ones
    rejected for a full queue (the 429 path) and ``rejected`` the
    malformed/shutting-down ones.  Cache counters distinguish the memory
    tier, the disk tier and single-flight deduplication (a concurrent
    identical request that waited on an in-flight solve rather than
    solving again).  ``queue_depth``/``queue_depth_max`` are sampled at
    enqueue time.
    """

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.shed = 0
        self.rejected = 0
        self.worker_respawns = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.inflight_dedup = 0
        self.queue_depth = 0
        self.queue_depth_max = 0
        self.latency = LatencyStats()
        self.by_scheduler: Dict[str, SchedulerLane] = {}

    # -- updates -------------------------------------------------------
    def lane(self, scheduler: str) -> SchedulerLane:
        if scheduler not in self.by_scheduler:
            self.by_scheduler[scheduler] = SchedulerLane()
        return self.by_scheduler[scheduler]

    def observe_queue(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.queue_depth_max:
            self.queue_depth_max = depth

    def record_response(
        self,
        scheduler: str,
        latency_ms: float,
        schedule_seconds: float = 0.0,
        error: bool = False,
    ) -> None:
        self.responses += 1
        self.latency.record(latency_ms)
        lane = self.lane(scheduler)
        lane.requests += 1
        lane.latency.record(latency_ms)
        lane.schedule_seconds += schedule_seconds
        if error:
            self.errors += 1
            lane.errors += 1

    # -- derived -------------------------------------------------------
    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Hits over lookups since the daemon started (dedup excluded)."""
        lookups = self.memory_hits + self.disk_hits + self.misses
        if not lookups:
            return None
        return (self.memory_hits + self.disk_hits) / lookups

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    @property
    def throughput_rps(self) -> Optional[float]:
        elapsed = self.uptime_seconds
        return self.responses / elapsed if elapsed > 0 and self.responses else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "shed": self.shed,
            "rejected": self.rejected,
            "worker_respawns": self.worker_respawns,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency.to_dict(),
            "queue": {"depth": self.queue_depth, "depth_max": self.queue_depth_max},
            "cache": {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "inflight_dedup": self.inflight_dedup,
                "hit_rate": self.cache_hit_rate,
            },
            "by_scheduler": {
                name: lane.to_dict() for name, lane in sorted(self.by_scheduler.items())
            },
        }


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
#: Metric-name prefix of every exposed sample.
PROMETHEUS_PREFIX = "repro"

#: (suffix, type, help, extractor) — the scalar samples of one snapshot.
_SCALAR_METRICS: Tuple[Tuple[str, str, str, str], ...] = (
    ("requests_total", "counter", "Accepted schedule requests.", "requests"),
    ("responses_total", "counter", "Responses sent.", "responses"),
    ("errors_total", "counter", "Responses carrying a cell error.", "errors"),
    ("shed_total", "counter", "Requests shed for a full queue.", "shed"),
    ("rejected_total", "counter", "Malformed or shutting-down rejections.", "rejected"),
    ("worker_respawns_total", "counter", "Pool worker respawns.", "worker_respawns"),
    ("cache_memory_hits_total", "counter", "Memory-tier cache hits.", "memory_hits"),
    ("cache_disk_hits_total", "counter", "Disk-tier cache hits.", "disk_hits"),
    ("cache_misses_total", "counter", "Cache misses (real solves).", "misses"),
    ("cache_inflight_dedup_total", "counter",
     "Requests coalesced onto an in-flight solve.", "inflight_dedup"),
    ("queue_depth", "gauge", "Dispatch queue depth at last enqueue.", "queue_depth"),
    ("queue_depth_max", "gauge", "High-water dispatch queue depth.", "queue_depth_max"),
)

#: Latency quantiles exposed as ``request_latency_ms{quantile="..."}``.
_LATENCY_QUANTILES = ((50, "0.5"), (90, "0.9"), (99, "0.99"))


def _prom_value(value: Optional[float]) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def render_prometheus(metrics: ServiceMetrics) -> str:
    """One ServiceMetrics snapshot in Prometheus text exposition format.

    Served by the daemon's ``--metrics-port`` HTTP listener and by the
    ``metrics`` wire op; :func:`parse_prometheus` reads it back, and the
    pair round-trips every counter of :meth:`ServiceMetrics.to_dict`.
    """
    p = PROMETHEUS_PREFIX
    lines: List[str] = []

    def emit(suffix: str, kind: str, help_text: str,
             samples: List[Tuple[str, Optional[float]]]) -> None:
        lines.append(f"# HELP {p}_{suffix} {help_text}")
        lines.append(f"# TYPE {p}_{suffix} {kind}")
        for labels, value in samples:
            lines.append(f"{p}_{suffix}{labels} {_prom_value(value)}")

    for suffix, kind, help_text, attr in _SCALAR_METRICS:
        emit(suffix, kind, help_text, [("", float(getattr(metrics, attr)))])
    emit("uptime_seconds", "gauge", "Seconds since daemon start.",
         [("", metrics.uptime_seconds)])
    emit("cache_hit_ratio", "gauge", "Cache hits over lookups since start.",
         [("", metrics.cache_hit_rate)])
    emit("throughput_rps", "gauge", "Responses per second since start.",
         [("", metrics.throughput_rps)])
    emit(
        "request_latency_ms", "summary",
        "Client-visible request latency quantiles (milliseconds).",
        [(f'{{quantile="{label}"}}', metrics.latency.percentile(pct))
         for pct, label in _LATENCY_QUANTILES]
        + [('{quantile="max"}', metrics.latency.max_ms if metrics.latency.count else None)],
    )
    emit("request_latency_samples", "counter", "Latency samples recorded.",
         [("", float(metrics.latency.count))])
    for suffix, kind, help_text, getter in (
        ("scheduler_requests_total", "counter",
         "Requests answered per scheduler.", lambda lane: float(lane.requests)),
        ("scheduler_errors_total", "counter",
         "Erroring requests per scheduler.", lambda lane: float(lane.errors)),
        ("scheduler_schedule_seconds_total", "counter",
         "Accumulated solver seconds per scheduler.",
         lambda lane: lane.schedule_seconds),
    ):
        emit(suffix, kind, help_text, [
            (f'{{scheduler="{name}"}}', getter(lane))
            for name, lane in sorted(metrics.by_scheduler.items())
        ])
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Optional[float]]:
    """Exposition text back to ``{sample_key: value}`` (NaN → None).

    The key keeps labels verbatim (``repro_scheduler_requests_total
    {scheduler="sgi"}`` style, without the space), so round-trip tests can
    compare directly against :func:`render_prometheus` inputs.
    """
    samples: Dict[str, Optional[float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            continue
        number = float(value)
        samples[key] = None if math.isnan(number) else number
    return samples


# ----------------------------------------------------------------------
# Structured slow-request log
# ----------------------------------------------------------------------
class SlowRequestLog:
    """NDJSON log of requests slower than a threshold.

    The daemon calls :meth:`observe` with the request's summary record on
    every response; entries at or above ``threshold_ms`` are appended as
    one JSON object per line (the service analogue of a database's slow
    query log).  Appends reopen the file each time — slow requests are by
    definition rare, and reopening keeps the log tail-safe and rotation-
    friendly.
    """

    def __init__(self, path, threshold_ms: float = 1000.0):
        self.path = pathlib.Path(path)
        self.threshold_ms = float(threshold_ms)
        self.emitted = 0

    def observe(self, record: Mapping[str, Any]) -> bool:
        """Log ``record`` when its ``latency_ms`` crosses the threshold."""
        latency = record.get("latency_ms")
        if latency is None or float(latency) < self.threshold_ms:
            return False
        entry = {"ts": time.time(), "threshold_ms": self.threshold_ms, **record}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self.emitted += 1
        return True

    def entries(self) -> List[Dict[str, Any]]:
        """Parse the log back (for tests and post-mortems)."""
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                continue
        return out
