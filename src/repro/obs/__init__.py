"""repro.obs — tracing, metrics and search-effort profiling.

The observability subsystem for all three pipeliners.  Three layers:

* :mod:`repro.obs.recorder` — spans, instant events and counters behind a
  process-wide recorder.  Disabled (the default) it is a set of no-ops;
  enabled it buffers Chrome-trace-shaped events and aggregates counters.
* :mod:`repro.obs.export` — JSONL spools, Chrome trace-event export
  (``chrome://tracing`` / Perfetto), merging and validation.
* :mod:`repro.obs.report` — the per-loop search-effort table behind
  ``python -m repro trace`` (SGI B&B nodes vs MOST ILP nodes vs wall
  time: the paper's §4.7 scheduling-time comparison).
* :mod:`repro.obs.explain` — II-gap attribution: which constraint
  (recurrence, resource, register pressure, bank pairing, search budget)
  binds each loop's achieved II, behind ``python -m repro explain``.
* :mod:`repro.obs.diffbench` — BENCH_*.json regression diffing with
  cause attribution, behind ``python -m repro diff``.
* :mod:`repro.obs.service` — request latency percentiles, queue depth,
  load-shedding and cache-tier counters for the scheduling daemon
  (:mod:`repro.serve`), rendered into ``BENCH_service.json``, plus the
  Prometheus text exposition and the NDJSON slow-request log.
* :mod:`repro.obs.history` — the append-only run-history store
  (``benchmarks/history/<name>/<ts>__<sha12>.json``) every bench,
  serve-selftest and microbench run files itself into, stamped by
  :mod:`repro.obs.provenance` (git SHA, host fingerprint, versions).
* :mod:`repro.obs.stats` / :mod:`repro.obs.trend` — stdlib rank
  statistics (Mann–Whitney U, Cliff's delta, bootstrap CIs, Kendall
  tau) and the per-series trend verdicts (stable / noisy / drift /
  step_change with commit-range attribution) behind
  ``python -m repro trend`` and ``repro diff --trend``.
* :mod:`repro.obs.html` — the self-contained ``report.html`` dashboard
  behind ``python -m repro report --html``.

Typical use::

    from repro.obs import recording
    from repro.obs.export import write_chrome_trace

    with recording() as rec:
        pipeline_loop(loop)
    print(rec.counters["bnb.placements"], rec.counters["bnb.backtracks"])
    write_chrome_trace(rec, "trace.json")

Counter namespace (aggregated per recorder, folded into ``BENCH_*.json``
by repro.exec): ``bnb.*`` (placements, backtracks, prune.<reason>),
``ii.attempts``, ``spill.rounds``/``spill.values``, ``regalloc.*``,
``ilp.*`` (solves, nodes, simplex_iters, node_limit_hits),
``most.budget_slice_seconds`` and ``rau.*`` (placements, evictions).
"""

from .recorder import (
    NULL,
    NullRecorder,
    Recorder,
    TraceRecorder,
    get_recorder,
    recording,
    set_recorder,
)
from .export import (
    merge_jsonl,
    read_jsonl,
    validate_chrome_trace_file,
    validate_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from .report import aggregate_counters, effort_rows, format_effort_table
from .service import LatencyStats, ServiceMetrics

# Heavier analysis layers (explain, diffbench, html) are imported lazily by
# their users: repro.obs is imported by the core pipeliners, and pulling the
# analysis layers in here would close an import cycle.


def counter_signature(counters, prefix=""):
    """AFL-style coverage signature of a counter mapping.

    Buckets every counter value into its power-of-two magnitude (``0``,
    ``1``, ``2-3``, ``4-7``, ...) and returns the frozen set of
    ``(prefix+name, bucket)`` pairs.  Two runs share a signature element
    exactly when a search statistic landed in the same magnitude class —
    the coverage signal the differential fuzzer (:mod:`repro.fuzz`) uses
    to decide a generated loop exercised new search behaviour (new prune
    reason, an order of magnitude more B&B nodes, first simplex
    iteration, ...) rather than merely a new shape.
    """
    sig = set()
    for name, value in counters.items():
        try:
            bucket = int(value).bit_length()
        except (TypeError, ValueError):
            continue
        sig.add((f"{prefix}{name}", bucket))
    return frozenset(sig)

__all__ = [
    "NULL",
    "NullRecorder",
    "Recorder",
    "TraceRecorder",
    "get_recorder",
    "set_recorder",
    "recording",
    "write_jsonl",
    "read_jsonl",
    "merge_jsonl",
    "write_chrome_trace",
    "validate_trace_events",
    "validate_chrome_trace_file",
    "effort_rows",
    "format_effort_table",
    "aggregate_counters",
    "counter_signature",
]
