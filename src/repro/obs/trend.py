"""Statistical trend detection over the run-history store.

Where :mod:`repro.obs.diffbench` answers "did these two runs differ?",
this module answers the longitudinal question: across the last N stored
runs, is each metric series **stable**, **noisy**, **drifting**, or did
it take a **step change** — and if it stepped, at which run, i.e. which
commit range is responsible?

Classification per series (:func:`classify_series`):

``step_change``
    The best split of the series into a before/after pair shows a median
    shift of at least ``STEP_REL`` (30%) that is statistically credible —
    a significant Mann-Whitney test, or complete separation (|Cliff's
    delta| = 1) when the samples are too small for p < α to be reachable
    at all — and the jump is concentrated at the split boundary.  The
    changepoint index maps to the commit range between the two runs.
``drift``
    No single credible step, but the series is strongly monotone in time
    (|Kendall τ| ≥ 0.7) and has moved at least ``DRIFT_REL`` (25%) end
    to end.  Pure noise cannot reach both gates at once.
``noisy``
    Neither of the above, with a coefficient of variation above
    ``NOISE_CV`` (10%) — real scatter, no direction.
``stable``
    Everything else, including series too short to judge (< 4 runs).

Timing/latency series going *up* and quality series (II) going anywhere
but down are regressions; ``repro trend <name> --check`` exits non-zero
on any, and ``repro diff --trend`` escalates a warn-only timing delta to
a regression when the trend layer confirms the fresh run starts a step.
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .history import DEFAULT_HISTORY_DIR, HistoryStore, RunRecord
from .stats import (
    bootstrap_ci,
    cliffs_delta,
    kendall_tau,
    mann_whitney_u,
    mean,
    median,
    stdev,
)

#: Classification thresholds — module constants so tests and docs can
#: reference the exact gates.
MIN_RUNS = 4          # fewer stored runs than this → "stable" (insufficient)
ALPHA = 0.05          # two-sided Mann-Whitney significance
STEP_REL = 0.30       # relative median shift that counts as a step
STEP_CONCENTRATION = 0.5  # fraction of the shift the boundary jump must carry
DRIFT_TAU = 0.7       # |Kendall tau| gate for drift
DRIFT_REL = 0.25      # end-to-end relative change gate for drift
NOISE_CV = 0.10       # coefficient of variation above which a flat series is "noisy"

CLASSES = ("stable", "noisy", "drift", "step_change")

_EPS = 1e-12


@dataclass
class SeriesVerdict:
    """What one metric series is doing over time."""

    classification: str                 # one of CLASSES
    changepoint: Optional[int] = None   # run index of the first post-step run
    p_value: Optional[float] = None
    effect: Optional[float] = None      # Cliff's delta across the best split
    rel_change: Optional[float] = None  # relative median shift (step) or end-to-end (drift)
    direction: Optional[str] = None     # "up" | "down"
    detail: str = ""
    pre_ci: Optional[Tuple[float, float]] = None
    post_ci: Optional[Tuple[float, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "classification": self.classification,
            "changepoint": self.changepoint,
            "p_value": self.p_value,
            "effect": self.effect,
            "rel_change": self.rel_change,
            "direction": self.direction,
            "detail": self.detail,
            "pre_ci": list(self.pre_ci) if self.pre_ci else None,
            "post_ci": list(self.post_ci) if self.post_ci else None,
        }


def classify_series(
    values: Sequence[Optional[float]],
    alpha: float = ALPHA,
    min_runs: int = MIN_RUNS,
    step_rel: float = STEP_REL,
    drift_tau: float = DRIFT_TAU,
    drift_rel: float = DRIFT_REL,
    noise_cv: float = NOISE_CV,
) -> SeriesVerdict:
    """Classify one metric series (None entries are missing runs)."""
    points = [(i, float(v)) for i, v in enumerate(values) if v is not None]
    vals = [v for _, v in points]
    n = len(vals)
    if n < min_runs:
        return SeriesVerdict(
            "stable", detail=f"insufficient history ({n} of {min_runs} runs)"
        )
    if max(vals) == min(vals):
        return SeriesVerdict("stable", detail="constant")

    # Best before/after split: maximise separation, break ties towards
    # the split the rank test finds most credible, then shift size.  The
    # right side may be a single run — that is exactly the "fresh run
    # introduced a step" case ``repro diff --trend`` gates on.
    best: Optional[Tuple[Tuple[float, float, float], int]] = None
    for k in range(2, n):
        delta = cliffs_delta(vals[:k], vals[k:]) or 0.0
        rel = (median(vals[k:]) - median(vals[:k])) / max(abs(median(vals[:k])), _EPS)
        p = mann_whitney_u(vals[:k], vals[k:]).p_value
        score = (abs(delta), -(p if p is not None else 1.0), abs(rel))
        if best is None or score > best[0]:
            best = (score, k)
    assert best is not None  # n >= 4 guarantees at least one split
    k = best[1]
    left, right = vals[:k], vals[k:]
    delta = cliffs_delta(left, right) or 0.0
    pre_med, post_med = median(left), median(right)
    rel = (post_med - pre_med) / max(abs(pre_med), _EPS)
    mwu = mann_whitney_u(left, right)
    significant = mwu.p_value is not None and mwu.p_value < alpha
    separated = abs(delta) >= 1.0 - _EPS

    if abs(rel) >= step_rel and (significant or separated):
        shift = post_med - pre_med
        jump = vals[k] - vals[k - 1]
        concentrated = shift != 0 and jump / shift >= STEP_CONCENTRATION
        if concentrated:
            return SeriesVerdict(
                "step_change",
                changepoint=points[k][0],
                p_value=mwu.p_value,
                effect=delta,
                rel_change=rel,
                direction="up" if rel > 0 else "down",
                detail=(
                    f"median {pre_med:.4g} -> {post_med:.4g} "
                    f"({rel:+.0%}) at run {points[k][0]}"
                ),
                pre_ci=bootstrap_ci(left),
                post_ci=bootstrap_ci(right),
            )

    tau = kendall_tau(vals) or 0.0
    end_rel = (median(vals[-2:]) - median(vals[:2])) / max(abs(median(vals[:2])), _EPS)
    if abs(tau) >= drift_tau and abs(end_rel) >= drift_rel:
        return SeriesVerdict(
            "drift",
            p_value=mwu.p_value,
            effect=delta,
            rel_change=end_rel,
            direction="up" if end_rel > 0 else "down",
            detail=f"monotone (tau {tau:+.2f}), {end_rel:+.0%} end to end",
            pre_ci=bootstrap_ci(left),
            post_ci=bootstrap_ci(right),
        )

    mu = mean(vals)
    cv = stdev(vals) / max(abs(mu), _EPS)
    if cv > noise_cv:
        return SeriesVerdict(
            "noisy",
            p_value=mwu.p_value,
            effect=delta,
            rel_change=rel,
            detail=f"cv {cv:.0%} with no credible direction",
            pre_ci=bootstrap_ci(vals),
        )
    return SeriesVerdict(
        "stable",
        p_value=mwu.p_value,
        effect=delta,
        rel_change=rel,
        detail=f"cv {cv:.0%}",
        pre_ci=bootstrap_ci(vals),
    )


# ---------------------------------------------------------------------------
# Metric-series extraction from stored runs.
# ---------------------------------------------------------------------------


@dataclass
class MetricTrend:
    """One metric's series across the stored runs, with its verdict."""

    metric: str
    kind: str            # "timing" | "quality" | "latency" | "rate"
    bad_direction: str   # which direction is a regression
    values: List[Optional[float]]
    verdict: SeriesVerdict
    commit_range: Optional[Tuple[str, str]] = None  # (sha before, sha after)

    @property
    def moved(self) -> bool:
        return self.verdict.classification in ("drift", "step_change")

    @property
    def regression(self) -> bool:
        return self.moved and self.verdict.direction == self.bad_direction

    @property
    def improvement(self) -> bool:
        return self.moved and self.verdict.direction not in (None, self.bad_direction)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "kind": self.kind,
            "bad_direction": self.bad_direction,
            "values": self.values,
            "verdict": self.verdict.to_dict(),
            "commit_range": list(self.commit_range) if self.commit_range else None,
            "regression": self.regression,
            "improvement": self.improvement,
        }


def _totals(run: RunRecord) -> Mapping[str, Any]:
    return run.payload.get("totals") or {}


def collect_metric_series(
    runs: Sequence[RunRecord],
) -> List[Tuple[str, str, str, List[Optional[float]]]]:
    """(metric, kind, bad_direction, values) for every tracked series."""
    series: List[Tuple[str, str, str, List[Optional[float]]]] = []

    schedulers = sorted({
        s for run in runs for s in (_totals(run).get("by_scheduler") or {})
    })
    for sched in schedulers:
        vals = [
            ((_totals(run).get("by_scheduler") or {}).get(sched) or {}).get("schedule_seconds")
            for run in runs
        ]
        series.append((f"{sched} total schedule_seconds", "timing", "up", vals))

    # Per-cell II and schedule time, aligned on (loop, scheduler).
    indexed: List[Dict[Tuple[str, str], Mapping[str, Any]]] = []
    keys: List[Tuple[str, str]] = []
    seen = set()
    for run in runs:
        table: Dict[Tuple[str, str], Mapping[str, Any]] = {}
        for cell in run.payload.get("cells") or []:
            loop, sched = cell.get("loop"), cell.get("scheduler")
            if not loop or not sched:
                continue
            table.setdefault((loop, sched), cell)
            if (loop, sched) not in seen:
                seen.add((loop, sched))
                keys.append((loop, sched))
        indexed.append(table)
    for loop, sched in sorted(keys):
        cells = [table.get((loop, sched)) for table in indexed]
        series.append((
            f"{loop} × {sched} II", "quality", "up",
            [None if c is None else c.get("ii") for c in cells],
        ))
        series.append((
            f"{loop} × {sched} schedule_seconds", "timing", "up",
            [None if c is None else c.get("schedule_seconds") for c in cells],
        ))

    # Service latency percentiles and the cache hit rate.
    if any(_totals(run).get("service") for run in runs):
        for name in ("p50_ms", "p99_ms"):
            vals = [
                ((_totals(run).get("service") or {}).get("latency_ms") or {}).get(name)
                for run in runs
            ]
            series.append((f"service latency {name}", "latency", "up", vals))
        series.append((
            "service hit_rate", "rate", "down",
            [(_totals(run).get("service") or {}).get("hit_rate") for run in runs],
        ))

    # Micro hot-path kernels (BENCH_micro: flat name -> best seconds).
    benches = sorted({b for run in runs for b in (run.payload.get("benches") or {})})
    for bench in benches:
        vals = [(run.payload.get("benches") or {}).get(bench) for run in runs]
        series.append((f"micro {bench} seconds", "timing", "up", vals))
    return series


@dataclass
class TrendReport:
    """Every tracked metric of one history name, classified."""

    name: str
    runs: List[RunRecord]
    entries: List[MetricTrend]

    @property
    def regressions(self) -> List[MetricTrend]:
        return [e for e in self.entries if e.regression]

    @property
    def improvements(self) -> List[MetricTrend]:
        return [e for e in self.entries if e.improvement]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def by_class(self) -> Dict[str, int]:
        out = {cls: 0 for cls in CLASSES}
        for entry in self.entries:
            out[entry.verdict.classification] += 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "runs": [run.meta() for run in self.runs],
            "by_class": self.by_class(),
            "ok": self.ok,
            "entries": [e.to_dict() for e in self.entries],
        }

    def formatted(self, verbose: bool = False) -> str:
        lines: List[str] = []
        span = ""
        if self.runs:
            first, last = self.runs[0], self.runs[-1]
            span = f" ({first.sha12} .. {last.sha12})"
        lines.append(
            f"{self.name}: {len(self.runs)} stored runs{span}, "
            f"{len(self.entries)} metric series"
        )
        if len(self.runs) < MIN_RUNS:
            lines.append(
                f"  fewer than {MIN_RUNS} runs — trend verdicts default to "
                "'stable' until more history accumulates"
            )
        counts = self.by_class()
        lines.append(
            "  " + ", ".join(f"{cls}: {counts[cls]}" for cls in CLASSES)
        )
        for entry in self.entries:
            verdict = entry.verdict
            if not verbose and verdict.classification == "stable":
                continue
            flag = ""
            if entry.regression:
                flag = "  REGRESSION"
            elif entry.improvement:
                flag = "  improvement"
            commits = (
                f" commits {entry.commit_range[0]}..{entry.commit_range[1]}"
                if entry.commit_range else ""
            )
            p = "-" if verdict.p_value is None else f"{verdict.p_value:.3f}"
            lines.append(
                f"  {verdict.classification:<12} {entry.metric}: "
                f"{verdict.detail} [p={p}]{commits}{flag}"
            )
        if self.ok:
            lines.append("no trend regressions")
        else:
            lines.append(f"{len(self.regressions)} trend regressions")
        return "\n".join(lines)


def build_trend(name: str, runs: Sequence[RunRecord], **thresholds) -> TrendReport:
    """Classify every tracked metric series of ``runs``."""
    runs = list(runs)
    entries: List[MetricTrend] = []
    for metric, kind, bad, values in collect_metric_series(runs):
        verdict = classify_series(values, **thresholds)
        commit_range = None
        cp = verdict.changepoint
        if cp is not None and 0 < cp < len(runs):
            commit_range = (runs[cp - 1].sha12, runs[cp].sha12)
        entries.append(MetricTrend(
            metric=metric, kind=kind, bad_direction=bad,
            values=values, verdict=verdict, commit_range=commit_range,
        ))
    return TrendReport(name=name, runs=runs, entries=entries)


def trend_report(
    name: str,
    history_dir=DEFAULT_HISTORY_DIR,
    last: Optional[int] = 20,
    **thresholds,
) -> TrendReport:
    """The trend report over the stored history of ``name``."""
    store = HistoryStore(history_dir)
    return build_trend(name, store.runs(name, last=last), **thresholds)


def trend_with_payload(
    name: str,
    payload: Mapping[str, Any],
    history_dir=DEFAULT_HISTORY_DIR,
    last: Optional[int] = 20,
    **thresholds,
) -> TrendReport:
    """Trend over stored history plus one fresh (unfiled) payload.

    ``repro diff --trend`` uses this to judge the run being diffed as the
    newest point of the series without committing it to the store first.
    """
    store = HistoryStore(history_dir)
    runs = store.runs(name, last=None)
    prov = payload.get("provenance") or {}
    fresh = RunRecord(
        name=name,
        path=pathlib.Path("<fresh>"),
        created_at=payload.get("created_at"),
        git_sha=prov.get("git_sha"),
        code_version=payload.get("code_version"),
        host_fingerprint=prov.get("host_fingerprint"),
        payload=dict(payload),
    )
    runs = runs + [fresh]
    if last is not None and last > 0:
        runs = runs[-last:]
    return build_trend(name, runs, **thresholds)


# ---------------------------------------------------------------------------
# History panel data for the HTML dashboard.
# ---------------------------------------------------------------------------

#: Cell-level series are only surfaced in the dashboard when they moved;
#: totals/service/micro series always are.  This caps the panel's size.
_PANEL_SUMMARY_KINDS = ("latency", "rate")


def history_panel_data(
    history_dir=DEFAULT_HISTORY_DIR,
    names: Sequence[str] = ("pipeline", "service", "micro"),
    last: Optional[int] = 20,
    max_rows: int = 60,
) -> Dict[str, Any]:
    """Render-ready history series + verdicts for ``repro report``."""
    store = HistoryStore(history_dir)
    histories: List[Dict[str, Any]] = []
    for name in names:
        runs = store.runs(name, last=last)
        if not runs:
            continue
        report = build_trend(name, runs)
        rows: List[Dict[str, Any]] = []
        dropped = 0
        for entry in report.entries:
            summary = (
                entry.kind in _PANEL_SUMMARY_KINDS
                or "total" in entry.metric
                or entry.metric.startswith("micro ")
            )
            if not (summary or entry.moved or entry.verdict.classification == "noisy"):
                continue
            if len(rows) >= max_rows:
                dropped += 1
                continue
            rows.append(entry.to_dict())
        histories.append({
            "name": name,
            "runs": [run.meta() for run in runs],
            "by_class": report.by_class(),
            "entries": rows,
            "dropped": dropped,
        })
    return {"histories": histories}


# ---------------------------------------------------------------------------
# CLI: ``python -m repro trend``.
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro trend <name> [--check] [--json PATH|-]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro trend",
        description="Classify every metric series of a stored run history "
        "as stable, noisy, drift or step_change (with the changepoint "
        "attributed to a commit range).",
    )
    parser.add_argument(
        "name", nargs="?", default="pipeline",
        help="history series to judge: pipeline, service, micro, "
        "sweep_<corpus>, ... (default: pipeline)",
    )
    parser.add_argument(
        "--history-dir", default=str(DEFAULT_HISTORY_DIR), metavar="DIR",
        help=f"run-history root (default: {DEFAULT_HISTORY_DIR})",
    )
    parser.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="judge only the most recent N stored runs (default: 20)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any series shows a bad-direction step change or "
        "drift (timings/latency up, II up, hit rate down)",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the full report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="list every series, stable ones included",
    )
    args = parser.parse_args(argv)

    report = trend_report(args.name, history_dir=args.history_dir, last=args.last)
    if args.json_out == "-":
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.formatted(verbose=args.verbose))
        if args.json_out:
            path = pathlib.Path(args.json_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report.to_dict(), indent=1, sort_keys=True) + "\n")
            print(f"wrote {path}")
    if not report.runs:
        print(f"no stored runs for {args.name!r} under {args.history_dir}",
              file=sys.stderr)
        return 0
    if args.check and not report.ok:
        return 1
    return 0
