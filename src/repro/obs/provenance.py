"""Run provenance: who/what/where stamps for every BENCH_*.json.

``created_at`` alone cannot attribute a measurement to a commit, a
machine, or a toolchain — the three inputs a longitudinal time series
must control for before a trend verdict means anything.  Every bench
writer (the pipeline grid, the service load harness, the hot-path
microbenches) stamps :func:`provenance` into its payload, and the
run-history store (:mod:`repro.obs.history`) files records under the
git SHA so a step change in a metric series can be pinned to the commit
range that introduced it.

The hostname is deliberately fingerprinted (salted-free sha256, 12 hex
chars) rather than recorded raw: the records are committed/uploaded as
CI artifacts and need to distinguish machines, not identify them.
"""

from __future__ import annotations

import functools
import hashlib
import pathlib
import platform
import socket
import subprocess
from typing import Any, Dict, Optional


@functools.lru_cache(maxsize=1)
def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The HEAD commit of the enclosing checkout, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or str(pathlib.Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


@functools.lru_cache(maxsize=1)
def host_fingerprint() -> str:
    """A stable 12-hex-char machine id that does not leak the hostname."""
    raw = f"{socket.gethostname()}|{platform.machine()}|{platform.system()}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]


def _scipy_version() -> Optional[str]:
    try:
        import scipy  # noqa: PLC0415

        return str(scipy.__version__)
    except Exception:
        return None


def provenance() -> Dict[str, Any]:
    """The provenance block stamped into every BENCH payload."""
    return {
        "git_sha": git_sha(),
        "host_fingerprint": host_fingerprint(),
        "python_version": platform.python_version(),
        "scipy_version": _scipy_version(),
        "platform": platform.platform(),
    }


def stamp(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the provenance block to ``payload`` in place (and return it)."""
    payload["provenance"] = provenance()
    return payload
