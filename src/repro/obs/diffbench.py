"""Attributed diffing of two BENCH_*.json runs.

``benchmarks/check_regression.py`` used to walk the two JSON payloads
inline and answer only "did quality regress?".  This module is the
replacement heart: it aligns cells, computes per-cell deltas over II,
simulated cycles, registers, overhead, wall time and obs counters, and
*attributes* every changed cell to the input that moved:

``identical-inputs``
    The two cells share a ``cache_key`` — same loop IR, same machine,
    same options, same code version.  Any timing delta is runner noise;
    any quality delta would be nondeterminism (and is still reported).
``options``
    Same (loop, scheduler), different ``options_json`` — the knobs moved.
``code``
    Same inputs otherwise, but the report-level ``code_version`` differs:
    the source of the result-bearing subpackages changed.
``ir-or-machine``
    Same options and code version yet a different ``cache_key``: the loop
    IR (or machine description) itself changed under the cell.

Quality rules are machine-independent and mirror the old checker: a
raised or vanished II, a new timeout/fallback/error, higher simulated
cycles, or a disappeared cell is a **regression**; per-scheduler schedule
time is compared against a generous tolerance and only ever warned
about.  ``python -m repro diff <old> <new> [--strict]`` is the CLI.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

DEFAULT_TIME_TOLERANCE = 2.0

#: Service request latencies are millisecond-scale and dominated by event
#: loop and queueing noise, so their warn threshold is wider than the
#: schedule-time one.
SERVICE_LATENCY_TOLERANCE = 5.0

#: Numeric per-cell fields worth a delta line in the report.
DELTA_FIELDS = (
    "ii",
    "min_ii",
    "registers_used",
    "overhead_cycles",
    "spill_rounds",
    "n_stages",
    "schedule_seconds",
    "wall_seconds",
)


def load_bench(path, name: str = "pipeline") -> Dict[str, Any]:
    """Load one BENCH payload from a file or a directory.

    A directory is resolved to its ``BENCH_<name>.json`` (falling back to
    the single ``BENCH_*.json`` it contains, so ``repro diff
    benchmarks/baseline benchmarks/output`` just works).
    """
    path = pathlib.Path(path)
    if path.is_dir():
        candidate = path / f"BENCH_{name}.json"
        if not candidate.exists():
            matches = sorted(path.glob("BENCH_*.json"))
            if len(matches) != 1:
                raise FileNotFoundError(
                    f"{path} holds {len(matches)} BENCH_*.json files; "
                    f"expected {candidate.name} or exactly one"
                )
            candidate = matches[0]
        path = candidate
    return json.loads(path.read_text())


def _cell_key(cell: Mapping[str, Any]) -> Tuple[str, str, str]:
    return (cell["loop"], cell["scheduler"], cell.get("options_json", "{}"))


@dataclass
class CellDelta:
    """One aligned cell pair (or an unmatched cell) and what moved."""

    loop: str
    scheduler: str
    #: "regression" | "improvement" | "unchanged" | "noise" | "added" | "removed"
    status: str
    #: "identical-inputs" | "options" | "code" | "ir-or-machine" | "new" | "gone"
    cause: str
    deltas: Dict[str, Tuple[Any, Any]] = field(default_factory=dict)
    obs_deltas: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.loop} × {self.scheduler}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "scheduler": self.scheduler,
            "status": self.status,
            "cause": self.cause,
            "deltas": {k: list(v) for k, v in self.deltas.items()},
            "obs_deltas": self.obs_deltas,
            "notes": self.notes,
        }


@dataclass
class BenchDiff:
    """The attributed comparison of two bench runs."""

    old_name: str
    new_name: str
    old_code_version: Optional[str]
    new_code_version: Optional[str]
    cells: List[CellDelta] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    infos: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def by_cause(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for cell in self.cells:
            if cell.status in ("unchanged", "noise"):
                continue
            out[cell.cause] = out.get(cell.cause, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "old": self.old_name,
            "new": self.new_name,
            "old_code_version": self.old_code_version,
            "new_code_version": self.new_code_version,
            "by_cause": self.by_cause,
            "regressions": self.regressions,
            "warnings": self.warnings,
            "infos": self.infos,
            "cells": [c.to_dict() for c in self.cells],
        }

    def formatted(self, verbose: bool = False) -> str:
        lines: List[str] = []
        changed = [c for c in self.cells if c.status not in ("unchanged", "noise")]
        for line in self.infos:
            lines.append(f"info: {line}")
        for line in self.warnings:
            lines.append(f"WARNING: {line}")
        for line in self.regressions:
            lines.append(f"REGRESSION: {line}")
        if verbose or changed:
            for cell in self.cells:
                if not verbose and cell.status in ("unchanged", "noise"):
                    continue
                moved = ", ".join(
                    f"{name} {old} -> {new}"
                    for name, (old, new) in cell.deltas.items()
                )
                lines.append(
                    f"  {cell.label}: {cell.status} [{cell.cause}]"
                    + (f" {moved}" if moved else "")
                )
        if self.by_cause:
            lines.append(
                "changed cells by cause: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.by_cause.items()))
            )
        if self.ok and not self.warnings:
            lines.append(
                f"no regressions: {self.new_name} vs {self.old_name} "
                f"({len(self.cells)} aligned cells)"
            )
        return "\n".join(lines)


def _number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _cause(old: Mapping[str, Any], new: Mapping[str, Any], code_changed: bool) -> str:
    if old.get("options_json", "{}") != new.get("options_json", "{}"):
        return "options"
    old_key, new_key = old.get("cache_key"), new.get("cache_key")
    if old_key and new_key and old_key == new_key:
        return "identical-inputs"
    if code_changed:
        return "code"
    return "ir-or-machine"


def _align(
    old_cells: Sequence[Mapping[str, Any]],
    new_cells: Sequence[Mapping[str, Any]],
) -> Tuple[List[Tuple[Mapping, Mapping]], List[Mapping], List[Mapping]]:
    """Pair cells: exact (loop, scheduler, options) first, then the
    (loop, scheduler) leftovers (an option-only change keeps its pair)."""
    old_by_key = {_cell_key(c): c for c in old_cells}
    new_by_key = {_cell_key(c): c for c in new_cells}
    pairs = [
        (old_by_key[k], new_by_key[k])
        for k in sorted(set(old_by_key) & set(new_by_key))
    ]
    old_rest = [old_by_key[k] for k in sorted(set(old_by_key) - set(new_by_key))]
    new_rest = [new_by_key[k] for k in sorted(set(new_by_key) - set(old_by_key))]

    def pair_key(cell: Mapping[str, Any]) -> Tuple[str, str]:
        return (cell["loop"], cell["scheduler"])

    new_by_pair: Dict[Tuple[str, str], List[Mapping]] = {}
    for cell in new_rest:
        new_by_pair.setdefault(pair_key(cell), []).append(cell)
    removed: List[Mapping] = []
    for cell in old_rest:
        bucket = new_by_pair.get(pair_key(cell))
        if bucket:
            pairs.append((cell, bucket.pop(0)))
        else:
            removed.append(cell)
    added = [c for bucket in new_by_pair.values() for c in bucket]
    return pairs, removed, added


def diff_reports(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> BenchDiff:
    """Align and attribute two BENCH payloads."""
    diff = BenchDiff(
        old_name=old.get("name", "old"),
        new_name=new.get("name", "new"),
        old_code_version=old.get("code_version"),
        new_code_version=new.get("code_version"),
    )
    code_changed = diff.old_code_version != diff.new_code_version
    if code_changed:
        diff.infos.append(
            "code_version differs from baseline (expected after source "
            "changes; refresh the baseline when intentional)"
        )

    pairs, removed, added = _align(old.get("cells", []), new.get("cells", []))
    for cell in removed:
        delta = CellDelta(
            loop=cell["loop"], scheduler=cell["scheduler"],
            status="removed", cause="gone",
        )
        diff.cells.append(delta)
        diff.regressions.append(f"cell disappeared: {delta.label}")
    for cell in added:
        delta = CellDelta(
            loop=cell["loop"], scheduler=cell["scheduler"],
            status="added", cause="new",
        )
        diff.cells.append(delta)
        diff.infos.append(f"new cell (not in baseline): {delta.label}")

    for old_cell, new_cell in pairs:
        delta = _diff_cell(old_cell, new_cell, code_changed, diff)
        diff.cells.append(delta)

    _time_warnings(old, new, time_tolerance, diff)
    diff.cells.sort(key=lambda c: (c.loop, c.scheduler))
    return diff


def _diff_cell(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    code_changed: bool,
    diff: BenchDiff,
) -> CellDelta:
    delta = CellDelta(
        loop=new["loop"],
        scheduler=new["scheduler"],
        status="unchanged",
        cause=_cause(old, new, code_changed),
    )
    label = delta.label
    quality_regressed = False
    quality_improved = False

    for name in DELTA_FIELDS:
        old_v, new_v = old.get(name), new.get(name)
        if old_v != new_v:
            delta.deltas[name] = (old_v, new_v)
    if old.get("options_json", "{}") != new.get("options_json", "{}"):
        delta.deltas["options_json"] = (
            old.get("options_json"), new.get("options_json"),
        )

    old_ii, new_ii = old.get("ii"), new.get("ii")
    if new_ii is None or (old_ii is not None and new_ii > old_ii):
        diff.regressions.append(f"II regressed: {label} {old_ii} -> {new_ii}")
        quality_regressed = True
    elif old_ii is not None and new_ii < old_ii:
        diff.infos.append(f"II improved: {label} {old_ii} -> {new_ii}")
        quality_improved = True

    for flag in ("timeout", "fallback"):
        if new.get(flag) and not old.get(flag):
            diff.regressions.append(f"new {flag}: {label}")
            delta.deltas[flag] = (old.get(flag), new.get(flag))
            quality_regressed = True
        elif old.get(flag) and not new.get(flag):
            delta.notes.append(f"{flag} cleared")
            delta.deltas[flag] = (old.get(flag), new.get(flag))
            quality_improved = True
    if new.get("error") and not old.get("error"):
        diff.regressions.append(f"new error: {label}")
        delta.deltas["error"] = (old.get("error"), new.get("error"))
        quality_regressed = True

    old_cycles = old.get("sim_cycles", {}) or {}
    new_cycles = new.get("sim_cycles", {}) or {}
    for trips in sorted(set(old_cycles) & set(new_cycles)):
        if new_cycles[trips] > old_cycles[trips]:
            diff.regressions.append(
                f"sim cycles regressed: {label} trips={trips} "
                f"{old_cycles[trips]:.0f} -> {new_cycles[trips]:.0f}"
            )
            delta.deltas[f"sim_cycles[{trips}]"] = (
                old_cycles[trips], new_cycles[trips],
            )
            quality_regressed = True
        elif new_cycles[trips] < old_cycles[trips]:
            quality_improved = True

    old_obs = old.get("obs", {}) or {}
    new_obs = new.get("obs", {}) or {}
    for name in sorted(set(old_obs) | set(new_obs)):
        moved = new_obs.get(name, 0) - old_obs.get(name, 0)
        if moved:
            delta.obs_deltas[name] = moved

    if quality_regressed:
        delta.status = "regression"
    elif quality_improved:
        delta.status = "improvement"
    elif delta.deltas:
        # Only machine-dependent fields moved (timings, or register/
        # overhead jitter without a cycle-count consequence).
        only_time = all(
            name in ("schedule_seconds", "wall_seconds")
            for name in delta.deltas
        )
        delta.status = "noise" if only_time and delta.cause == "identical-inputs" else "changed"
    if delta.status == "changed" and delta.cause == "identical-inputs":
        # Same inputs, different non-timing outputs: nondeterminism.
        diff.warnings.append(
            f"nondeterministic outputs for {label}: "
            + ", ".join(sorted(set(delta.deltas) - {"schedule_seconds", "wall_seconds"}))
        )
    return delta


def _time_warnings(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    time_tolerance: float,
    diff: BenchDiff,
) -> None:
    """Per-scheduler schedule time, warn-only (machines differ)."""
    old_by = (old.get("totals", {}) or {}).get("by_scheduler", {})
    new_by = (new.get("totals", {}) or {}).get("by_scheduler", {})
    for scheduler in sorted(set(old_by) & set(new_by)):
        old_t = old_by[scheduler].get("schedule_seconds", 0.0)
        new_t = new_by[scheduler].get("schedule_seconds", 0.0)
        if old_t > 0 and new_t > old_t * time_tolerance:
            diff.warnings.append(
                f"schedule time up {new_t / old_t:.1f}x for {scheduler}: "
                f"{old_t:.2f}s -> {new_t:.2f}s (tolerance {time_tolerance:.1f}x)"
            )

    # Service runs (BENCH_service.json) also carry request-latency
    # percentiles; latency is as machine-dependent as schedule time, so
    # the same warn-only treatment applies.
    old_svc = (old.get("totals", {}) or {}).get("service") or {}
    new_svc = (new.get("totals", {}) or {}).get("service") or {}
    old_lat = old_svc.get("latency_ms") or {}
    new_lat = new_svc.get("latency_ms") or {}
    latency_tolerance = max(time_tolerance, SERVICE_LATENCY_TOLERANCE)
    for name in ("p50_ms", "p99_ms"):
        old_v, new_v = old_lat.get(name), new_lat.get(name)
        if old_v and new_v and new_v > old_v * latency_tolerance:
            diff.warnings.append(
                f"service latency {name[:-3]} up {new_v / old_v:.1f}x: "
                f"{old_v:.1f}ms -> {new_v:.1f}ms "
                f"(tolerance {latency_tolerance:.1f}x)"
            )


def diff_paths(
    old_path,
    new_path,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    name: str = "pipeline",
) -> BenchDiff:
    """Diff two bench files (or directories holding them)."""
    return diff_reports(
        load_bench(old_path, name), load_bench(new_path, name), time_tolerance
    )


def compare(
    fresh: Mapping[str, Any],
    baseline: Mapping[str, Any],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> Tuple[List[str], List[str], List[str]]:
    """The legacy ``check_regression.compare`` surface.

    Note the argument order: the *fresh* run first, the baseline second
    (the shim and old callers pass it that way round).
    """
    diff = diff_reports(baseline, fresh, time_tolerance)
    return diff.regressions, diff.warnings, diff.infos


def apply_trend_gating(diff: BenchDiff, trend_report) -> Dict[str, Any]:
    """Upgrade warn-only timing deltas using the history trend layer.

    A pairwise timing delta is warn-only because two runs cannot tell
    noise from a real shift.  When the stored history classifies a
    timing/latency/rate series as a *step change that starts at the fresh
    run*, the evidence is no longer pairwise — that metric becomes a
    regression (gated by ``--strict`` exactly like quality fields).
    Bad-direction drifts and steps attributed to older runs stay
    warnings, since the fresh run did not introduce them.
    """
    fresh_index = len(trend_report.runs) - 1
    for entry in trend_report.regressions:
        if entry.kind == "quality":
            continue  # quality stays strict and pairwise in the diff itself
        commits = (
            f" (commits {entry.commit_range[0]}..{entry.commit_range[1]})"
            if entry.commit_range else ""
        )
        line = (
            f"trend {entry.verdict.classification}: {entry.metric} "
            f"{entry.verdict.detail}{commits}"
        )
        if (
            entry.verdict.classification == "step_change"
            and entry.verdict.changepoint == fresh_index
        ):
            diff.regressions.append(line + " — introduced by this run")
        else:
            diff.warnings.append(line)
    return trend_report.to_dict()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro diff <old> <new> [--strict] [--trend]``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro diff",
        description="Attributed diff of two BENCH_*.json runs",
    )
    parser.add_argument("old", help="baseline bench json (file or directory)")
    parser.add_argument("new", help="fresh bench json (file or directory)")
    parser.add_argument(
        "--name", default="pipeline",
        help="which BENCH_<name>.json to resolve when old/new are "
        "directories (default: pipeline; e.g. 'service')",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=DEFAULT_TIME_TOLERANCE,
        help="per-scheduler schedule-time ratio that triggers a warning "
        f"(default: {DEFAULT_TIME_TOLERANCE})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on quality regressions (default: warn only)",
    )
    parser.add_argument(
        "--trend", action="store_true",
        help="judge the fresh run against the stored run history too: a "
        "timing/latency step change starting at this run is escalated "
        "from warning to regression",
    )
    parser.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="run-history root for --trend (default: benchmarks/history)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="list every aligned cell, changed or not",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the full diff as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    new_payload = load_bench(args.new, args.name)
    diff = diff_reports(
        load_bench(args.old, args.name), new_payload, args.time_tolerance
    )
    trend_dict = None
    if args.trend:
        from .history import DEFAULT_HISTORY_DIR
        from .trend import trend_with_payload

        history_dir = args.history_dir or DEFAULT_HISTORY_DIR
        trend = trend_with_payload(args.name, new_payload, history_dir=history_dir)
        trend_dict = apply_trend_gating(diff, trend)

    payload = diff.to_dict()
    if trend_dict is not None:
        payload["trend"] = trend_dict
    if args.json_out == "-":
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(diff.formatted(verbose=args.verbose))
        if args.json_out:
            pathlib.Path(args.json_out).write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
            )
    if diff.regressions and args.strict:
        return 1
    if diff.regressions:
        print(
            f"({len(diff.regressions)} regressions; warn-only, pass --strict to fail)",
            file=sys.stderr if args.json_out == "-" else sys.stdout,
        )
    return 0


#: Import-friendly alias (``main`` is generic; shims import this name).
diff_main = main
