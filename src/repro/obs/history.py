"""The run-history store: an append-only time series of BENCH payloads.

``repro diff`` compares exactly two runs; one pair cannot tell noise
from drift.  This store keeps *every* run — bench grid, service load
harness, hot-path micros — as a timestamped, provenance-stamped record
under ``benchmarks/history/<name>/<ts>__<sha12>.json``, where ``<ts>``
is the payload's ``created_at`` compacted to sort chronologically and
``<sha12>`` is the first 12 chars of the git SHA the run was taken at
(falling back to the code_version hash outside a checkout).  Each
record is the full BENCH payload, so any historical run can be re-diffed
or re-rendered after the fact.

A per-name ``index.json`` summarises the series (file, created_at, git
SHA, code version, cell count) — it is what the trend layer and the CI
history cache key read, and it is always regenerated from the record
files themselves, so records written by other processes (or restored
from a CI cache) are picked up on the next append or reindex.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from .provenance import provenance

DEFAULT_HISTORY_DIR = pathlib.Path("benchmarks") / "history"


def _compact_ts(created_at: Optional[str]) -> str:
    """``2026-08-08T19:29:59.123+00:00`` → ``20260808T192959.123456Z``."""
    if created_at:
        try:
            stamp = datetime.datetime.fromisoformat(created_at.replace("Z", "+00:00"))
            if stamp.tzinfo is not None:
                stamp = stamp.astimezone(datetime.timezone.utc)
            return stamp.strftime("%Y%m%dT%H%M%S.%f") + "Z"
        except ValueError:
            pass
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.strftime("%Y%m%dT%H%M%S.%f") + "Z"


@dataclass
class RunRecord:
    """One stored run: identity fields plus the full BENCH payload."""

    name: str
    path: pathlib.Path
    created_at: Optional[str]
    git_sha: Optional[str]
    code_version: Optional[str]
    host_fingerprint: Optional[str]
    payload: Dict[str, Any]

    @property
    def sha12(self) -> str:
        return (self.git_sha or self.code_version or "unknown")[:12]

    def meta(self) -> Dict[str, Any]:
        return {
            "file": self.path.name,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "code_version": self.code_version,
            "host_fingerprint": self.host_fingerprint,
            "cells": len(self.payload.get("cells", []) or []),
        }


class HistoryStore:
    """Append/load/list run records under one history root directory."""

    def __init__(self, root=DEFAULT_HISTORY_DIR):
        self.root = pathlib.Path(root)

    # -- writing -------------------------------------------------------
    def append(self, payload: Mapping[str, Any], name: Optional[str] = None) -> pathlib.Path:
        """File one BENCH payload as a history record; returns its path.

        The payload is stamped with provenance when the writer did not
        already do so, so out-of-band callers still produce attributable
        records.
        """
        payload = dict(payload)
        name = name or str(payload.get("name") or "unnamed")
        if not payload.get("provenance"):
            payload["provenance"] = provenance()
        prov = payload["provenance"]
        sha12 = (prov.get("git_sha") or payload.get("code_version") or "unknown")[:12]
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        stem = f"{_compact_ts(payload.get('created_at'))}__{sha12}"
        path = directory / f"{stem}.json"
        serial = 0
        while path.exists():
            serial += 1
            path = directory / f"{stem}-{serial}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        self.reindex(name)
        return path

    def reindex(self, name: str) -> pathlib.Path:
        """Regenerate ``index.json`` from the record files on disk."""
        runs = self.runs(name)
        index = {
            "name": name,
            "runs": [run.meta() for run in runs],
        }
        path = self.root / name / "index.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(index, indent=1, sort_keys=True) + "\n")
        return path

    # -- reading -------------------------------------------------------
    def names(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and any(child.glob("*__*.json"))
        )

    def run_paths(self, name: str) -> List[pathlib.Path]:
        directory = self.root / name
        if not directory.is_dir():
            return []
        return sorted(
            path for path in directory.glob("*.json")
            if "__" in path.name and path.name != "index.json"
        )

    def runs(self, name: str, last: Optional[int] = None) -> List[RunRecord]:
        """All stored runs of ``name``, oldest first (``last`` trims the tail)."""
        records: List[RunRecord] = []
        for path in self.run_paths(name):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            prov = payload.get("provenance") or {}
            records.append(RunRecord(
                name=name,
                path=path,
                created_at=payload.get("created_at"),
                git_sha=prov.get("git_sha"),
                code_version=payload.get("code_version"),
                host_fingerprint=prov.get("host_fingerprint"),
                payload=payload,
            ))
        records.sort(key=lambda r: (r.created_at or "", r.path.name))
        if last is not None and last > 0:
            records = records[-last:]
        return records

    def latest(self, name: str) -> Optional[RunRecord]:
        runs = self.runs(name, last=1)
        return runs[-1] if runs else None


def append_history(payload: Mapping[str, Any], history_dir=None,
                   name: Optional[str] = None) -> Optional[pathlib.Path]:
    """The writers' one-liner: append unless history is disabled (None)."""
    if history_dir is None:
        return None
    return HistoryStore(history_dir).append(payload, name=name)


def seed_from_baselines(baseline_dir, history_dir=DEFAULT_HISTORY_DIR) -> List[pathlib.Path]:
    """File every committed ``BENCH_*.json`` baseline as run zero.

    Gives a fresh checkout a non-empty history (so trend verdicts have an
    anchor) without waiting for the first nightly accumulation.  A name
    that already has stored runs is left alone, so re-running the seed on
    a populated store never duplicates run zero.
    """
    store = HistoryStore(history_dir)
    written: List[pathlib.Path] = []
    for path in sorted(pathlib.Path(baseline_dir).glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        name = str(payload.get("name") or "unnamed")
        if store.run_paths(name):
            continue
        written.append(store.append(payload))
    return written
