"""II-gap attribution: *why* did each loop get the II it got?

The paper's central quality claim — "II ≈ MinII almost everywhere" (§5) —
is only an argument once every loop's II is *attributed*: which MinII side
bound it (the critical recurrence circuit vs. the bottleneck resource),
and, for the loops scheduled above MinII, which mechanism ate the gap.
This module produces that attribution as a per-(loop × scheduler)
:class:`IIExplanation`:

* the MinII profile — ResMII vs. RecMII, the operations on the critical
  recurrence circuit (extracted from :class:`repro.core.distances.
  SccDistanceTables` at ``RecMII - 1``, where the binding circuit shows up
  as a positive self-distance), and per-resource utilization at the
  achieved II;
* when II > MinII, a **one-shot replay of the failed II−1 attempt** under
  a private trace recorder, classified from the ``IIAttempt``/BnB prune
  counters into exactly one binding-constraint class — unless a
  :mod:`repro.analyze` certificate already covers the whole gap, in which
  case the attribution **cites the certificate** (machine-checkable, and
  cheaper than the replay):

  ==================  ==================================================
  ``recurrence``      II == MinII and RecMII > ResMII (or II−1 proven
                      infeasible with the recurrence side larger)
  ``resource``        II == MinII and ResMII >= RecMII (ditto)
  ``register_pressure``  a schedule exists below the achieved II but
                      register allocation fails even after spill rounds
  ``bank_pairing``    the driver kept a higher-II bank-paired schedule
                      although II−1 was schedulable and allocatable
  ``search_budget``   the II−1 attempt died on an explicit effort budget
                      (backtrack/placement limit, ILP node/time limit)
  ``search_exhausted``  the II−1 search completed empty-handed within
                      budget (heuristic incompleteness)
  ``unschedulable``   the pipeliner produced no schedule at all
  ==================  ==================================================

All scheduler imports are lazy: ``repro.obs`` is imported by the core
pipeliners, so this module must not import them at module scope.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Every class :func:`classify` can emit — the closed vocabulary the CLI,
#: the HTML dashboard and the tests share.
BINDING_CLASSES = (
    "recurrence",
    "resource",
    "register_pressure",
    "bank_pairing",
    "search_budget",
    "search_exhausted",
    "unschedulable",
)

#: Classes that mean "the schedule is as good as the MinII bound allows".
AT_BOUND_CLASSES = ("recurrence", "resource")

EXPLAIN_SCHEDULERS = ("sgi", "most", "rau")

#: Wall-clock ceiling on one ILP replay solve; the replay is diagnostic,
#: not a benchmark, so it never inherits the full paper budget.
REPLAY_ILP_SECONDS = 5.0


# ---------------------------------------------------------------------------
# MinII profile: which side of max(ResMII, RecMII) binds, and why.
# ---------------------------------------------------------------------------


@dataclass
class MinIIProfile:
    """The two MinII sides of one loop, with their witnesses."""

    res_mii: int
    rec_mii: int
    side: str  # "recurrence" | "resource"
    #: Operations on the critical recurrence circuit (index, opcode).
    circuit: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-resource demand of one iteration (units per iteration).
    demand: Dict[str, int] = field(default_factory=dict)

    @property
    def min_ii(self) -> int:
        return max(self.res_mii, self.rec_mii)


def critical_circuit(loop, rec: Optional[int] = None) -> List[int]:
    """Operation indices on the circuit that forces RecMII.

    At ``II = RecMII - 1`` the binding recurrence is a positive-weight
    cycle, so its members are exactly the ops with a positive longest-path
    self-distance in the SCC tables.  Empty when RecMII <= 1 (no binding
    recurrence).
    """
    from ..core.distances import SccDistanceTables
    from ..core.minii import rec_mii as compute_rec_mii

    rec = compute_rec_mii(loop) if rec is None else rec
    if rec <= 1:
        return []
    tables = SccDistanceTables(loop, rec - 1)
    return [
        op.index
        for op in loop.ops
        if (tables.dist(op.index, op.index) or 0) > 0
    ]


def resource_demand(loop, machine) -> Dict[str, int]:
    """Units of each resource one loop iteration consumes."""
    demand: Dict[str, int] = {}
    for op in loop.ops:
        for resource, count in machine.table(op.opclass).totals().items():
            demand[resource] = demand.get(resource, 0) + count
    return demand


def resource_utilization(loop, machine, ii: int) -> Dict[str, float]:
    """Fraction of each resource's capacity consumed at initiation rate II."""
    if ii <= 0:
        return {}
    return {
        resource: total / (machine.availability[resource] * ii)
        for resource, total in resource_demand(loop, machine).items()
        if machine.availability.get(resource)
    }


def bottleneck_resource(loop, machine, ii: int) -> Optional[str]:
    """The most-utilized resource at II, or None for an empty loop."""
    util = resource_utilization(loop, machine, ii)
    if not util:
        return None
    return max(sorted(util), key=lambda r: util[r])


def minii_profile(loop, machine) -> MinIIProfile:
    from ..core.minii import rec_mii as compute_rec_mii
    from ..core.minii import res_mii as compute_res_mii

    res = compute_res_mii(loop, machine)
    rec = compute_rec_mii(loop)
    circuit = [
        {"index": i, "opcode": loop.ops[i].opcode}
        for i in critical_circuit(loop, rec)
    ]
    return MinIIProfile(
        res_mii=res,
        rec_mii=rec,
        # Ties go to "resource": a tied resource is at 100% utilization,
        # which is the sharper (and testable) witness.
        side="recurrence" if rec > res else "resource",
        circuit=circuit,
        demand=resource_demand(loop, machine),
    )


# ---------------------------------------------------------------------------
# The explanation record.
# ---------------------------------------------------------------------------


@dataclass
class IIExplanation:
    """One (loop × scheduler) cell's schedule quality, attributed."""

    loop: str
    scheduler: str
    success: bool
    ii: Optional[int]
    min_ii: int
    res_mii: int
    rec_mii: int
    minii_side: str  # which side of max(ResMII, RecMII) is larger
    binding: str  # one of BINDING_CLASSES
    detail: str = ""
    gap: Optional[int] = None  # ii - min_ii (None on failure)
    critical_circuit: List[Dict[str, Any]] = field(default_factory=list)
    utilization: Dict[str, float] = field(default_factory=dict)
    bottleneck: Optional[str] = None
    spill_rounds: int = 0
    spilled: List[str] = field(default_factory=list)
    fallback: bool = False
    #: Production II-attempt timeline (from recorder events, when traced).
    attempts: List[Dict[str, Any]] = field(default_factory=list)
    #: Evidence gathered by the II−1 replay (empty when gap == 0).
    replay: Dict[str, Any] = field(default_factory=dict)
    #: Modulo reservation table rows of the achieved schedule (drill-down).
    mrt: List[Dict[str, Any]] = field(default_factory=list)
    obs: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "scheduler": self.scheduler,
            "success": self.success,
            "ii": self.ii,
            "min_ii": self.min_ii,
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "minii_side": self.minii_side,
            "binding": self.binding,
            "detail": self.detail,
            "gap": self.gap,
            "critical_circuit": self.critical_circuit,
            "utilization": {k: round(v, 4) for k, v in self.utilization.items()},
            "bottleneck": self.bottleneck,
            "spill_rounds": self.spill_rounds,
            "spilled": list(self.spilled),
            "fallback": self.fallback,
            "attempts": self.attempts,
            "replay": self.replay,
            "mrt": self.mrt,
            "obs": self.obs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IIExplanation":
        known = {f for f in cls.__dataclass_fields__}  # tolerate future keys
        return cls(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> str:
        ii = "-" if self.ii is None else str(self.ii)
        gap = "-" if self.gap is None else str(self.gap)
        return (
            f"{self.loop} × {self.scheduler}: II={ii} MinII={self.min_ii}"
            f" (res {self.res_mii} / rec {self.rec_mii}) gap={gap}"
            f" binding={self.binding}"
        )


# ---------------------------------------------------------------------------
# Shared helpers for the replay classifiers.
# ---------------------------------------------------------------------------


def _mrt_rows(schedule, machine) -> List[Dict[str, Any]]:
    """The modulo reservation table of a schedule, as JSON-friendly rows."""
    from ..machine.resources import ModuloReservationTable

    loop = schedule.loop
    mrt = ModuloReservationTable(schedule.ii, machine.availability)
    for op in loop.ops:
        mrt.place(machine.table(op.opclass), schedule.time(op.index))
    resources = sorted(machine.availability)
    rows = []
    for slot in range(schedule.ii):
        rows.append(
            {
                "slot": slot,
                "ops": [
                    {
                        "index": index,
                        "opcode": loop.ops[index].opcode,
                        "stage": schedule.stage(index),
                    }
                    for index in schedule.ops_at_slot(slot)
                ],
                "used": {r: mrt.used_at(slot, r) for r in resources},
            }
        )
    return rows


def _harvest_attempts(events: Sequence[Mapping[str, Any]], loop_name: str) -> List[Dict[str, Any]]:
    """Normalise recorder events into one II-attempt timeline.

    Understands the three schedulers' event shapes: ``ii.attempt`` (SGI
    two-phase search), ``most.ii`` (ILP II walk) and ``rau.attempt``
    (iterative modulo scheduling).  Spill rounds rename the loop (spill
    code changes the body), so the filter matches by prefix.
    """
    timeline: List[Dict[str, Any]] = []
    for event in events:
        name = event.get("name")
        args = event.get("args", {})
        if name not in ("ii.attempt", "most.ii", "rau.attempt"):
            continue
        ev_loop = str(args.get("loop", ""))
        if not (ev_loop == loop_name or ev_loop.startswith(loop_name)):
            continue
        entry: Dict[str, Any] = {"ii": args.get("ii")}
        if name == "ii.attempt":
            entry.update(
                phase=args.get("phase"),
                success=bool(args.get("success")),
                placements=args.get("placements", 0),
                backtracks=args.get("backtracks", 0),
            )
        elif name == "most.ii":
            entry.update(phase="ilp", success=None)
        else:
            entry.update(
                phase="rau",
                success=bool(args.get("success")),
                placements=args.get("placements", 0),
                evictions=args.get("evictions", 0),
            )
        timeline.append(entry)
    # The ILP walk stops at the accepted II; mark the last visit a success.
    for entry in reversed(timeline):
        if entry.get("phase") == "ilp":
            entry["success"] = True
            break
    return timeline


def _allocate(schedule, machine):
    from ..regalloc.coloring import allocate_schedule

    return allocate_schedule(schedule, machine)


def _bound_binding(profile: MinIIProfile) -> str:
    return "recurrence" if profile.side == "recurrence" else "resource"


def _cert_blurb(cert: Mapping[str, Any]) -> str:
    """One-line citation of a repro.analyze certificate's counting claim."""
    kind = cert.get("kind", "?")
    if kind == "slot_conflict":
        return (
            f"{kind}: {cert['used']} rigid use(s) of {cert['resource']!r} "
            f"in modulo slot {cert['slot']} of capacity {cert['available']}"
        )
    if kind == "window_density":
        lo, hi = cert["window"]
        return (
            f"{kind}: {cert['used']} use(s) of {cert['resource']!r} in "
            f"window [{lo},{hi}] of capacity "
            f"{cert['available']}×{hi - lo + 1}"
        )
    if kind == "offset_exclusion":
        return (
            f"{kind}: op {cert['op']} has no conflict-free offset against "
            "the rigid recurrence circuit"
        )
    if kind == "register_pressure":
        return (
            f"{kind}: {len(cert['values'])} value lifetime(s) plus "
            f"{len(cert['invariants'])} invariant(s) exceed the "
            f"{cert['registers']} {cert['reg_class']} registers"
        )
    return str(kind)


def _certified_gap(
    result, original, machine, profile: MinIIProfile
) -> Optional[Tuple[str, str, Dict[str, Any]]]:
    """Attribute the gap from a repro.analyze certificate, when one exists.

    When every II below the achieved one carries an infeasibility
    certificate (and no spill code rewrote the loop, so the certificates
    still bind), the II−1 replay is unnecessary: the binding constraint is
    whatever the II−1 certificate counts, machine-checkably.
    """
    if getattr(result, "spilled", []):
        return None
    from ..analyze.bounds import compute_bounds

    target = result.ii - 1
    bounds = compute_bounds(original, machine, cap=target)
    if bounds.allocatable_bound != result.ii:
        return None  # gap not fully certified; fall back to the replay
    cert = next(
        (c for c in bounds.certificates if c.get("ii") == target), None
    )
    if cert is None:  # pragma: no cover - the climb always certifies cap
        return None
    evidence: Dict[str, Any] = {
        "ii": target,
        "schedulable_bound": bounds.schedulable_bound,
        "allocatable_bound": bounds.allocatable_bound,
        "certificate": cert,
    }
    if cert.get("regime") == "allocation":
        detail = (
            f"II−1={target} certified allocation-infeasible "
            f"({_cert_blurb(cert)})"
        )
        return "register_pressure", detail, evidence
    detail = (
        f"II−1={target} certified infeasible ({_cert_blurb(cert)}); "
        "MinII is a loose bound for this loop"
    )
    return _bound_binding(profile), detail, evidence


# ---------------------------------------------------------------------------
# Per-scheduler II−1 replay classifiers.
# ---------------------------------------------------------------------------


def _spill_raised_minii(result, machine, achieved_ii: int) -> Optional[Tuple[str, str, Dict[str, Any]]]:
    """Did spill code raise MinII up to the achieved II?

    All three drivers re-derive MinII from the *spilled* body each round;
    when the achieved II matches that raised bound, the gap against the
    original MinII is pure register pressure.
    """
    from ..core.minii import min_ii as compute_min_ii

    spilled = getattr(result, "spilled", [])
    if not spilled:
        return None
    spilled_mii = compute_min_ii(result.loop, machine)
    if achieved_ii <= spilled_mii:
        detail = (
            f"spill code for {len(spilled)} value(s) raised MinII to "
            f"{spilled_mii}; scheduled at the raised bound"
        )
        return "register_pressure", detail, {"spilled_min_ii": spilled_mii}
    return None


def _classify_sgi_below(result, machine, options) -> Tuple[str, str, Dict[str, Any]]:
    """Replay the SGI search below the achieved II.

    Mirrors the production structure: each priority order searches for
    *its own* minimal schedulable II (here capped at achieved − 1) and
    only then register-allocates.  The driver never revisits intermediate
    IIs after an allocation failure — it spills or takes another order's
    higher II — so when a lower II is schedulable, the colouring outcome
    at that II is what actually decided the gap.
    """
    from ..core.iisearch import search_ii
    from ..core.minii import min_ii as compute_min_ii
    from ..core.pipestage import adjust_pipestages
    from ..core.priorities import production_orders
    from ..core.sched import Schedule

    loop = result.loop
    target = result.ii - 1
    config = options.bnb
    mii = compute_min_ii(loop, machine)
    orders = production_orders(loop, machine)
    evidence: Dict[str, Any] = {"ii": target, "orders": {}}
    budget_hit = False
    for order_name in options.orders:
        found = search_ii(
            loop, machine, orders[order_name], mii, target, config=config,
            linear=options.linear_ii_search,
        )
        order_evidence: Dict[str, Any] = {
            "found_ii": found.ii,
            "attempts": found.attempts,
            "placements": sum(a.placements for a in found.attempted),
            "backtracks": sum(a.backtracks for a in found.attempted),
        }
        evidence["orders"][order_name] = order_evidence
        budget_hit = budget_hit or any(
            a.backtracks >= config.max_backtracks
            or a.placements >= config.max_placements
            for a in found.attempted
            if not a.success
        )
        if not found.success:
            continue
        times = adjust_pipestages(loop, found.ii, found.times)
        schedule = Schedule(
            loop=loop, machine=machine, ii=found.ii, times=times,
            producer=f"sgi/{order_name}",
        )
        allocation = _allocate(schedule, machine)
        order_evidence["alloc_success"] = allocation.success
        order_evidence["uncolored"] = len(allocation.uncolored)
        if not allocation.success:
            detail = (
                f"schedulable at II={found.ii} ({order_name}) but "
                f"{len(allocation.uncolored)} live range(s) failed to "
                f"colour there; the driver took a higher-II order instead"
            )
            return "register_pressure", detail, evidence
        producer = result.schedule.producer if result.schedule else ""
        if producer.endswith("+bank"):
            detail = (
                f"II={found.ii} schedulable and allocatable, but the "
                "driver kept a bank-paired schedule at the higher II"
            )
            return "bank_pairing", detail, evidence
        detail = (
            f"II={found.ii} schedulable and allocatable on replay; the "
            "production search missed it (schedulability is not "
            "monotone in II for this loop)"
        )
        return "search_exhausted", detail, evidence
    if budget_hit:
        detail = (
            f"no II <= {target} schedulable; attempts hit the B&B effort "
            f"budget (max_backtracks={config.max_backtracks})"
        )
        return "search_budget", detail, evidence
    detail = f"every priority order exhausted II <= {target} within budget"
    return "search_exhausted", detail, evidence


def _classify_most_below(result, machine, options) -> Tuple[str, str, Dict[str, Any]]:
    """Replay the ILP one II below the achieved schedule."""
    from ..core.sched import Schedule
    from ..ilp.solver import SolverOptions, Status, solve_milp
    from ..most.formulation import build_formulation

    loop = result.loop
    target = result.ii - 1
    evidence: Dict[str, Any] = {"ii": target}
    formulation = build_formulation(
        loop, machine, target, stages=options.stages,
        minimize_buffers=options.integrated,
    )
    if formulation.infeasible:
        evidence["proof"] = "window_collapse"
        detail = f"II−1={target} proven infeasible (ASAP/ALAP window collapse)"
        return "__proven__", detail, evidence
    solve = solve_milp(
        formulation.model,
        SolverOptions(
            time_limit=min(REPLAY_ILP_SECONDS, options.time_limit),
            engine=options.engine,
            max_nodes=options.max_nodes,
            first_solution=True,
        ),
    )
    evidence.update(
        status=solve.status.name,
        nodes=solve.nodes,
        limit=solve.limit,
        seconds=round(solve.seconds, 4),
    )
    if solve.status is Status.INFEASIBLE:
        evidence["proof"] = "ilp_infeasible"
        detail = f"ILP proved II−1={target} infeasible"
        return "__proven__", detail, evidence
    if solve.has_solution:
        schedule = Schedule(
            loop=loop, machine=machine, ii=target,
            times=formulation.decode_times(solve), producer="most/replay",
        )
        allocation = _allocate(schedule, machine)
        evidence["alloc_success"] = allocation.success
        evidence["uncolored"] = len(allocation.uncolored)
        if not allocation.success:
            detail = (
                f"ILP schedules II−1={target} but "
                f"{len(allocation.uncolored)} live range(s) failed to colour"
            )
            return "register_pressure", detail, evidence
        detail = (
            f"II−1={target} solvable on replay; the production solve "
            "budget expired before reaching it"
        )
        return "search_budget", detail, evidence
    detail = (
        f"II−1={target} solve stopped by the "
        f"{solve.limit or 'node'} limit without a solution"
    )
    return "search_budget", detail, evidence


def _classify_rau_below(result, machine, options) -> Tuple[str, str, Dict[str, Any]]:
    """Replay iterative modulo scheduling one II below the achieved one."""
    from ..core.sched import Schedule, SchedulingStats
    from ..rau.scheduler import iterative_modulo_schedule

    loop = result.loop
    target = result.ii - 1
    stats = SchedulingStats()
    times = iterative_modulo_schedule(loop, machine, target, options, stats)
    budget = max(1, int(options.budget_ratio * loop.n_ops))
    evidence: Dict[str, Any] = {
        "ii": target,
        "placements": stats.placements,
        "evictions": stats.evictions,
        "budget": budget,
    }
    if times is None:
        if stats.placements >= budget:
            detail = (
                f"II−1={target} exceeded the placement budget "
                f"({stats.placements}/{budget} placements)"
            )
            return "search_budget", detail, evidence
        detail = (
            f"II−1={target} hit a forced-placement dead end after "
            f"{stats.placements} placements"
        )
        return "search_exhausted", detail, evidence
    schedule = Schedule(
        loop=loop, machine=machine, ii=target, times=times, producer="rau94"
    )
    allocation = _allocate(schedule, machine)
    evidence["alloc_success"] = allocation.success
    evidence["uncolored"] = len(allocation.uncolored)
    if not allocation.success:
        detail = (
            f"II−1={target} schedulable but "
            f"{len(allocation.uncolored)} live range(s) failed to colour"
        )
        return "register_pressure", detail, evidence
    detail = f"II−1={target} schedulable and allocatable on replay"
    return "search_exhausted", detail, evidence


# ---------------------------------------------------------------------------
# The classifier.
# ---------------------------------------------------------------------------


def _scheduler_options(scheduler: str, options_dict: Optional[Mapping[str, Any]]):
    data = dict(options_dict or {})
    if scheduler == "sgi":
        from ..core.driver import PipelinerOptions

        return PipelinerOptions.from_dict(data)
    if scheduler == "most":
        from ..most.scheduler import MostOptions

        return MostOptions.from_dict(data)
    if scheduler == "rau":
        from ..rau.scheduler import RauOptions

        known = {"budget_ratio", "ii_cap_factor", "max_spill_rounds"}
        return RauOptions(**{k: v for k, v in data.items() if k in known})
    raise ValueError(f"explain does not cover scheduler {scheduler!r}")


def explain_result(
    result,
    scheduler: str,
    machine,
    options_dict: Optional[Mapping[str, Any]] = None,
    events: Optional[Sequence[Mapping[str, Any]]] = None,
    obs: Optional[Mapping[str, float]] = None,
    with_mrt: bool = True,
) -> IIExplanation:
    """Attribute one already-computed pipeliner result.

    ``result`` is a ``PipelineResult``, ``MostResult`` or ``RauResult``;
    the production run is *not* repeated — only the II−1 replay runs, and
    only when II > MinII.  ``events`` (recorder events of the production
    run, when it was traced) feed the II-attempt timeline.
    """
    original = getattr(result, "original", None) or result.loop
    profile = minii_profile(original, machine)
    explanation = IIExplanation(
        loop=original.name,
        scheduler=scheduler,
        success=result.success,
        ii=result.ii,
        min_ii=profile.min_ii,
        res_mii=profile.res_mii,
        rec_mii=profile.rec_mii,
        minii_side=profile.side,
        binding="unschedulable",
        critical_circuit=profile.circuit,
        spill_rounds=getattr(result, "spill_rounds", 0),
        spilled=list(getattr(result, "spilled", [])),
        fallback=bool(getattr(result, "fallback_used", False)),
        attempts=_harvest_attempts(events or [], original.name),
        obs=dict(obs or {}),
    )

    if not result.success or result.ii is None:
        explanation.detail = "the pipeliner produced no allocatable schedule"
        explanation.utilization = resource_utilization(
            original, machine, profile.min_ii
        )
        explanation.bottleneck = bottleneck_resource(original, machine, profile.min_ii)
        return explanation

    explanation.gap = result.ii - profile.min_ii
    explanation.utilization = resource_utilization(original, machine, result.ii)
    explanation.bottleneck = bottleneck_resource(original, machine, result.ii)
    if with_mrt and result.schedule is not None:
        explanation.mrt = _mrt_rows(result.schedule, machine)

    # The ILP's heuristic fallback produced this schedule: attribute it
    # with the SGI classifier over the fallback's own result.
    fallback_result = getattr(result, "fallback_result", None)
    if explanation.fallback and fallback_result is not None:
        inner = explain_result(
            fallback_result,
            "sgi",
            machine,
            {"enable_membank": False},
            events=events,
            with_mrt=False,
        )
        explanation.binding = inner.binding
        explanation.detail = f"ILP budget exhausted → heuristic fallback; {inner.detail}"
        explanation.replay = inner.replay
        explanation.spill_rounds = inner.spill_rounds
        explanation.spilled = inner.spilled
        return explanation

    if explanation.gap <= 0:
        explanation.binding = _bound_binding(profile)
        if profile.side == "recurrence":
            ops = ", ".join(str(c["index"]) for c in profile.circuit)
            explanation.detail = (
                f"RecMII {profile.rec_mii} > ResMII {profile.res_mii}; "
                f"critical circuit through op(s) {ops or '?'}"
            )
        else:
            util = explanation.utilization.get(explanation.bottleneck or "", 0.0)
            explanation.detail = (
                f"ResMII {profile.res_mii} >= RecMII {profile.rec_mii}; "
                f"bottleneck resource {explanation.bottleneck!r} at "
                f"{util:.0%} utilization"
            )
        return explanation

    # II > MinII: the cheap spill check, then a certificate citation
    # (which replaces the replay when the whole gap is certified), then
    # the II−1 replay.
    options = _scheduler_options(scheduler, options_dict)
    spilled = _spill_raised_minii(result, machine, result.ii)
    if spilled is not None:
        explanation.binding, explanation.detail, explanation.replay = spilled
        return explanation
    certified = _certified_gap(result, original, machine, profile)
    if certified is not None:
        explanation.binding, explanation.detail, explanation.replay = certified
        return explanation

    if scheduler == "sgi":
        binding, detail, evidence = _classify_sgi_below(result, machine, options)
    elif scheduler == "most":
        binding, detail, evidence = _classify_most_below(result, machine, options)
    else:
        binding, detail, evidence = _classify_rau_below(result, machine, options)

    if binding == "__proven__":
        # II−1 is provably impossible: the loop is genuinely bound by its
        # resources/recurrences; MinII was simply a loose lower bound.
        binding = _bound_binding(profile)
        detail += "; MinII is a loose bound for this loop"
    explanation.binding, explanation.detail, explanation.replay = (
        binding, detail, evidence,
    )
    return explanation


def explain_loop(
    loop_key: str,
    scheduler: str,
    machine=None,
    options_dict: Optional[Mapping[str, Any]] = None,
    verify: bool = False,
) -> IIExplanation:
    """Run one (loop × scheduler) cell live and attribute its II."""
    from ..exec.cells import resolve_loop
    from ..machine.descriptions import r8000
    from . import recording

    machine = machine if machine is not None else r8000()
    loop = resolve_loop(loop_key, machine)
    options = _scheduler_options(scheduler, options_dict)
    with recording() as rec:
        if scheduler == "sgi":
            from ..core.driver import pipeline_loop

            result = pipeline_loop(loop, machine, options, verify=verify)
        elif scheduler == "most":
            from ..most.scheduler import most_pipeline_loop

            result = most_pipeline_loop(loop, machine, options, verify=verify)
        else:
            from ..rau.scheduler import rau_pipeline_loop

            result = rau_pipeline_loop(loop, machine, options, verify=verify)
    return explain_result(
        result,
        scheduler,
        machine,
        options_dict,
        events=rec.events,
        obs=dict(rec.counters),
    )


def explain_corpus(
    corpus: str = "livermore",
    schedulers: Sequence[str] = EXPLAIN_SCHEDULERS,
    machine=None,
    scheduler_options: Optional[Mapping[str, Mapping[str, Any]]] = None,
    limit: Optional[int] = None,
    progress=None,
) -> List[IIExplanation]:
    """Attribute every (loop × scheduler) cell of one corpus."""
    from ..exec.cells import corpus_loop_keys

    keys = corpus_loop_keys(corpus)
    if limit is not None:
        keys = keys[:limit]
    out: List[IIExplanation] = []
    for key in keys:
        for scheduler in schedulers:
            opts = (scheduler_options or {}).get(scheduler, {})
            explanation = explain_loop(key, scheduler, machine, opts)
            out.append(explanation)
            if progress is not None:
                progress(explanation)
    return out


# ---------------------------------------------------------------------------
# Presentation.
# ---------------------------------------------------------------------------


def format_explanations(explanations: Sequence[IIExplanation]) -> str:
    """The ``python -m repro explain`` table."""
    headers = (
        "loop", "sched", "II", "MinII", "res/rec", "gap", "binding", "detail"
    )
    rows = []
    for e in explanations:
        rows.append(
            (
                e.loop,
                e.scheduler,
                "-" if e.ii is None else str(e.ii),
                str(e.min_ii),
                f"{e.res_mii}/{e.rec_mii}",
                "-" if e.gap is None else str(e.gap),
                e.binding,
                e.detail,
            )
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)),
        "  ".join("-" * widths[c] for c in range(len(headers))),
    ]
    for r in rows:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in range(len(headers))))
    counts: Dict[str, int] = {}
    for e in explanations:
        counts[e.binding] = counts.get(e.binding, 0) + 1
    lines.append("")
    lines.append(
        "bindings: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    return "\n".join(lines)


def explanations_to_json(explanations: Sequence[IIExplanation]) -> str:
    return json.dumps([e.to_dict() for e in explanations], indent=1, sort_keys=True)
