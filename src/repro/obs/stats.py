"""Small-sample nonparametric statistics for the trend layer (stdlib only).

The run-history series this repo accumulates are short (a handful to a
few dozen runs) and wall-clock-timing shaped: skewed, outlier-prone,
and far from normal.  The combinatorial-scheduling evaluation literature
(Castañeda Lozano & Schulte's survey) settles on exactly the toolkit
implemented here — rank tests and effect sizes, not t-tests:

* :func:`mann_whitney_u` — the two-sample rank test.  *Exact* (full
  enumeration of rank assignments) for the tiny splits a 5-run history
  produces, normal approximation with tie correction beyond that;
* :func:`cliffs_delta` — the ordinal effect size in [-1, 1] (±1 means
  the two samples do not overlap at all), which is what actually
  separates "2× slower" from "p < .05 on a meaningless difference";
* :func:`bootstrap_ci` — a seeded percentile bootstrap for medians, so
  confidence intervals are reproducible run to run;
* :func:`kendall_tau` — monotonic association of a series with time,
  the drift detector.

Everything takes plain sequences of floats and is deterministic: no
wall clock, no ambient RNG (the bootstrap seeds its own ``Random``).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: Below this pooled size the Mann-Whitney test enumerates every rank
#: assignment (exact); above it the tie-corrected normal approximation
#: takes over.  C(14, 7) = 3432 assignments is the worst case.
EXACT_LIMIT = 14


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        raise ValueError("median of an empty sample")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of an empty sample")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def rankdata(values: Sequence[float]) -> List[float]:
    """Ranks (1-based) with ties assigned their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def _u_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """U of sample ``a``: concordant pairs, ties counted half."""
    u = 0.0
    for x in a:
        for y in b:
            if x > y:
                u += 1.0
            elif x == y:
                u += 0.5
    return u


@dataclass
class MWUResult:
    """One two-sided Mann-Whitney U test."""

    u: float                 # U statistic of the first sample
    p_value: Optional[float]  # two-sided; None when a sample is empty
    n1: int
    n2: int
    exact: bool

    def to_dict(self):
        return {
            "u": self.u, "p_value": self.p_value,
            "n1": self.n1, "n2": self.n2, "exact": self.exact,
        }


def _normal_sf(z: float) -> float:
    """P(Z >= z) for a standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> MWUResult:
    """Two-sided Mann-Whitney U; exact below :data:`EXACT_LIMIT`."""
    n1, n2 = len(a), len(b)
    if not n1 or not n2:
        return MWUResult(u=0.0, p_value=None, n1=n1, n2=n2, exact=False)
    u_obs = _u_statistic(a, b)

    if n1 + n2 <= EXACT_LIMIT:
        pooled = list(a) + list(b)
        total = 0
        at_least = 0
        at_most = 0
        for picks in itertools.combinations(range(n1 + n2), n1):
            chosen = set(picks)
            ua = _u_statistic(
                [pooled[i] for i in picks],
                [pooled[i] for i in range(n1 + n2) if i not in chosen],
            )
            total += 1
            if ua >= u_obs - 1e-12:
                at_least += 1
            if ua <= u_obs + 1e-12:
                at_most += 1
        p = min(1.0, 2.0 * min(at_least, at_most) / total)
        return MWUResult(u=u_obs, p_value=p, n1=n1, n2=n2, exact=True)

    # Normal approximation with tie correction and continuity correction.
    n = n1 + n2
    pooled = list(a) + list(b)
    tie_counts: dict = {}
    for v in pooled:
        tie_counts[v] = tie_counts.get(v, 0) + 1
    tie_term = sum(t ** 3 - t for t in tie_counts.values())
    mu = n1 * n2 / 2.0
    var = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:
        return MWUResult(u=u_obs, p_value=1.0, n1=n1, n2=n2, exact=False)
    z = (abs(u_obs - mu) - 0.5) / math.sqrt(var)
    p = min(1.0, 2.0 * _normal_sf(max(z, 0.0)))
    return MWUResult(u=u_obs, p_value=p, n1=n1, n2=n2, exact=False)


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> Optional[float]:
    """Cliff's delta of ``b`` relative to ``a``: +1 = b entirely above a."""
    if not a or not b:
        return None
    more = less = 0
    for y in b:
        for x in a:
            if y > x:
                more += 1
            elif y < x:
                less += 1
    return (more - less) / (len(a) * len(b))


def bootstrap_ci(
    values: Sequence[float],
    stat: Callable[[Sequence[float]], float] = median,
    resamples: int = 400,
    alpha: float = 0.05,
    seed: int = 0,
) -> Optional[Tuple[float, float]]:
    """Seeded percentile-bootstrap CI of ``stat``; None for empty input."""
    if not values:
        return None
    if len(values) == 1:
        return (float(values[0]), float(values[0]))
    rng = random.Random(seed)
    stats = sorted(
        stat([rng.choice(values) for _ in values]) for _ in range(resamples)
    )
    lo = stats[max(0, min(resamples - 1, int(math.floor(alpha / 2 * resamples))))]
    hi = stats[max(0, min(resamples - 1, int(math.ceil((1 - alpha / 2) * resamples)) - 1))]
    return (lo, hi)


def kendall_tau(values: Sequence[float]) -> Optional[float]:
    """Kendall's tau of a series against its own index (monotonic trend)."""
    n = len(values)
    if n < 2:
        return None
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if values[j] > values[i]:
                concordant += 1
            elif values[j] < values[i]:
                discordant += 1
    pairs = n * (n - 1) / 2
    return (concordant - discordant) / pairs
