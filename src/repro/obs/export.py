"""Trace export: JSONL event streams and Chrome trace-event JSON.

Two on-disk forms, one schema:

* **JSONL** — one event object per line, the worker-side spool format.
  Workers append-close their own file; nothing coordinates across
  processes.
* **Chrome trace** — a JSON *array* of the same event objects, sorted by
  timestamp, loadable directly in ``chrome://tracing`` or Perfetto.

Every event carries ``name``/``ph``/``ts``/``pid``/``tid`` (plus ``cat``
and ``args``); :func:`validate_trace_events` enforces that contract and
the span-nesting discipline, and is what ``python -m repro trace --check``
and the CI smoke lane run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Sequence, Union

from .recorder import PHASES, TraceRecorder

PathLike = Union[str, pathlib.Path]

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def write_jsonl(
    events_or_recorder: Union[TraceRecorder, Iterable[Dict[str, Any]]],
    path: PathLike,
) -> pathlib.Path:
    """Write events (or a recorder's buffer) as JSONL; returns the path."""
    if isinstance(events_or_recorder, TraceRecorder):
        events: Iterable[Dict[str, Any]] = events_or_recorder.snapshot()
    else:
        events = events_or_recorder
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load one JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def merge_jsonl(paths: Sequence[PathLike]) -> List[Dict[str, Any]]:
    """Concatenate per-process JSONL spools into one ts-sorted event list.

    Workers share the wall clock (see :mod:`repro.obs.recorder`), so a
    stable sort by ``ts`` interleaves processes correctly while keeping
    each (pid, tid) lane's span nesting intact.
    """
    events: List[Dict[str, Any]] = []
    for path in paths:
        events.extend(read_jsonl(path))
    events.sort(key=lambda e: e.get("ts", 0))
    return events


def write_chrome_trace(
    events_or_recorder: Union[TraceRecorder, Iterable[Dict[str, Any]]],
    path: PathLike,
) -> pathlib.Path:
    """Write a Chrome trace-event file (the JSON-array form); returns the path."""
    if isinstance(events_or_recorder, TraceRecorder):
        events = events_or_recorder.snapshot()
    else:
        events = list(events_or_recorder)
    events.sort(key=lambda e: e.get("ts", 0))
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(events, sort_keys=True) + "\n")
    return path


def validate_trace_events(events: Any) -> List[str]:
    """Schema and nesting problems of a trace-event payload (empty = valid).

    Checks the acceptance contract of the Chrome export:

    * the payload is a JSON array of objects;
    * every event carries ``name``/``ph``/``ts``/``pid``/``tid`` and a
      known phase;
    * per (pid, tid) lane, timestamps are monotonically non-decreasing and
      ``B``/``E`` span events nest: every ``E`` closes the innermost open
      ``B`` of the same name, and no lane ends with open spans.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return [f"trace payload is {type(events).__name__}, not a JSON array"]
    lanes: Dict[tuple, List[str]] = {}
    last_ts: Dict[tuple, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is {type(event).__name__}, not an object")
            continue
        missing = [key for key in REQUIRED_KEYS if key not in event]
        if missing:
            problems.append(f"event {i} misses required keys {missing}")
            continue
        if event["ph"] not in PHASES:
            problems.append(f"event {i} has unknown phase {event['ph']!r}")
            continue
        lane = (event["pid"], event["tid"])
        ts = event["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            problems.append(
                f"event {i} ({event['name']!r}) goes back in time on lane {lane}: "
                f"{ts} < {last_ts[lane]}"
            )
        last_ts[lane] = ts
        stack = lanes.setdefault(lane, [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            if not stack:
                problems.append(
                    f"event {i} ends span {event['name']!r} with none open on lane {lane}"
                )
            elif stack[-1] != event["name"]:
                problems.append(
                    f"event {i} ends span {event['name']!r} but {stack[-1]!r} is innermost"
                )
            else:
                stack.pop()
    for lane, stack in lanes.items():
        if stack:
            problems.append(f"lane {lane} ends with open spans {stack}")
    return problems


def validate_chrome_trace_file(path: PathLike) -> List[str]:
    """Parse and validate a Chrome trace file on disk (empty list = valid)."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]
    return validate_trace_events(payload)
