"""The self-contained HTML dashboard: ``report.html``.

One file, no network: inline CSS, a dozen lines of inline JS (a binding
filter), and five panels —

* **II explanations** (``#explanations``): the per-(loop × scheduler)
  attribution table from :mod:`repro.obs.explain`, each row with a
  ``<details>`` drill-down showing the modulo reservation table of the
  achieved schedule and the II-attempt timeline of the search;
* **figure tables** (``#figures``): the eval experiments' Fig 2–7 tables,
  taken straight from :meth:`repro.eval.report.Table.to_rows` (no ASCII
  re-parsing), with their bar charts as preformatted text;
* **bench diff** (``#diff``): the attributed baseline comparison from
  :mod:`repro.obs.diffbench`;
* **bench/trace summary** (``#bench``): per-scheduler totals and folded
  obs counters of the underlying BENCH payload;
* **run history** (``#history``): per-metric sparkline series over the
  stored runs (:mod:`repro.obs.history`) with each series' trend verdict
  and, for step changes, the changepoint's commit range — degrading to a
  placeholder until at least two runs are stored.

``validate_html`` is the well-formedness gate used by ``repro report
--check`` and the report-smoke CI lane: stdlib ``html.parser`` driving a
tag-balance stack plus required-content checks — not a full validator,
but enough to catch an empty or truncated artefact.
"""

from __future__ import annotations

import html as _html
import pathlib
from html.parser import HTMLParser
from typing import Any, Dict, List, Mapping, Optional, Sequence

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a2e; background: #fafafa; }
h1 { border-bottom: 3px solid #16324f; padding-bottom: .3rem; }
h2 { color: #16324f; margin-top: 2.2rem; }
h3 { color: #2b5278; margin-bottom: .4rem; }
table { border-collapse: collapse; margin: .6rem 0 1rem; font-size: .86rem; }
th, td { border: 1px solid #c9d4de; padding: .25rem .55rem; text-align: left;
         vertical-align: top; }
th { background: #e8eef4; }
tr:nth-child(even) td { background: #f3f6f9; }
pre { background: #10212f; color: #d8e4ee; padding: .8rem; overflow-x: auto;
      font-size: .8rem; border-radius: 4px; }
details { margin: .3rem 0 .8rem; }
summary { cursor: pointer; color: #2b5278; }
.meta { color: #5a6b7a; font-size: .85rem; }
.binding { padding: .05rem .45rem; border-radius: .7rem; font-size: .8rem;
           white-space: nowrap; }
.binding-recurrence { background: #d7e8ff; }
.binding-resource { background: #d9f2dc; }
.binding-register_pressure { background: #ffe3c7; }
.binding-bank_pairing { background: #f3d9f5; }
.binding-search_budget { background: #fff3b8; }
.binding-search_exhausted { background: #ffd9d9; }
.binding-unschedulable { background: #f4c6c6; }
.regression { color: #a11a1a; font-weight: 600; }
.warning { color: #9a6700; }
.info { color: #5a6b7a; }
.mrt td.busy { background: #cfe3f7; }
"""

_JS = """
function filterBindings(value) {
  document.querySelectorAll('#explanations tbody tr').forEach(function (row) {
    row.style.display =
      (!value || row.dataset.binding === value) ? '' : 'none';
  });
}
"""


class _Raw(str):
    """Marker for cells that are already HTML (e.g. binding badges).

    Everything NOT wrapped in ``_Raw`` is escaped — a loop named
    ``<script>`` must render as text, never as markup.
    """


def _esc(value: Any) -> str:
    return _html.escape("" if value is None else str(value), quote=True)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
           klass: str = "", row_attrs: Optional[Sequence[str]] = None) -> str:
    out = [f'<table class="{_esc(klass)}">' if klass else "<table>"]
    out.append("<thead><tr>" + "".join(f"<th>{_esc(h)}</th>" for h in headers) + "</tr></thead>")
    out.append("<tbody>")
    for i, row in enumerate(rows):
        attrs = f" {row_attrs[i]}" if row_attrs else ""
        out.append(
            f"<tr{attrs}>"
            + "".join(
                f"<td>{cell if isinstance(cell, _Raw) else _esc(cell)}</td>"
                for cell in row
            )
            + "</tr>"
        )
    out.append("</tbody></table>")
    return "\n".join(out)


def _as_dict(obj: Any) -> Dict[str, Any]:
    if isinstance(obj, Mapping):
        return dict(obj)
    if hasattr(obj, "to_dict"):
        return obj.to_dict()
    raise TypeError(f"cannot render {type(obj).__name__} as a dict")


# ---------------------------------------------------------------------------
# Panels.
# ---------------------------------------------------------------------------


def _binding_badge(binding: str) -> _Raw:
    return _Raw(f'<span class="binding binding-{_esc(binding)}">{_esc(binding)}</span>')


def _mrt_html(mrt: Sequence[Mapping[str, Any]]) -> str:
    if not mrt:
        return "<p class='info'>no reservation table (schedule unavailable)</p>"
    resources = sorted(mrt[0].get("used", {}))
    headers = ["slot", "ops (stage)"] + resources
    rows, attrs = [], []
    for row in mrt:
        ops = ", ".join(
            f"{op['opcode']}#{op['index']} (s{op['stage']})" for op in row.get("ops", [])
        )
        cells = [str(row.get("slot")), ops]
        for resource in resources:
            cells.append(str(row.get("used", {}).get(resource, 0)))
        rows.append(cells)
        attrs.append("")
    return _table(headers, rows, klass="mrt", row_attrs=attrs)


def _timeline_html(attempts: Sequence[Mapping[str, Any]]) -> str:
    if not attempts:
        return "<p class='info'>no II-attempt timeline (run was not traced)</p>"
    headers = ["#", "II", "phase", "outcome", "effort"]
    rows = []
    for i, a in enumerate(attempts, 1):
        success = a.get("success")
        outcome = "·" if success is None else ("ok" if success else "fail")
        effort = ", ".join(
            f"{k}={a[k]}"
            for k in ("placements", "backtracks", "evictions")
            if a.get(k)
        )
        rows.append([str(i), str(a.get("ii")), str(a.get("phase", "")), outcome, effort])
    return _table(headers, rows)


def _explanations_panel(explanations: Sequence[Any]) -> str:
    records = [_as_dict(e) for e in explanations]
    if not records:
        return ""
    bindings = sorted({r.get("binding", "?") for r in records})
    options = "".join(f'<option value="{_esc(b)}">{_esc(b)}</option>' for b in bindings)
    parts = [
        '<section id="explanations">',
        "<h2>II explanations</h2>",
        "<p class='meta'>Every (loop × scheduler) cell attributed to exactly "
        "one binding-constraint class — the paper's §5 'II ≈ MinII' argument, "
        "made per-loop. Filter: "
        f'<select onchange="filterBindings(this.value)">'
        f'<option value="">all bindings</option>{options}</select></p>',
    ]
    headers = ["loop", "scheduler", "II", "MinII", "res/rec", "gap", "binding", "detail"]
    rows, attrs = [], []
    for r in records:
        rows.append(
            [
                r.get("loop"),
                r.get("scheduler"),
                "-" if r.get("ii") is None else r["ii"],
                r.get("min_ii"),
                f"{r.get('res_mii')}/{r.get('rec_mii')}",
                "-" if r.get("gap") is None else r["gap"],
                _binding_badge(r.get("binding", "?")),
                r.get("detail", ""),
            ]
        )
        attrs.append(f'data-binding="{_esc(r.get("binding", "?"))}"')
    parts.append(_table(headers, rows, row_attrs=attrs))
    parts.append("<h3>Per-loop drill-downs</h3>")
    for r in records:
        circuit = ", ".join(
            f"{c['opcode']}#{c['index']}" for c in r.get("critical_circuit", [])
        )
        util = ", ".join(
            f"{resource}={value:.0%}"
            for resource, value in sorted(
                (r.get("utilization") or {}).items(), key=lambda kv: -kv[1]
            )
        )
        body = [
            f"<p class='meta'>binding {_binding_badge(r.get('binding', '?'))} — "
            f"{_esc(r.get('detail', ''))}</p>",
            f"<p>bottleneck resource: <b>{_esc(r.get('bottleneck'))}</b>"
            + (f" · utilization at II: {_esc(util)}" if util else "")
            + (f" · critical circuit: {_esc(circuit)}" if circuit else "")
            + (
                f" · spill rounds: {r['spill_rounds']}"
                if r.get("spill_rounds")
                else ""
            )
            + "</p>",
            "<h4>Modulo reservation table</h4>",
            _mrt_html(r.get("mrt", [])),
            "<h4>II-attempt timeline</h4>",
            _timeline_html(r.get("attempts", [])),
        ]
        parts.append(
            f"<details><summary>{_esc(r.get('loop'))} × {_esc(r.get('scheduler'))}"
            f" — II {_esc(r.get('ii'))} / MinII {_esc(r.get('min_ii'))}</summary>"
            + "\n".join(body)
            + "</details>"
        )
    parts.append("</section>")
    return "\n".join(parts)


def _figures_panel(tables: Sequence[Any], charts: Sequence[str]) -> str:
    if not tables and not charts:
        return ""
    parts = ['<section id="figures">', "<h2>Figure tables</h2>"]
    for table in tables:
        title = getattr(table, "title", None)
        headers = getattr(table, "headers", None)
        notes = getattr(table, "notes", [])
        if headers is not None and hasattr(table, "to_rows"):
            rows = table.to_rows()
        else:
            data = _as_dict(table)
            title, headers = data.get("title", ""), data.get("headers", [])
            rows, notes = data.get("rows", []), data.get("notes", [])
        parts.append(f"<h3>{_esc(title)}</h3>")
        parts.append(_table(headers, rows))
        for note in notes:
            parts.append(f"<p class='info'>note: {_esc(note)}</p>")
    for chart in charts:
        if chart:
            parts.append(f"<pre>{_esc(chart)}</pre>")
    parts.append("</section>")
    return "\n".join(parts)


def _diff_panel(diff: Any) -> str:
    if diff is None:
        return ""
    data = _as_dict(diff)
    parts = ['<section id="diff">', "<h2>Bench diff vs. baseline</h2>"]
    parts.append(
        f"<p class='meta'>{_esc(data.get('old'))} "
        f"(code {_esc((data.get('old_code_version') or '?')[:12])}) → "
        f"{_esc(data.get('new'))} "
        f"(code {_esc((data.get('new_code_version') or '?')[:12])})</p>"
    )
    for kind, klass in (("regressions", "regression"), ("warnings", "warning"), ("infos", "info")):
        for line in data.get(kind, []):
            parts.append(f"<p class='{klass}'>{_esc(kind[:-1].upper())}: {_esc(line)}</p>")
    by_cause = data.get("by_cause", {})
    if by_cause:
        parts.append("<h3>Changed cells by cause</h3>")
        parts.append(_table(["cause", "cells"], sorted(by_cause.items())))
    changed = [
        c for c in data.get("cells", [])
        if c.get("status") not in ("unchanged", "noise")
    ]
    if changed:
        parts.append("<h3>Changed cells</h3>")
        rows = []
        for c in changed:
            moved = "; ".join(
                f"{name}: {old} → {new}"
                for name, (old, new) in sorted(c.get("deltas", {}).items())
            )
            rows.append(
                [c.get("loop"), c.get("scheduler"), c.get("status"), c.get("cause"), moved]
            )
        parts.append(_table(["loop", "scheduler", "status", "cause", "deltas"], rows))
    else:
        parts.append("<p class='info'>no changed cells</p>")
    parts.append("</section>")
    return "\n".join(parts)


def _bench_panel(bench: Optional[Mapping[str, Any]]) -> str:
    if not bench:
        return ""
    totals = bench.get("totals", {}) or {}
    parts = ['<section id="bench">', "<h2>Bench &amp; trace summary</h2>"]
    parts.append(
        "<p class='meta'>"
        + " · ".join(
            f"{key}: {_esc(bench.get(key))}"
            for key in ("name", "created_at", "code_version", "machine", "wall_seconds")
            if bench.get(key) is not None
        )
        + "</p>"
    )
    by_sched = totals.get("by_scheduler", {})
    if by_sched:
        headers = ["scheduler", "cells", "at MinII", "timeouts", "fallbacks",
                   "errors", "schedule s"]
        rows = [
            [
                name,
                agg.get("cells", 0),
                agg.get("at_min_ii", 0),
                agg.get("timeouts", 0),
                agg.get("fallbacks", 0),
                agg.get("errors", 0),
                f"{agg.get('schedule_seconds', 0.0):.2f}",
            ]
            for name, agg in sorted(by_sched.items())
        ]
        parts.append(_table(headers, rows))
    obs = totals.get("obs", {})
    if obs:
        parts.append("<h3>Search-effort counters (folded over all cells)</h3>")
        parts.append(
            _table(
                ["counter", "total"],
                [(name, f"{value:,.0f}") for name, value in sorted(obs.items())],
            )
        )
    ratio = totals.get("ilp_vs_heuristic_time_geomean")
    if ratio:
        parts.append(
            f"<p>ILP vs heuristic schedule-time geomean: <b>{ratio:.1f}×</b>"
            + (
                f" (native solves only: {totals['ilp_vs_heuristic_time_geomean_native']:.1f}×)"
                if totals.get("ilp_vs_heuristic_time_geomean_native")
                else ""
            )
            + " — the paper's §4.7 comparison.</p>"
        )
    parts.append("</section>")
    return "\n".join(parts)


def _sparkline(values: Sequence[Optional[float]],
               changepoint: Optional[int] = None,
               width: int = 140, height: int = 26) -> _Raw:
    """An inline-SVG sparkline of one metric series (None = missing run)."""
    points = [(i, float(v)) for i, v in enumerate(values) if v is not None]
    if len(points) < 2:
        return _Raw("<span class='info'>&ndash;</span>")
    xs = [i for i, _ in points]
    ys = [v for _, v in points]
    lo, hi = min(ys), max(ys)
    y_span = (hi - lo) or 1.0
    x_span = (max(xs) - min(xs)) or 1

    def coord(i: int, v: float) -> str:
        x = (i - min(xs)) / x_span * (width - 4) + 2
        y = height - 3 - (v - lo) / y_span * (height - 6)
        return f"{x:.1f},{y:.1f}"

    svg = [
        f'<svg width="{width}" height="{height}" role="img">',
        f'<polyline points="{" ".join(coord(i, v) for i, v in points)}"'
        ' fill="none" stroke="#2b5278" stroke-width="1.5"/>',
    ]
    if changepoint is not None:
        marked = next(((i, v) for i, v in points if i == changepoint), None)
        if marked is not None:
            x, y = coord(*marked).split(",")
            svg.append(f'<circle cx="{x}" cy="{y}" r="3" fill="#a11a1a"/>')
    svg.append("</svg>")
    return _Raw("".join(svg))


_TREND_CLASS_STYLES = {
    "step_change": "regression",
    "drift": "warning",
    "noisy": "warning",
    "stable": "info",
}


def _history_panel(history: Any) -> str:
    if history is None:
        return ""
    data = _as_dict(history)
    histories = data.get("histories") or []
    parts = ['<section id="history">', "<h2>Run history &amp; trends</h2>"]
    if not any(len(h.get("runs") or []) >= 2 for h in histories):
        parts.append(
            "<p class='info'>Not enough stored runs yet: the history store "
            "(benchmarks/history/) needs at least two runs of a series "
            "before run-over-run charts mean anything. Accumulate runs via "
            "<code>make bench-quick</code>/<code>make serve-smoke</code> "
            "with history enabled, or seed run zero from the committed "
            "baselines with <code>make history-seed</code>.</p>"
        )
        parts.append("</section>")
        return "\n".join(parts)
    parts.append(
        "<p class='meta'>Per-metric series over the stored runs (oldest "
        "left), classified by <code>repro trend</code>: a red dot marks a "
        "step change's changepoint run, attributed below to its commit "
        "range.</p>"
    )
    for entry in histories:
        name = entry.get("name", "?")
        runs = entry.get("runs") or []
        parts.append(f"<h3>{_esc(name)} — {len(runs)} stored runs</h3>")
        if runs:
            first, last = runs[0], runs[-1]
            span = (
                f"{(first.get('git_sha') or first.get('code_version') or '?')[:12]}"
                " .. "
                f"{(last.get('git_sha') or last.get('code_version') or '?')[:12]}"
            )
            counts = entry.get("by_class") or {}
            summary = ", ".join(
                f"{cls}: {counts[cls]}" for cls in sorted(counts) if counts[cls]
            )
            parts.append(
                f"<p class='meta'>commits {_esc(span)}"
                + (f" · {_esc(summary)}" if summary else "") + "</p>"
            )
        if len(runs) < 2:
            parts.append(
                "<p class='info'>only one stored run — charts appear once a "
                "second run is filed</p>"
            )
            continue
        rows = []
        for metric in entry.get("entries") or []:
            verdict = metric.get("verdict") or {}
            classification = verdict.get("classification", "stable")
            values = metric.get("values") or []
            latest = next(
                (v for v in reversed(values) if v is not None), None
            )
            commit_range = metric.get("commit_range")
            detail = verdict.get("detail", "")
            if commit_range:
                detail += f" · commits {commit_range[0]}..{commit_range[1]}"
            badge_class = _TREND_CLASS_STYLES.get(classification, "info")
            if classification in ("step_change", "drift") and not metric.get("regression"):
                badge_class = "info"  # an improvement is not alarming
            rows.append([
                metric.get("metric"),
                _sparkline(values, changepoint=verdict.get("changepoint")),
                "-" if latest is None else f"{latest:.4g}",
                _Raw(f"<span class='{badge_class}'>{_esc(classification)}</span>"),
                detail,
            ])
        if rows:
            parts.append(_table(
                ["metric", "series", "latest", "trend", "detail"], rows,
            ))
        dropped = entry.get("dropped") or 0
        if dropped:
            parts.append(
                f"<p class='info'>{dropped} further moved series omitted "
                "for brevity — <code>repro trend "
                f"{_esc(name)} --verbose</code> lists them all</p>"
            )
    parts.append("</section>")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Document assembly.
# ---------------------------------------------------------------------------


def render_report(
    title: str = "repro — pipeliner showdown report",
    meta: Optional[Mapping[str, Any]] = None,
    explanations: Sequence[Any] = (),
    tables: Sequence[Any] = (),
    charts: Sequence[str] = (),
    diff: Any = None,
    bench: Optional[Mapping[str, Any]] = None,
    history: Any = None,
) -> str:
    """Assemble the one-file dashboard; every panel is optional."""
    meta_line = " · ".join(
        f"{_esc(k)}: {_esc(v)}" for k, v in (meta or {}).items()
    )
    sections = [
        _explanations_panel(explanations),
        _figures_panel(tables, charts),
        _diff_panel(diff),
        _bench_panel(bench),
        _history_panel(history),
    ]
    body = "\n".join(s for s in sections if s)
    if not body:
        body = "<p class='info'>empty report: no panels were populated</p>"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
<script>{_JS}</script>
</head>
<body>
<h1>{_esc(title)}</h1>
<p class="meta">{meta_line}</p>
{body}
</body>
</html>
"""


def write_report(path, **kwargs) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(**kwargs))
    return path


# ---------------------------------------------------------------------------
# Validation (the report-smoke gate).
# ---------------------------------------------------------------------------

#: Tags whose balance the validator enforces (void tags excluded).
_TRACKED_TAGS = {
    "html", "head", "body", "section", "table", "thead", "tbody", "tr",
    "td", "th", "details", "summary", "select", "h1", "h2", "h3", "h4",
    "p", "pre", "b", "span", "style", "script", "title",
}


class _Validator(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: List[str] = []
        self.problems: List[str] = []
        self.seen: Dict[str, int] = {}
        self.text_chars = 0

    def handle_starttag(self, tag: str, attrs) -> None:
        self.seen[tag] = self.seen.get(tag, 0) + 1
        if tag in _TRACKED_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag: str) -> None:
        if tag not in _TRACKED_TAGS:
            return
        if not self.stack:
            self.problems.append(f"closing </{tag}> with empty stack")
            return
        if self.stack[-1] == tag:
            self.stack.pop()
            return
        if tag in self.stack:  # mis-nesting
            self.problems.append(
                f"mis-nested </{tag}> (open: {'/'.join(self.stack[-3:])})"
            )
            while self.stack and self.stack[-1] != tag:
                self.stack.pop()
            if self.stack:
                self.stack.pop()
        else:
            self.problems.append(f"unopened </{tag}>")

    def handle_data(self, data: str) -> None:
        self.text_chars += len(data.strip())


def validate_html(
    text: str, required_ids: Sequence[str] = ()
) -> List[str]:
    """Well-formedness problems of a report document; empty list = valid."""
    problems: List[str] = []
    if not text.strip():
        return ["document is empty"]
    if not text.lstrip().lower().startswith("<!doctype html"):
        problems.append("missing <!DOCTYPE html> preamble")
    validator = _Validator()
    validator.feed(text)
    validator.close()
    problems.extend(validator.problems)
    if validator.stack:
        problems.append(f"unclosed tags at EOF: {'/'.join(validator.stack)}")
    for tag in ("html", "head", "body", "title"):
        if not validator.seen.get(tag):
            problems.append(f"missing <{tag}>")
    if validator.text_chars < 40:
        problems.append(f"suspiciously little text content ({validator.text_chars} chars)")
    for required in required_ids:
        if f'id="{required}"' not in text:
            problems.append(f"missing panel id={required!r}")
    return problems


def validate_report_file(path, required_ids: Sequence[str] = ()) -> List[str]:
    path = pathlib.Path(path)
    if not path.exists():
        return [f"no report at {path}"]
    return validate_html(path.read_text(), required_ids)
