"""Span/counter recording with a zero-cost disabled path.

The schedulers call :func:`get_recorder` on their hot paths; by default it
returns the process-wide :data:`NULL` recorder whose every method is a
no-op, so tracing costs one attribute check per *scheduling attempt* (not
per placement — inner-loop counts stay plain integers and are folded into
the recorder once per attempt).  Enabling tracing swaps in a
:class:`TraceRecorder`, which buffers Chrome-trace-shaped events in memory
and aggregates named counters.

Timestamps are wall-clock microseconds (``time.time_ns() // 1000``) rather
than ``perf_counter`` so traces recorded in different worker *processes*
share a clock and can be merged into one timeline.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

#: Chrome trace-event phases this recorder emits: span begin/end, instant,
#: counter, and metadata.
PHASES = ("B", "E", "i", "C", "M")


def _now_us() -> int:
    return time.time_ns() // 1000


class _NullSpan:
    """Reusable no-op context manager (stateless, so one instance serves all)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    ``enabled`` is ``False`` so instrumentation sites can skip building
    attribute dictionaries entirely when nothing is listening.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    @property
    def events(self) -> List[Dict[str, Any]]:
        return []


#: The process-wide disabled recorder (also the default).
NULL = NullRecorder()


class _Span:
    """Context manager emitting a Chrome ``B``/``E`` pair around a block."""

    __slots__ = ("_recorder", "_name", "_attrs")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._recorder._emit(self._name, "B", self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._emit(self._name, "E", {})
        return False


class TraceRecorder:
    """The enabled recorder: buffers events, aggregates counters.

    Thread-safe (one lock around the event buffer); events carry the real
    ``pid``/``tid`` so merged multi-process traces keep their lanes apart.
    Counter calls both bump the aggregate and emit a Chrome ``C`` event
    with the cumulative value, so counter tracks are visible in Perfetto.
    """

    enabled = True

    def __init__(self, process_name: Optional[str] = None):
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()
        if process_name is not None:
            with self._lock:
                self.events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "ts": _now_us(),
                        "pid": self._pid,
                        "tid": threading.get_ident() & 0x7FFFFFFF,
                        "cat": "repro",
                        "args": {"name": process_name},
                    }
                )

    # -- event plumbing ------------------------------------------------
    def _emit(self, name: str, ph: str, args: Dict[str, Any]) -> None:
        event = {
            "name": name,
            "ph": ph,
            "ts": _now_us(),
            "pid": self._pid,
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "cat": "repro",
            "args": args,
        }
        with self._lock:
            self.events.append(event)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _Span:
        """A context manager timing a block as a named span."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """An instant event with structured attributes."""
        self._emit(name, "i", attrs)

    def counter(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to the named counter (and emit its new total)."""
        with self._lock:
            total = self.counters.get(name, 0) + value
            self.counters[name] = total
            self.events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": _now_us(),
                    "pid": self._pid,
                    "tid": threading.get_ident() & 0x7FFFFFFF,
                    "cat": "repro",
                    "args": {"value": total},
                }
            )

    def snapshot(self) -> List[Dict[str, Any]]:
        """A consistent copy of the event buffer."""
        with self._lock:
            return [dict(e) for e in self.events]


Recorder = Union[NullRecorder, TraceRecorder]

_recorder: Recorder = NULL


def get_recorder() -> Recorder:
    """The process-wide recorder (the no-op :data:`NULL` unless enabled)."""
    return _recorder


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` process-wide; ``None`` restores :data:`NULL`."""
    global _recorder
    _recorder = recorder if recorder is not None else NULL
    return _recorder


@contextmanager
def recording(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Enable tracing for a ``with`` block; restores the previous recorder.

    >>> with recording() as rec:
    ...     pipeline_loop(loop)                        # doctest: +SKIP
    >>> rec.counters["bnb.placements"]                 # doctest: +SKIP
    """
    rec = recorder if recorder is not None else TraceRecorder()
    previous = _recorder
    set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
