"""The search-effort report: the paper's scheduling-time story as a table.

Section 4.7's headline — the ILP pipeliner spending ~250x the heuristic's
scheduling time — is an *effort* comparison, so the table puts the effort
counters side by side per loop: SGI branch-and-bound nodes (placement
attempts), backtracks and II attempts against MOST's ILP branch-and-bound
nodes and simplex iterations, with Rau94's placements/evictions as the
non-backtracking reference point.  Input is any sequence of cell-result
objects carrying ``loop``/``scheduler``/``schedule_seconds``/``obs``
(duck-typed so the exec layer stays optional).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

#: The obs counters each scheduler's table columns read.
SGI_COUNTERS = ("bnb.placements", "bnb.backtracks", "ii.attempts")
MOST_COUNTERS = ("ilp.nodes", "ilp.simplex_iters", "ilp.node_limit_hits")
RAU_COUNTERS = ("rau.placements", "rau.evictions")


def _geomean(values: Sequence[float]) -> Optional[float]:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def _fmt_count(value: Optional[float]) -> str:
    if value is None:
        return "-"
    value = int(value)
    if value >= 10_000_000:
        return f"{value / 1e6:.0f}M"
    if value >= 100_000:
        return f"{value / 1e3:.0f}k"
    return str(value)


def effort_rows(results: Sequence[Any]) -> List[Dict[str, Any]]:
    """Per-loop effort rows from a mixed-scheduler result sequence."""
    by_loop: Dict[str, Dict[str, Any]] = {}
    for res in results:
        by_loop.setdefault(res.loop, {})[res.scheduler] = res

    rows: List[Dict[str, Any]] = []
    for loop in by_loop:  # insertion order = corpus order
        cells = by_loop[loop]
        row: Dict[str, Any] = {"loop": loop, "n_ops": 0}
        for scheduler, res in cells.items():
            row["n_ops"] = max(row["n_ops"], getattr(res, "n_ops", 0))
            obs = getattr(res, "obs", {}) or {}
            entry = {
                "ii": res.ii,
                "seconds": res.schedule_seconds,
                "fallback": getattr(res, "fallback", False),
                "timeout": getattr(res, "timeout", False),
            }
            counters = {
                "sgi": SGI_COUNTERS,
                "most": MOST_COUNTERS,
                "rau": RAU_COUNTERS,
            }.get(scheduler, ())
            for name in counters:
                entry[name.split(".", 1)[1]] = obs.get(name)
            row[scheduler] = entry
        sgi = row.get("sgi")
        most = row.get("most")
        if sgi and most and sgi["seconds"] > 0:
            row["time_ratio"] = most["seconds"] / max(sgi["seconds"], 1e-4)
        rows.append(row)
    return rows


def format_effort_table(results: Sequence[Any]) -> str:
    """The per-loop search-effort table ``python -m repro trace`` prints."""
    rows = effort_rows(results)
    header = (
        f"{'loop':<34} {'ops':>4} | "
        f"{'SGI II':>6} {'nodes':>8} {'bt':>5} {'IIs':>4} {'sec':>8} | "
        f"{'MOST II':>7} {'nodes':>8} {'simplex':>8} {'sec':>8} {'xSGI':>8} | "
        f"{'RAU II':>6} {'placed':>7} {'evict':>6} {'sec':>8}"
    )
    rule = "-" * len(header)
    lines = [header, rule]

    def sched_cols(entry: Optional[Dict[str, Any]], fields: Sequence[str], widths) -> str:
        if entry is None:
            return " ".join("-".rjust(w) for w in widths)
        parts = []
        for field, width in zip(fields, widths):
            if field == "ii":
                ii = "-" if entry["ii"] is None else str(entry["ii"])
                if entry.get("fallback"):
                    ii += "*"
                parts.append(ii.rjust(width))
            elif field == "seconds":
                parts.append(f"{entry['seconds']:.3f}".rjust(width))
            else:
                parts.append(_fmt_count(entry.get(field)).rjust(width))
        return " ".join(parts)

    ratios: List[float] = []
    for row in rows:
        ratio = row.get("time_ratio")
        if ratio is not None:
            ratios.append(ratio)
        ratio_text = "-" if ratio is None else f"{ratio:.1f}x"
        lines.append(
            f"{row['loop']:<34} {row['n_ops']:>4} | "
            + sched_cols(row.get("sgi"), ("ii", "placements", "backtracks", "attempts", "seconds"), (6, 8, 5, 4, 8))
            + " | "
            + sched_cols(row.get("most"), ("ii", "nodes", "simplex_iters", "seconds"), (7, 8, 8, 8))
            + f" {ratio_text:>8} | "
            + sched_cols(row.get("rau"), ("ii", "placements", "evictions", "seconds"), (6, 7, 6, 8))
        )

    lines.append(rule)
    totals = aggregate_counters(results)
    lines.append(
        "totals: "
        f"SGI nodes={_fmt_count(totals.get('bnb.placements', 0))} "
        f"backtracks={_fmt_count(totals.get('bnb.backtracks', 0))} "
        f"II-attempts={_fmt_count(totals.get('ii.attempts', 0))}; "
        f"MOST ILP nodes={_fmt_count(totals.get('ilp.nodes', 0))} "
        f"simplex={_fmt_count(totals.get('ilp.simplex_iters', 0))} "
        f"node-limit-hits={_fmt_count(totals.get('ilp.node_limit_hits', 0))}; "
        f"RAU placed={_fmt_count(totals.get('rau.placements', 0))} "
        f"evicted={_fmt_count(totals.get('rau.evictions', 0))}"
    )
    geo = _geomean(ratios)
    if geo is not None:
        lines.append(
            f"MOST/SGI scheduling-time geomean over {len(ratios)} loops: {geo:.1f}x "
            "(the paper's §4.7 comparison; * = heuristic fallback)"
        )
    return "\n".join(lines)


def aggregate_counters(results: Sequence[Any]) -> Dict[str, float]:
    """Sum the per-cell obs counter dicts across a result sequence."""
    totals: Dict[str, float] = {}
    for res in results:
        for name, value in (getattr(res, "obs", {}) or {}).items():
            totals[name] = totals.get(name, 0) + value
    return totals
