"""Independent modulo-schedule legality checker (rules SCHED001-SCHED004).

This re-derives every constraint a modulo schedule must satisfy directly
from the dependence graph and the machine's reservation tables, sharing no
code with the schedulers or with ``Schedule.validate()``:

* dependence arcs impose ``t(dst) - t(src) >= latency - omega * II``;
* resource usage is *aggregated* over all operations per (modulo slot,
  resource) pair and compared against availability afterwards — unlike the
  incremental place-or-complain loop of the production code, this reports
  every contributor to an oversubscribed slot and is order-independent;
* the schedule must cover exactly the loop body's operations;
* II is audited against an independently recomputed MinII = max(ResMII,
  RecMII) lower bound — a "legal" schedule below the bound means either
  the bound or the checker is wrong, and both deserve attention.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from .diagnostics import Report, Severity


def check_schedule(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    times: Mapping[int, int],
    audit_min_ii: bool = True,
) -> Report:
    """Check one candidate schedule (``op -> issue cycle``) at ``ii``."""
    report = Report()
    name = loop.name
    if ii <= 0:
        report.add(
            "SCHED004",
            Severity.ERROR,
            f"II={ii} is not positive",
            loop=name,
        )
        return report

    present = _check_coverage(loop, times, report)
    _check_dependences(loop, ii, times, present, report)
    _check_resources(loop, machine, ii, times, present, report)
    if audit_min_ii:
        _audit_min_ii(loop, machine, ii, report)
    return report


def _check_coverage(loop: Loop, times: Mapping[int, int], report: Report) -> List[int]:
    """SCHED003: the schedule must assign exactly ops ``0..n_ops-1``."""
    expected = set(range(loop.n_ops))
    got = set(times)
    missing = sorted(expected - got)
    unknown = sorted(got - expected)
    if missing:
        report.add(
            "SCHED003",
            Severity.ERROR,
            f"ops {missing} have no issue cycle",
            loop=loop.name,
            ops=missing,
            hint="a scheduler dropped an operation (eviction without re-placement?)",
        )
    if unknown:
        report.add(
            "SCHED003",
            Severity.ERROR,
            f"schedule assigns unknown op ids {unknown}",
            loop=loop.name,
            hint="the schedule belongs to a different loop body",
        )
    return sorted(expected & got)


def _check_dependences(
    loop: Loop,
    ii: int,
    times: Mapping[int, int],
    present: List[int],
    report: Report,
) -> None:
    """SCHED001: every arc's minimum distance holds at this II."""
    have = set(present)
    for arc in loop.ddg.arcs:
        if arc.src not in have or arc.dst not in have:
            continue  # coverage already reported
        gap = times[arc.dst] - times[arc.src]
        need = arc.latency - ii * arc.omega
        if gap < need:
            report.add(
                "SCHED001",
                Severity.ERROR,
                f"{arc.kind.value} dependence op {arc.src} -> op {arc.dst} "
                f"(latency={arc.latency}, omega={arc.omega}): "
                f"gap {gap} < required {need}",
                loop=loop.name,
                ops=(arc.src, arc.dst),
                where=f"t({arc.src})={times[arc.src]}, t({arc.dst})={times[arc.dst]}, II={ii}",
                hint="move the consumer later or the producer earlier by whole stages",
            )


def _check_resources(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    times: Mapping[int, int],
    present: List[int],
    report: Report,
) -> None:
    """SCHED002: aggregate per-slot usage must fit availability.

    Aggregation is done over *all* operations before any comparison, so an
    oversubscribed slot reports every contributor — the production MRT
    reports only the ops it failed to place, in placement order.
    """
    usage: Dict[Tuple[int, str], int] = {}
    contributors: Dict[Tuple[int, str], List[int]] = {}
    for op in present:
        try:
            table = machine.table(loop.ops[op].opclass)
        except KeyError:
            report.add(
                "SCHED002",
                Severity.ERROR,
                f"machine {machine.name!r} has no reservation table for "
                f"{loop.ops[op].opclass}",
                loop=loop.name,
                ops=(op,),
            )
            continue
        for use in table.uses:
            slot = (times[op] + use.offset) % ii
            key = (slot, use.resource)
            usage[key] = usage.get(key, 0) + use.count
            ops_here = contributors.setdefault(key, [])
            if op not in ops_here:
                ops_here.append(op)
    for (slot, resource), used in sorted(usage.items()):
        avail = machine.availability.get(resource)
        if avail is None:
            report.add(
                "SCHED002",
                Severity.ERROR,
                f"machine {machine.name!r} has no resource {resource!r}",
                loop=loop.name,
                ops=contributors[(slot, resource)],
                where=f"slot {slot}",
            )
        elif used > avail:
            report.add(
                "SCHED002",
                Severity.ERROR,
                f"resource {resource!r} oversubscribed in modulo slot {slot}: "
                f"{used} used, {avail} available",
                loop=loop.name,
                ops=sorted(contributors[(slot, resource)]),
                where=f"slot {slot}",
                hint="an op (or an unpipelined op colliding with itself) must move slots",
            )


# ----------------------------------------------------------------------
# Independent MinII lower bound (SCHED004)
# ----------------------------------------------------------------------
def _independent_res_mii(loop: Loop, machine: MachineDescription) -> int:
    demand: Dict[str, int] = {}
    for op in loop.ops:
        try:
            table = machine.table(op.opclass)
        except KeyError:
            continue  # reported by _check_resources
        for use in table.uses:
            demand[use.resource] = demand.get(use.resource, 0) + use.count
    bound = 1
    for resource, total in demand.items():
        avail = machine.availability.get(resource, 0)
        if avail > 0:
            bound = max(bound, math.ceil(total / avail))
    return bound


def _independent_rec_mii(loop: Loop) -> int:
    """Smallest II with no positive-weight dependence cycle.

    Weights are ``latency - II * omega``; a positive cycle at II means some
    operation would have to issue after itself.  Detected with a longest-
    path relaxation (any improvement after n full passes implies a positive
    cycle), and the threshold II found by linear-from-1 then binary search.
    """
    arcs = [(a.src, a.dst, a.latency, a.omega) for a in loop.ddg.arcs]
    if not arcs:
        return 1

    def has_positive_cycle(ii: int) -> bool:
        n = loop.n_ops
        dist = [0] * n
        weighted = [(s, d, lat - ii * om) for s, d, lat, om in arcs]
        for _ in range(n):
            changed = False
            for s, d, w in weighted:
                if 0 <= s < n and 0 <= d < n and dist[s] + w > dist[d]:
                    dist[d] = dist[s] + w
                    changed = True
            if not changed:
                return False
        return True

    if not has_positive_cycle(1):
        return 1
    hi = max(1, sum(max(lat, 0) for _, _, lat, _ in arcs))
    if has_positive_cycle(hi):
        return hi + 1  # cycle with no carried arc; any II is infeasible
    lo = 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if has_positive_cycle(mid):
            lo = mid
        else:
            hi = mid
    return hi


def _audit_min_ii(
    loop: Loop, machine: MachineDescription, ii: int, report: Report
) -> None:
    res = _independent_res_mii(loop, machine)
    rec = _independent_rec_mii(loop)
    bound = max(res, rec)
    if ii < bound:
        report.add(
            "SCHED004",
            Severity.ERROR,
            f"II={ii} below the independent MinII bound {bound} "
            f"(ResMII={res}, RecMII={rec})",
            loop=loop.name,
            hint="either the schedule, the bound computation, or this checker "
            "is wrong; all three claim to model the same machine",
        )
