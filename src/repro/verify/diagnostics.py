"""Structured diagnostics for the independent verification subsystem.

Every checker in :mod:`repro.verify` reports findings as :class:`Diagnostic`
records carrying a catalogued rule id, a severity, the operations involved
and a fix hint, collected into a :class:`Report`.  The catalogue below is
the single source of truth for rule ids; DESIGN.md §5 and the README quote
it verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Severity(enum.Enum):
    ERROR = "error"  # the artifact is wrong; strict mode fails the build
    WARNING = "warning"  # suspicious but not provably incorrect
    INFO = "info"


#: Rule catalogue: id -> one-line description.  Grouped by checker family.
RULES: Dict[str, str] = {
    # DDG well-formedness lint
    "DDG001": "dependence arc endpoint outside the operation range (dangling edge)",
    "DDG002": "dependence arc with negative latency",
    "DDG003": "dependence arc with negative iteration distance (omega)",
    "DDG004": "self-dependence with omega 0 (unsatisfiable recurrence)",
    "DDG005": "operation disconnected from the dependence graph",
    "DDG006": "flow arc / def-use inconsistency (arc names a register the "
    "endpoints do not define/read, or a use has no covering arc)",
    "DDG007": "implausibly large omega (iteration distance)",
    # Modulo-schedule legality
    "SCHED001": "dependence constraint t(dst) >= t(src) + latency - omega*II violated",
    "SCHED002": "modulo reservation overflow (resource oversubscribed in a slot)",
    "SCHED003": "schedule does not cover the loop body (missing or unknown op ids)",
    "SCHED004": "II below the independently derived MinII lower bound",
    # Register allocation
    "REG001": "live range has no physical register assigned",
    "REG002": "interfering live ranges share a physical register",
    "REG003": "physical register outside the register file",
    "REG004": "kernel unroll factor (kmin) below a value's lifetime requirement",
    # Emitted-code dataflow
    "EMIT001": "physical register read before any definition",
    "EMIT002": "physical register clobbered between a write and a dependent read",
    "EMIT003": "prologue/kernel/epilogue instance coverage wrong (drain incomplete, "
    "duplicated or missing instances)",
    # Static bank-conflict analysis
    "BANK001": "compile-time relative-bank claim contradicted by concrete addresses",
    "BANK002": "same-cycle memory pair without a proven opposite bank (stall risk)",
    "BANK003": "declared base parity contradicted by the concrete data layout",
    # Certified II lower bounds (repro.analyze certificates)
    "BOUND001": "malformed bound certificate (missing or ill-typed fields)",
    "BOUND002": "witness arc or path missing from the DDG, broken, or its "
    "claimed latency/omega stronger than the real arc",
    "BOUND003": "certificate counting contradicts the machine description or "
    "loop body (availability, reservation tables, memory refs)",
    "BOUND004": "certificate arithmetic wrong (totals, ceilings, windows, or "
    "an uncovered II inside a claimed bound climb)",
    "BOUND005": "certified lower bound contradicted by an achieved or "
    "proved-optimal II",
    "BOUND006": "register class, lifetime witness or invariant set "
    "inconsistent with the loop's def/use structure",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker."""

    rule: str  # catalogue id, e.g. "SCHED001"
    severity: Severity
    message: str
    loop: str = ""  # loop name, when known
    ops: Tuple[int, ...] = ()  # operation ids involved
    where: str = ""  # finer location: arc, slot, register, listing line
    hint: str = ""  # what to look at to fix it

    def formatted(self) -> str:
        parts = [f"{self.severity.value.upper()} {self.rule}"]
        if self.loop:
            parts.append(f"[{self.loop}]")
        if self.ops:
            parts.append("ops " + ",".join(str(o) for o in self.ops))
        if self.where:
            parts.append(f"({self.where})")
        parts.append(self.message)
        text = " ".join(parts)
        if self.hint:
            text += f"  hint: {self.hint}"
        return text


class VerificationError(ValueError):
    """Raised when strict verification finds ERROR diagnostics."""

    def __init__(self, report: "Report"):
        self.report = report
        super().__init__(report.formatted())


@dataclass
class Report:
    """A collection of diagnostics from one or more checkers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: diagnostics suppressed by `# KNOWN:` waivers, kept for inspection
    waived: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        *,
        loop: str = "",
        ops: Iterable[int] = (),
        where: str = "",
        hint: str = "",
    ) -> None:
        if rule not in RULES:
            raise KeyError(f"unknown verification rule {rule!r}")
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                loop=loop,
                ops=tuple(ops),
                where=where,
                hint=hint,
            )
        )

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.waived.extend(other.waived)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR diagnostics remain (warnings allowed)."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rules_hit(self) -> List[str]:
        return sorted({d.rule for d in self.diagnostics})

    def waive(self, rule: str, reason: str = "") -> int:
        """Suppress all diagnostics of ``rule``; returns how many were waived.

        Mirrors an inline ``# KNOWN: <rule>`` waiver in the code under
        check: the finding is real but accepted, and stays visible in
        ``report.waived`` rather than silently vanishing.
        """
        kept: List[Diagnostic] = []
        moved = 0
        for d in self.diagnostics:
            if d.rule == rule:
                self.waived.append(d)
                moved += 1
            else:
                kept.append(d)
        self.diagnostics = kept
        return moved

    def raise_if_errors(self) -> None:
        if not self.ok:
            raise VerificationError(self)

    def formatted(self) -> str:
        if not self.diagnostics:
            return "verification clean: no diagnostics"
        lines = [d.formatted() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            + (f", {len(self.waived)} waived" if self.waived else "")
        )
        return "\n".join(lines)
