"""Static bank-conflict analyzer (rules BANK001-BANK003).

The bank-pairing heuristic (Section 2.9) schedules pairs of memory
references in the same cycle *because* the compiler proved they hit
opposite banks.  This checker audits those compile-time claims against the
concrete addresses the simulator will actually generate:

* every pair of direct references whose relative bank is claimed constant
  (:func:`repro.ir.operations.relative_bank`) is evaluated on concrete
  :class:`~repro.sim.layout.DataLayout` addresses over several iterations
  and seeds — a disagreement means the parity algebra and the layout
  disagree about the machine (BANK001);
* base symbols with a declared double-word parity must be placed on that
  parity by the layout (BANK003);
* with a schedule in hand, same-steady-state-cycle reference pairs whose
  relative bank (stage gap included) is *not* provably opposite are
  reported as residual stall risk (BANK002, warning).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.loop import Loop
from ..ir.operations import MemRef, relative_bank
from ..sim.layout import DataLayout
from .diagnostics import Report, Severity

_CHECK_ITERATIONS = 8


def check_banks(
    loop: Loop,
    ii: Optional[int] = None,
    times: Optional[dict] = None,
    layouts: Optional[Sequence[DataLayout]] = None,
    seeds: Sequence[int] = (0, 1),
) -> Report:
    """Audit compile-time bank claims; optionally lint a schedule's pairs."""
    report = Report()
    mem_ops = [op.index for op in loop.ops if op.is_memory]
    if not mem_ops:
        return report
    if layouts is None:
        trips = max(1, min(loop.trip_count, 32))
        layouts = [DataLayout(loop, trip_count=trips, seed=seed) for seed in seeds]

    _check_declared_parities(loop, layouts, report)
    _check_pair_claims(loop, mem_ops, layouts, report)
    if ii is not None and times is not None:
        _check_scheduled_pairs(loop, mem_ops, ii, times, report)
    return report


def _check_declared_parities(
    loop: Loop, layouts: Sequence[DataLayout], report: Report
) -> None:
    """BANK003: Loop.known_parity vs the parity the layout realised."""
    for base, parity in sorted(loop.known_parity.items()):
        for layout in layouts:
            addr = layout.bases.get(base)
            if addr is None:
                continue  # declared but never referenced
            actual = (addr >> 3) & 1
            if actual != parity:
                report.add(
                    "BANK003",
                    Severity.ERROR,
                    f"base {base!r} declared double-word parity {parity} but "
                    f"placed at 0x{addr:x} (parity {actual})",
                    loop=loop.name,
                    where=f"seed {layout.seed}",
                    hint="the compiler's layout promise and the actual placement "
                    "disagree; every pairing decision using this base is unsound",
                )
                break


def _check_pair_claims(
    loop: Loop, mem_ops: List[int], layouts: Sequence[DataLayout], report: Report
) -> None:
    """BANK001: claimed relative banks must hold for concrete addresses."""
    for i, a in enumerate(mem_ops):
        ma = loop.ops[a].mem
        for b in mem_ops[i + 1 :]:
            mb = loop.ops[b].mem
            claim = relative_bank(ma, mb, loop.known_parity)
            if claim is None:
                continue
            for layout in layouts:
                iters = min(layout.trip_count, _CHECK_ITERATIONS)
                for it in range(iters):
                    actual = layout.bank(a, it) ^ layout.bank(b, it)
                    if actual != claim:
                        report.add(
                            "BANK001",
                            Severity.ERROR,
                            f"ops {a} and {b} claimed relative bank {claim} "
                            f"({'opposite' if claim else 'same'}) but iteration "
                            f"{it} hits banks "
                            f"{layout.bank(a, it)} and {layout.bank(b, it)}",
                            loop=loop.name,
                            ops=(a, b),
                            where=f"seed {layout.seed}, iteration {it}",
                            hint="relative_bank() and DataLayout disagree; "
                            "a pairing decision built on this claim can stall "
                            "every cycle",
                        )
                        break
                else:
                    continue
                break


def _shifted(m: MemRef, delta: int) -> MemRef:
    """The reference's effective form ``delta`` iterations later."""
    if not m.is_direct or delta == 0:
        return m
    return MemRef(
        base=m.base,
        offset=m.offset + delta * m.stride,
        stride=m.stride,
        width=m.width,
        is_store=m.is_store,
    )


def _check_scheduled_pairs(
    loop: Loop, mem_ops: List[int], ii: int, times: dict, report: Report
) -> None:
    """BANK002: same-steady-state-cycle pairs without a proven opposite bank.

    Operations in the same modulo slot execute together with iteration
    indices offset by their stage gap, which shifts the later reference's
    effective offset by ``delta * stride`` — a pair that is opposite-bank
    within one iteration can be same-bank across stages.
    """
    scheduled = [op for op in mem_ops if op in times]
    by_slot: dict = {}
    for op in scheduled:
        by_slot.setdefault(times[op] % ii, []).append(op)
    for slot, ops in sorted(by_slot.items()):
        for i, a in enumerate(ops):
            for b in ops[i + 1 :]:
                delta = (times[a] - times[b]) // ii
                rel = relative_bank(
                    loop.ops[a].mem, _shifted(loop.ops[b].mem, delta), loop.known_parity
                )
                if rel != 1:
                    claim = "same bank" if rel == 0 else "unknown banks"
                    report.add(
                        "BANK002",
                        Severity.WARNING,
                        f"ops {a} and {b} dual-issue in modulo slot {slot} with "
                        f"{claim} (stage gap {delta}); each co-issue risks a "
                        "bank stall",
                        loop=loop.name,
                        ops=(a, b),
                        where=f"slot {slot}",
                        hint="reschedule one reference into another cycle or "
                        "pair it with a proven-opposite partner",
                    )
