"""DDG well-formedness lint (rules DDG001-DDG007).

Checks the dependence graph and its relation to the operation list from
first principles — arc endpoints, latencies, omegas, self-loops,
connectivity and flow-arc/def-use consistency — without trusting the
invariants the :class:`~repro.ir.ddg.DDG` constructor tries to enforce.  A
builder or transform that corrupts a graph after construction (or bypasses
the constructor entirely) is caught here, where ``Schedule.validate()``
would never look.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..ir.ddg import DepKind
from ..ir.loop import Loop
from .diagnostics import Report, Severity

#: Iteration distances beyond this are almost certainly corrupted metadata:
#: real loop-carried dependences in the corpora stay in single digits.
MAX_PLAUSIBLE_OMEGA = 64


def lint_ddg(loop: Loop) -> Report:
    """Lint ``loop``'s dependence graph; returns a report of findings."""
    report = Report()
    n = loop.n_ops
    name = loop.name

    for i, arc in enumerate(loop.ddg.arcs):
        where = f"arc#{i} {arc.src}->{arc.dst}"
        if not (0 <= arc.src < n) or not (0 <= arc.dst < n):
            report.add(
                "DDG001",
                Severity.ERROR,
                f"arc endpoint outside 0..{n - 1}",
                loop=name,
                ops=[o for o in (arc.src, arc.dst) if 0 <= o < n],
                where=where,
                hint="the graph references an operation that does not exist",
            )
            continue  # endpoint checks below would index out of range
        if arc.latency < 0:
            report.add(
                "DDG002",
                Severity.ERROR,
                f"negative latency {arc.latency}",
                loop=name,
                ops=(arc.src, arc.dst),
                where=where,
                hint="latencies come from the machine description; check dep_latency",
            )
        if arc.omega < 0:
            report.add(
                "DDG003",
                Severity.ERROR,
                f"negative omega {arc.omega}",
                loop=name,
                ops=(arc.src, arc.dst),
                where=where,
                hint="iteration distances are non-negative by definition",
            )
        elif arc.omega > MAX_PLAUSIBLE_OMEGA:
            report.add(
                "DDG007",
                Severity.WARNING,
                f"omega {arc.omega} exceeds the plausibility bound {MAX_PLAUSIBLE_OMEGA}",
                loop=name,
                ops=(arc.src, arc.dst),
                where=where,
            )
        if arc.src == arc.dst and arc.omega == 0 and arc.latency > 0:
            report.add(
                "DDG004",
                Severity.ERROR,
                "self-dependence with omega 0 admits no schedule",
                loop=name,
                ops=(arc.src,),
                where=where,
                hint="a recurrence on one operation must carry across iterations",
            )
        if arc.kind is DepKind.FLOW and arc.value:
            if arc.value not in loop.ops[arc.src].dests:
                report.add(
                    "DDG006",
                    Severity.ERROR,
                    f"flow arc names {arc.value!r} which op {arc.src} does not define",
                    loop=name,
                    ops=(arc.src, arc.dst),
                    where=where,
                )
            if arc.value not in loop.ops[arc.dst].srcs:
                report.add(
                    "DDG006",
                    Severity.ERROR,
                    f"flow arc names {arc.value!r} which op {arc.dst} does not read",
                    loop=name,
                    ops=(arc.src, arc.dst),
                    where=where,
                )

    _lint_connectivity(loop, report)
    _lint_def_use_coverage(loop, report)
    return report


def _lint_connectivity(loop: Loop, report: Report) -> None:
    """DDG005: operations no arc touches, in a loop that has arcs.

    Such an operation is either dead code the front end should have removed
    or a node whose arcs were lost; either way a scheduler will place it
    with no constraints at all, which deserves a look.
    """
    if loop.n_ops <= 1 or not loop.ddg.arcs:
        return
    touched: Set[int] = set()
    for arc in loop.ddg.arcs:
        touched.add(arc.src)
        touched.add(arc.dst)
    for op in range(loop.n_ops):
        if op not in touched:
            report.add(
                "DDG005",
                Severity.WARNING,
                f"op {op} ({loop.ops[op].opcode}) has no dependence arcs",
                loop=loop.name,
                ops=(op,),
                hint="dead code, or arcs lost by a transform",
            )


def _lint_def_use_coverage(loop: Loop, report: Report) -> None:
    """DDG006: every register use is live-in or covered by a flow arc."""
    defs: Dict[str, int] = {}
    for op in loop.ops:
        for d in op.dests:
            # Double definition breaks single assignment; report it as a
            # def-use inconsistency rather than crashing like defs_of().
            if d in defs:
                report.add(
                    "DDG006",
                    Severity.ERROR,
                    f"register {d!r} defined by both op {defs[d]} and op {op.index}",
                    loop=loop.name,
                    ops=(defs[d], op.index),
                )
            defs[d] = op.index
    covered: Set[Tuple[int, str]] = set()
    for arc in loop.ddg.arcs:
        if arc.kind is DepKind.FLOW and arc.value:
            covered.add((arc.dst, arc.value))
    for op in loop.ops:
        for s in op.srcs:
            if s in loop.live_in or (op.index, s) in covered:
                continue
            if s in defs:
                report.add(
                    "DDG006",
                    Severity.ERROR,
                    f"use of {s!r} by op {op.index} has no covering flow arc",
                    loop=loop.name,
                    ops=(defs[s], op.index),
                    hint="memdep/builder dropped an arc; the scheduler will not "
                    "order the def before this use",
                )
            else:
                report.add(
                    "DDG006",
                    Severity.ERROR,
                    f"op {op.index} reads {s!r}, which is neither defined in the "
                    "loop nor live-in",
                    loop=loop.name,
                    ops=(op.index,),
                )
