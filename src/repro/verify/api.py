"""One-shot verification API and corpus sweeps.

``verify_all`` runs every applicable checker over the artifacts of one
pipelined loop; ``verify_corpus`` sweeps a whole workload corpus through
all three pipeliners (heuristic, MOST, Rau94) and verifies everything they
produce — the trust anchor behind the paper's "both emit correct schedules
under identical constraints" premise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from .bankcheck import check_banks
from .ddglint import lint_ddg
from .diagnostics import Report
from .emitcheck import check_emitted
from .regcheck import check_allocation
from .schedcheck import check_schedule


def verify_all(
    loop: Loop,
    schedule=None,
    allocation=None,
    emitted=None,
    machine: Optional[MachineDescription] = None,
    bank_lint: bool = True,
) -> Report:
    """Run every applicable independent checker; returns a merged report.

    ``schedule``/``allocation``/``emitted`` may each be ``None``: the DDG
    lint and the static bank audit always run, the others only when their
    artifact is present.  ``machine`` defaults to the schedule's.
    """
    report = Report()
    report.extend(lint_ddg(loop))
    ii = times = None
    if schedule is not None:
        machine = machine if machine is not None else schedule.machine
        ii, times = schedule.ii, schedule.times
        report.extend(check_schedule(loop, machine, ii, times))
    if allocation is not None and ii is not None:
        report.extend(check_allocation(loop, machine, ii, times, allocation))
    if emitted is not None and allocation is not None and ii is not None:
        report.extend(check_emitted(loop, ii, times, allocation, emitted))
    if bank_lint:
        report.extend(check_banks(loop, ii=ii, times=times))
    return report


def verify_result(result, emitted=None, machine=None) -> Report:
    """Verify a PipelineResult / MostResult / RauResult in one call.

    Uses ``result.loop`` (the loop actually scheduled, spill code included)
    so the checks see exactly what the schedule refers to.
    """
    return verify_all(
        result.loop,
        schedule=result.schedule,
        allocation=result.allocation,
        emitted=emitted,
        machine=machine,
    )


def enforce_verified(result, machine: Optional[MachineDescription] = None) -> None:
    """Verify a successful pipeliner result, raising on ERROR diagnostics.

    The hook behind the drivers' ``verify=`` option: emits the pipelined
    code and runs every checker, raising :class:`VerificationError` if any
    produced an ERROR.  Unsuccessful results are left alone — they carry
    no artifact to verify.
    """
    if not getattr(result, "success", False) or result.schedule is None:
        return
    from ..pipeline.emit import emit_pipelined_code

    emitted = None
    if result.allocation is not None and result.allocation.success:
        emitted = emit_pipelined_code(result.schedule, result.allocation)
    report = verify_result(result, emitted=emitted, machine=machine)
    report.raise_if_errors()


# ----------------------------------------------------------------------
# Corpus sweeps (the `python -m repro verify <corpus>` backend)
# ----------------------------------------------------------------------
@dataclass
class SweepEntry:
    loop: str
    scheduler: str
    ii: Optional[int]
    success: bool
    errors: int
    warnings: int
    rules: List[str] = field(default_factory=list)


@dataclass
class SweepResult:
    corpus: str
    entries: List[SweepEntry] = field(default_factory=list)
    reports: Dict[str, Report] = field(default_factory=dict)

    @property
    def total_errors(self) -> int:
        return sum(e.errors for e in self.entries)

    @property
    def total_warnings(self) -> int:
        return sum(e.warnings for e in self.entries)

    @property
    def ok(self) -> bool:
        return self.total_errors == 0

    def formatted(self, verbose: bool = False) -> str:
        width = max((len(e.loop) for e in self.entries), default=4)
        lines = [f"verify {self.corpus}: {len(self.entries)} scheduled artifacts"]
        for e in self.entries:
            status = "FAIL" if e.errors else ("warn" if e.warnings else "ok")
            ii = f"II={e.ii}" if e.ii is not None else "unscheduled"
            rules = f"  [{', '.join(e.rules)}]" if e.rules and (verbose or e.errors) else ""
            lines.append(
                f"  {e.loop.ljust(width)}  {e.scheduler:<5} {ii:>8}  "
                f"{status}{rules}"
            )
        lines.append(
            f"total: {self.total_errors} error(s), {self.total_warnings} warning(s)"
        )
        if verbose or not self.ok:
            for key, report in self.reports.items():
                if report.errors or (verbose and report.diagnostics):
                    lines.append(f"-- {key}")
                    shown = report.errors if not verbose else report.diagnostics
                    lines.extend("   " + d.formatted() for d in shown)
        return "\n".join(lines)


def corpus_loops(corpus: str, machine: Optional[MachineDescription] = None) -> List[Loop]:
    """The loops of a named corpus: 'livermore', 'spec92', 'recbound' or 'all'."""
    from ..workloads.livermore import livermore_kernels
    from ..workloads.recbound import recbound_kernels
    from ..workloads.spec92 import spec92_suite

    if corpus == "livermore":
        return livermore_kernels(machine)
    if corpus == "spec92":
        return [loop for bench in spec92_suite(machine) for loop in bench.loops]
    if corpus == "recbound":
        return recbound_kernels(machine)
    if corpus == "all":
        return (
            corpus_loops("livermore", machine)
            + corpus_loops("spec92", machine)
            + corpus_loops("recbound", machine)
        )
    raise ValueError(
        f"unknown corpus {corpus!r}; expected livermore, spec92, recbound or all"
    )


def verify_corpus(
    corpus: str,
    schedulers: Optional[List[str]] = None,
    machine: Optional[MachineDescription] = None,
    most_time_limit: float = 2.0,
    emit: bool = True,
) -> SweepResult:
    """Sweep a corpus through the requested pipeliners and verify everything.

    Schedulers: ``sgi`` (heuristic branch-and-bound), ``most`` (ILP with
    heuristic fallback), ``rau`` (iterative modulo scheduling).  Schedules,
    allocations and emitted code are all cross-checked; loops a scheduler
    cannot pipeline are recorded but are not verification failures.
    """
    # Imported lazily: the drivers import repro.verify for their verify=
    # hooks, so a module-level import here would be circular.
    from ..core.driver import pipeline_loop
    from ..machine.descriptions import r8000
    from ..most.scheduler import MostOptions, most_pipeline_loop
    from ..pipeline.emit import emit_pipelined_code
    from ..rau.scheduler import rau_pipeline_loop

    machine = machine if machine is not None else r8000()
    schedulers = schedulers or ["sgi", "most", "rau"]
    sweep = SweepResult(corpus=corpus)
    for loop in corpus_loops(corpus, machine):
        for scheduler in schedulers:
            if scheduler == "sgi":
                result = pipeline_loop(loop, machine, verify=False)
            elif scheduler == "most":
                result = most_pipeline_loop(
                    loop,
                    machine,
                    MostOptions(time_limit=most_time_limit, engine="scipy"),
                    verify=False,
                )
            elif scheduler == "rau":
                result = rau_pipeline_loop(loop, machine, verify=False)
            else:
                raise ValueError(f"unknown scheduler {scheduler!r}")
            emitted = None
            if emit and result.success and result.allocation is not None:
                emitted = emit_pipelined_code(result.schedule, result.allocation)
            if result.success:
                report = verify_result(result, emitted=emitted, machine=machine)
            else:
                report = verify_all(result.loop, machine=machine)
            sweep.entries.append(
                SweepEntry(
                    loop=loop.name,
                    scheduler=scheduler,
                    ii=result.ii,
                    success=result.success,
                    errors=len(report.errors),
                    warnings=len(report.warnings),
                    rules=report.rules_hit(),
                )
            )
            sweep.reports[f"{loop.name}/{scheduler}"] = report
    return sweep
