"""Independent checker for certified II lower bounds (rules BOUND001-006).

This validates the certificates emitted by :mod:`repro.analyze.bounds`
from the dependence graph and machine description alone — it imports
nothing from the analyzer or the schedulers, re-derives reservation
tables, availability, register classes and bank relations itself, and
re-does every piece of arithmetic.  A certificate that passes here is a
proof: any schedule (or allocation) beating the certified bound would
violate a constraint this checker confirmed against the loop body.

Soundness of the matching rules:

* A claimed arc ``[src, dst, lat, omega]`` stands for the constraint
  ``t(dst) - t(src) >= lat - II * omega``.  A real DDG arc ``src -> dst``
  with ``latency >= lat`` and ``omega <= omega_claimed`` implies it (both
  deviations only weaken the claim), so that is what we demand.  The same
  rule covers recurrence circuits: under it the claimed ``L/D`` cannot
  exceed the real circuit's, hence ``ceil(L/D)`` stays a lower bound.
* Offsets relative to an anchor: a path anchor->op of claimed weight
  ``W`` proves ``t(op) - t(anchor) >= W``; a path op->anchor of weight
  ``W'`` proves ``t(op) - t(anchor) <= -W'``.  "Rigid" means the two
  bounds coincide, pinning the offset.
* A value's lifetime at II is at least ``W + II * omega`` for a claimed
  def->use path of weight ``W`` and a real flow arc whose distance is at
  least the claimed ``omega`` (the register is written at ``t(def)`` and
  still needed at ``t(use) + II * omega``).  An empty path is only valid
  when the use *is* the def (a self-recurrence), where ``W = 0`` holds
  trivially.

The emitter claims exact values everywhere (no slack), so most fields
can be checked with equality — which is what makes single-field
tampering detectable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..ir.operations import OpClass, relative_bank, result_reg_class
from ..machine.descriptions import MachineDescription
from .diagnostics import Report, Severity

Certificate = Mapping[str, Any]

_SCHEDULE_KINDS = ("slot_conflict", "offset_exclusion", "window_density")
_PER_II_KINDS = _SCHEDULE_KINDS + ("register_pressure",)
_ALL_KINDS = ("resource", "recurrence") + _PER_II_KINDS + ("bank_pairing",)

_INT_CLASSES = (OpClass.IALU, OpClass.IMUL, OpClass.BRANCH)


def _value_class(loop: Loop, value: str) -> str:
    """Register class of a value, re-derived from the loop body alone.

    Mirrors the allocator's convention without importing it: a defined
    value takes its defining operation's result class; a live-in value is
    integer only when every reader is an integer operation.
    """
    for op in loop.ops:
        if value in op.dests:
            return result_reg_class(op.opclass).value
    users = [op for op in loop.ops if value in op.srcs]
    if users and all(op.opclass in _INT_CLASSES for op in users):
        return "int"
    return "fp"


def _register_file(machine: MachineDescription) -> Dict[str, int]:
    return {"fp": machine.fp_regs, "int": machine.int_regs}


# ----------------------------------------------------------------------
# Shared witness validation
# ----------------------------------------------------------------------
def _valid_op(loop: Loop, op: Any) -> bool:
    return isinstance(op, int) and not isinstance(op, bool) and 0 <= op < loop.n_ops


def _match_arc(loop: Loop, claim: Sequence[Any]) -> bool:
    """A real arc src->dst at least as strong as the claimed one exists."""
    if len(claim) != 4 or not all(
        isinstance(x, int) and not isinstance(x, bool) for x in claim
    ):
        return False
    src, dst, lat, omega = claim
    for arc in loop.ddg.arcs:
        if (
            arc.src == src
            and arc.dst == dst
            and arc.latency >= lat
            and arc.omega <= omega
        ):
            return True
    return False


def _path_weight(
    loop: Loop,
    path: Sequence[Sequence[Any]],
    ii: int,
    src: int,
    dst: int,
    report: Report,
    cert_kind: str,
    loop_name: str,
) -> Optional[int]:
    """Validate a claimed arc path src->...->dst; return its weight at ii.

    An empty path is valid only when ``src == dst`` (weight 0).  Returns
    ``None`` after reporting when the path is broken.
    """
    if not path:
        if src != dst:
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"{cert_kind}: empty path claimed between distinct ops "
                f"{src} and {dst}",
                loop=loop_name,
                ops=(src, dst),
            )
            return None
        return 0
    weight = 0
    at = src
    for claim in path:
        if not _match_arc(loop, claim):
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"{cert_kind}: no DDG arc at least as strong as claimed "
                f"{list(claim)}",
                loop=loop_name,
                where=f"path {src}->{dst}",
            )
            return None
        if claim[0] != at:
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"{cert_kind}: path discontinuity at op {at} "
                f"(next arc starts at {claim[0]})",
                loop=loop_name,
                where=f"path {src}->{dst}",
            )
            return None
        weight += claim[2] - ii * claim[3]
        at = claim[1]
    if at != dst:
        report.add(
            "BOUND002",
            Severity.ERROR,
            f"{cert_kind}: path ends at op {at}, not the claimed {dst}",
            loop=loop_name,
            where=f"path {src}->{dst}",
        )
        return None
    return weight


def _checked_offset(
    loop: Loop,
    entry: Mapping[str, Any],
    ii: int,
    anchor: int,
    report: Report,
    cert_kind: str,
    loop_name: str,
) -> Optional[Tuple[int, int]]:
    """Validate an entry's (lo, hi) window relative to the anchor.

    Returns the *proven* window, or ``None`` when the witness fails.  For
    the anchor itself both paths must be empty and the window is [0, 0].
    """
    op = entry.get("op")
    if not _valid_op(loop, op):
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"{cert_kind}: entry op {op!r} outside the loop body",
            loop=loop_name,
        )
        return None
    lb = entry.get("lb_path", ())
    ub = entry.get("ub_path", ())
    w_lo = _path_weight(loop, lb, ii, anchor, op, report, cert_kind, loop_name)
    w_hi = _path_weight(loop, ub, ii, op, anchor, report, cert_kind, loop_name)
    if w_lo is None or w_hi is None:
        return None
    return (w_lo, -w_hi)


def _table_counts(
    machine: MachineDescription, opclass: OpClass, resource: str
) -> Dict[int, int]:
    """Aggregated reservation counts of one resource, by table offset."""
    counts: Dict[int, int] = {}
    for use in machine.table(opclass).uses:
        if use.resource == resource:
            counts[use.offset] = counts.get(use.offset, 0) + use.count
    return counts


def _require(
    cert: Certificate,
    fields: Dict[str, type],
    report: Report,
    loop_name: str,
) -> bool:
    """BOUND001 on missing or ill-typed certificate fields."""
    kind = cert.get("kind", "<missing>")
    ok = True
    for name, typ in fields.items():
        value = cert.get(name)
        if not isinstance(value, typ) or (typ is int and isinstance(value, bool)):
            report.add(
                "BOUND001",
                Severity.ERROR,
                f"{kind}: field {name!r} missing or not {typ.__name__} "
                f"(got {value!r})",
                loop=loop_name,
            )
            ok = False
    return ok


def _check_per_ii_frame(cert: Certificate, report: Report, loop_name: str) -> bool:
    """Shared ii/bound framing of the per-II certificate kinds."""
    if not _require(cert, {"ii": int, "bound": int}, report, loop_name):
        return False
    ii, bound = cert["ii"], cert["bound"]
    if ii < 1 or bound != ii + 1:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"{cert['kind']}: per-II certificate must claim bound = ii + 1 "
            f"(ii={ii}, bound={bound})",
            loop=loop_name,
        )
        return False
    return True


# ----------------------------------------------------------------------
# Per-kind checkers
# ----------------------------------------------------------------------
def _check_resource(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _require(
        cert,
        {"resource": str, "available": int, "contributions": list, "total": int, "bound": int},
        report,
        name,
    ):
        return
    resource = cert["resource"]
    avail = machine.availability.get(resource)
    if avail is None or avail != cert["available"]:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"resource: availability of {resource!r} claimed {cert['available']}, "
            f"machine says {avail}",
            loop=name,
        )
        return
    seen: Dict[int, int] = {}
    for item in cert["contributions"]:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not _valid_op(loop, item[0])
            or not isinstance(item[1], int)
        ):
            report.add(
                "BOUND001",
                Severity.ERROR,
                f"resource: malformed contribution {item!r}",
                loop=name,
            )
            return
        op, count = item
        if op in seen:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"resource: op {op} contributes twice",
                loop=name,
                ops=(op,),
            )
            return
        actual = sum(
            use.count
            for use in machine.table(loop.ops[op].opclass).uses
            if use.resource == resource
        )
        if count > actual:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"resource: op {op} claimed to use {count} of {resource!r}, "
                f"its reservation table uses {actual}",
                loop=name,
                ops=(op,),
            )
            return
        seen[op] = count
    total = sum(seen.values())
    if total != cert["total"] or cert["bound"] != max(
        1, math.ceil(total / max(avail, 1))
    ):
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"resource: total/bound arithmetic wrong (claimed total "
            f"{cert['total']}, bound {cert['bound']}; recomputed total {total})",
            loop=name,
        )


def _check_recurrence(loop: Loop, cert: Certificate, report: Report) -> None:
    name = loop.name
    if not _require(
        cert,
        {"arcs": list, "total_latency": int, "total_omega": int, "bound": int},
        report,
        name,
    ):
        return
    arcs = cert["arcs"]
    if not arcs:
        report.add(
            "BOUND001", Severity.ERROR, "recurrence: empty circuit", loop=name
        )
        return
    lat_sum = 0
    omega_sum = 0
    at: Optional[int] = None
    first: Optional[int] = None
    for claim in arcs:
        if not _match_arc(loop, claim):
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"recurrence: no DDG arc at least as strong as claimed "
                f"{list(claim)}",
                loop=name,
            )
            return
        src, dst, lat, omega = claim
        if first is None:
            first = src
        elif src != at:
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"recurrence: circuit discontinuity at op {at} "
                f"(next arc starts at {src})",
                loop=name,
            )
            return
        lat_sum += lat
        omega_sum += omega
        at = dst
    if at != first:
        report.add(
            "BOUND002",
            Severity.ERROR,
            f"recurrence: walk ends at op {at}, started at {first} (not closed)",
            loop=name,
        )
        return
    if omega_sum < 1:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"recurrence: circuit distance must be positive (got {omega_sum})",
            loop=name,
        )
        return
    if (
        lat_sum != cert["total_latency"]
        or omega_sum != cert["total_omega"]
        or cert["bound"] != math.ceil(lat_sum / omega_sum)
    ):
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"recurrence: arithmetic wrong (claimed L={cert['total_latency']}, "
            f"D={cert['total_omega']}, bound={cert['bound']}; recomputed "
            f"L={lat_sum}, D={omega_sum})",
            loop=name,
        )


def _check_slot_conflict(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _check_per_ii_frame(cert, report, name):
        return
    if not _require(
        cert,
        {"anchor": int, "resource": str, "slot": int, "available": int, "used": int, "rigid": list},
        report,
        name,
    ):
        return
    ii = cert["ii"]
    anchor = cert["anchor"]
    resource = cert["resource"]
    slot = cert["slot"]
    if not _valid_op(loop, anchor) or not 0 <= slot < ii:
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"slot_conflict: anchor {anchor} or slot {slot} out of range",
            loop=name,
        )
        return
    avail = machine.availability.get(resource)
    if avail is None or avail != cert["available"]:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"slot_conflict: availability of {resource!r} claimed "
            f"{cert['available']}, machine says {avail}",
            loop=name,
        )
        return
    used = 0
    seen_ops = set()
    for entry in cert["rigid"]:
        window = _checked_offset(
            loop, entry, ii, anchor, report, "slot_conflict", name
        )
        if window is None:
            return
        lo, hi = window
        op = entry["op"]
        offset = entry.get("offset")
        if op in seen_ops:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"slot_conflict: op {op} appears twice among the rigid ops",
                loop=name,
                ops=(op,),
            )
            return
        seen_ops.add(op)
        if not isinstance(offset, int) or not (lo == hi == offset):
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"slot_conflict: op {op} is not rigid at offset {offset!r} "
                f"(proven window [{lo}, {hi}])",
                loop=name,
                ops=(op,),
            )
            return
        actual = _table_counts(machine, loop.ops[op].opclass, resource)
        claimed_by_offset: Dict[int, int] = {}
        for use in entry.get("uses", ()):
            if (
                not isinstance(use, (list, tuple))
                or len(use) != 2
                or not all(isinstance(x, int) for x in use)
            ):
                report.add(
                    "BOUND001",
                    Severity.ERROR,
                    f"slot_conflict: malformed use claim {use!r} on op {op}",
                    loop=name,
                    ops=(op,),
                )
                return
            use_offset, count = use
            if (offset + use_offset) % ii != slot:
                report.add(
                    "BOUND004",
                    Severity.ERROR,
                    f"slot_conflict: op {op} use at table offset {use_offset} "
                    f"lands in slot {(offset + use_offset) % ii}, not {slot}",
                    loop=name,
                    ops=(op,),
                )
                return
            claimed_by_offset[use_offset] = (
                claimed_by_offset.get(use_offset, 0) + count
            )
        for use_offset, count in claimed_by_offset.items():
            if count > actual.get(use_offset, 0):
                report.add(
                    "BOUND003",
                    Severity.ERROR,
                    f"slot_conflict: op {op} claims {count} uses of "
                    f"{resource!r} at table offset {use_offset}, its class "
                    f"reserves {actual.get(use_offset, 0)}",
                    loop=name,
                    ops=(op,),
                )
                return
        used += sum(claimed_by_offset.values())
    if used != cert["used"] or used <= avail:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"slot_conflict: usage arithmetic wrong or not oversubscribed "
            f"(claimed used={cert['used']}, recomputed {used}, "
            f"available {avail})",
            loop=name,
        )


def _check_offset_exclusion(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _check_per_ii_frame(cert, report, name):
        return
    if not _require(
        cert,
        {"anchor": int, "op": int, "lo": int, "hi": int, "rigid": list},
        report,
        name,
    ):
        return
    ii = cert["ii"]
    anchor = cert["anchor"]
    op = cert["op"]
    if not _valid_op(loop, anchor) or not _valid_op(loop, op):
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"offset_exclusion: anchor {anchor} or op {op} out of range",
            loop=name,
        )
        return
    # Rebuild the rigid usage table from the machine description alone.
    usage: Dict[Tuple[str, int], int] = {}
    seen_ops = {op}
    for entry in cert["rigid"]:
        window = _checked_offset(
            loop, entry, ii, anchor, report, "offset_exclusion", name
        )
        if window is None:
            return
        lo_r, hi_r = window
        rop = entry["op"]
        roffset = entry.get("offset")
        if rop in seen_ops:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"offset_exclusion: op {rop} appears twice (or is the "
                f"excluded op itself)",
                loop=name,
                ops=(rop,),
            )
            return
        seen_ops.add(rop)
        if not isinstance(roffset, int) or not (lo_r == hi_r == roffset):
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"offset_exclusion: op {rop} is not rigid at offset "
                f"{roffset!r} (proven window [{lo_r}, {hi_r}])",
                loop=name,
                ops=(rop,),
            )
            return
        for use in machine.table(loop.ops[rop].opclass).uses:
            key = (use.resource, (roffset + use.offset) % ii)
            usage[key] = usage.get(key, 0) + use.count
    # The claimed window must itself be proven from the anchor.
    window = _checked_offset(
        loop,
        {"op": op, "lb_path": cert.get("lb_path", ()), "ub_path": cert.get("ub_path", ())},
        ii,
        anchor,
        report,
        "offset_exclusion",
        name,
    )
    if window is None:
        return
    lo_p, hi_p = window
    lo, hi = cert["lo"], cert["hi"]
    # Soundness needs the checked window to contain the proven one:
    # lo <= lo_p and hi >= hi_p would *weaken*; the emitter claims exact,
    # and a claimed window stricter than proven is rejected.
    if lo > lo_p or hi < hi_p:
        report.add(
            "BOUND002",
            Severity.ERROR,
            f"offset_exclusion: claimed window [{lo}, {hi}] is narrower than "
            f"the proven [{lo_p}, {hi_p}]",
            loop=name,
            ops=(op,),
        )
        return
    if hi < lo:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"offset_exclusion: empty window [{lo}, {hi}]",
            loop=name,
            ops=(op,),
        )
        return
    uses = machine.table(loop.ops[op].opclass).uses
    if not uses:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"offset_exclusion: op {op} reserves no resources, any offset fits",
            loop=name,
            ops=(op,),
        )
        return
    for offset in range(lo, min(hi, lo + ii - 1) + 1):
        fits = True
        for use in uses:
            avail = machine.availability.get(use.resource, 0)
            key = (use.resource, (offset + use.offset) % ii)
            if usage.get(key, 0) + use.count > avail:
                fits = False
                break
        if fits:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"offset_exclusion: offset {offset} fits op {op} against the "
                f"rigid reservation pattern; the window is not excluded",
                loop=name,
                ops=(op,),
            )
            return


def _check_window_density(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _check_per_ii_frame(cert, report, name):
        return
    if not _require(
        cert,
        {"anchor": int, "resource": str, "window": list, "available": int, "used": int, "members": list},
        report,
        name,
    ):
        return
    ii = cert["ii"]
    anchor = cert["anchor"]
    resource = cert["resource"]
    window = cert["window"]
    if (
        not _valid_op(loop, anchor)
        or len(window) != 2
        or not all(isinstance(x, int) for x in window)
    ):
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"window_density: anchor {anchor} or window {window!r} malformed",
            loop=name,
        )
        return
    w0, w1 = window
    span = w1 - w0 + 1
    if span < 1 or span > ii:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"window_density: window span {span} must be within [1, II={ii}]",
            loop=name,
        )
        return
    avail = machine.availability.get(resource)
    if avail is None or avail != cert["available"]:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"window_density: availability of {resource!r} claimed "
            f"{cert['available']}, machine says {avail}",
            loop=name,
        )
        return
    used = 0
    seen_ops = set()
    for entry in cert["members"]:
        proven = _checked_offset(
            loop, entry, ii, anchor, report, "window_density", name
        )
        if proven is None:
            return
        lo_p, hi_p = proven
        op = entry["op"]
        lo, hi = entry.get("lo"), entry.get("hi")
        if op in seen_ops:
            report.add(
                "BOUND003",
                Severity.ERROR,
                f"window_density: op {op} appears twice among the members",
                loop=name,
                ops=(op,),
            )
            return
        seen_ops.add(op)
        if (
            not isinstance(lo, int)
            or not isinstance(hi, int)
            or lo > lo_p
            or hi < hi_p
        ):
            report.add(
                "BOUND002",
                Severity.ERROR,
                f"window_density: op {op} claimed window [{lo!r}, {hi!r}] is "
                f"narrower than the proven [{lo_p}, {hi_p}]",
                loop=name,
                ops=(op,),
            )
            return
        actual = _table_counts(machine, loop.ops[op].opclass, resource)
        claimed_by_offset: Dict[int, int] = {}
        for use in entry.get("uses", ()):
            if (
                not isinstance(use, (list, tuple))
                or len(use) != 2
                or not all(isinstance(x, int) for x in use)
            ):
                report.add(
                    "BOUND001",
                    Severity.ERROR,
                    f"window_density: malformed use claim {use!r} on op {op}",
                    loop=name,
                    ops=(op,),
                )
                return
            use_offset, count = use
            if lo + use_offset < w0 or hi + use_offset > w1:
                report.add(
                    "BOUND004",
                    Severity.ERROR,
                    f"window_density: op {op} use at table offset {use_offset} "
                    f"can fall outside the window [{w0}, {w1}]",
                    loop=name,
                    ops=(op,),
                )
                return
            claimed_by_offset[use_offset] = (
                claimed_by_offset.get(use_offset, 0) + count
            )
        for use_offset, count in claimed_by_offset.items():
            if count > actual.get(use_offset, 0):
                report.add(
                    "BOUND003",
                    Severity.ERROR,
                    f"window_density: op {op} claims {count} uses of "
                    f"{resource!r} at table offset {use_offset}, its class "
                    f"reserves {actual.get(use_offset, 0)}",
                    loop=name,
                    ops=(op,),
                )
                return
        used += sum(claimed_by_offset.values())
    if used != cert["used"] or used <= avail * span:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"window_density: usage arithmetic wrong or density not exceeded "
            f"(claimed used={cert['used']}, recomputed {used}, capacity "
            f"{avail} x {span})",
            loop=name,
        )


def _check_register_pressure(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _check_per_ii_frame(cert, report, name):
        return
    if not _require(
        cert,
        {"reg_class": str, "registers": int, "values": list, "invariants": list, "total_lifetime": int},
        report,
        name,
    ):
        return
    ii = cert["ii"]
    cls = cert["reg_class"]
    files = _register_file(machine)
    if cls not in files or files[cls] != cert["registers"]:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"register_pressure: file size of class {cls!r} claimed "
            f"{cert['registers']}, machine says {files.get(cls)}",
            loop=name,
        )
        return
    defs = loop.defs_of()
    total = 0
    seen_values = set()
    for entry in cert["values"]:
        value = entry.get("value")
        def_op = entry.get("def_op")
        lifetime = entry.get("lifetime")
        use_op = entry.get("use_op")
        omega = entry.get("omega")
        if (
            not isinstance(value, str)
            or not isinstance(lifetime, int)
            or not isinstance(omega, int)
            or not _valid_op(loop, def_op)
        ):
            report.add(
                "BOUND001",
                Severity.ERROR,
                f"register_pressure: malformed value entry {entry!r}",
                loop=name,
            )
            return
        if value in seen_values:
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: value {value!r} counted twice",
                loop=name,
            )
            return
        seen_values.add(value)
        if defs.get(value) != def_op:
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: op {def_op} does not define {value!r}",
                loop=name,
                ops=(def_op,),
            )
            return
        if _value_class(loop, value) != cls:
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: value {value!r} is not of class {cls!r}",
                loop=name,
            )
            return
        if use_op is None:
            if lifetime != 1:
                report.add(
                    "BOUND006",
                    Severity.ERROR,
                    f"register_pressure: unused value {value!r} can only "
                    f"claim lifetime 1 (claimed {lifetime})",
                    loop=name,
                )
                return
            total += 1
            continue
        if not _valid_op(loop, use_op) or omega < 0:
            report.add(
                "BOUND001",
                Severity.ERROR,
                f"register_pressure: malformed use claim on {value!r}",
                loop=name,
            )
            return
        if not any(
            arc.kind is DepKind.FLOW
            and arc.value == value
            and arc.src == def_op
            and arc.dst == use_op
            and arc.omega >= omega
            for arc in loop.ddg.arcs
        ):
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: no flow arc carries {value!r} from op "
                f"{def_op} to op {use_op} at distance >= {omega}",
                loop=name,
                ops=(def_op, use_op),
            )
            return
        weight = _path_weight(
            loop,
            entry.get("path", ()),
            ii,
            def_op,
            use_op,
            report,
            "register_pressure",
            name,
        )
        if weight is None:
            return
        if lifetime > max(1, weight + ii * omega):
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: value {value!r} claims lifetime "
                f"{lifetime}, witness only proves "
                f"{max(1, weight + ii * omega)}",
                loop=name,
            )
            return
        total += lifetime
    inv_seen = set()
    for value in cert["invariants"]:
        if not isinstance(value, str) or value in inv_seen or value in seen_values:
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: invariant {value!r} malformed or "
                f"double-counted",
                loop=name,
            )
            return
        inv_seen.add(value)
        if (
            value in defs
            or value not in loop.live_in
            or not any(value in op.srcs for op in loop.ops)
        ):
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: {value!r} is not a consumed loop "
                f"invariant",
                loop=name,
            )
            return
        if _value_class(loop, value) != cls:
            report.add(
                "BOUND006",
                Severity.ERROR,
                f"register_pressure: invariant {value!r} is not of class "
                f"{cls!r}",
                loop=name,
            )
            return
    pressure = math.ceil(total / ii) + len(inv_seen)
    if total != cert["total_lifetime"] or pressure <= cert["registers"]:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"register_pressure: arithmetic wrong or pressure not exceeded "
            f"(claimed total={cert['total_lifetime']}, recomputed {total}; "
            f"pressure {pressure} vs {cert['registers']} registers)",
            loop=name,
        )


def _check_bank_pairing(
    loop: Loop, machine: MachineDescription, cert: Certificate, report: Report
) -> None:
    name = loop.name
    if not _require(
        cert,
        {"bound": int, "mem_ops": list, "n_refs": int, "cover": list, "max_known_pairs": int},
        report,
        name,
    ):
        return
    if not machine.has_banked_memory:
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"bank_pairing: machine {machine.name!r} has no banked memory",
            loop=name,
        )
        return
    actual_mem = sorted(op.index for op in loop.ops if op.is_memory)
    if cert["mem_ops"] != actual_mem or cert["n_refs"] != len(actual_mem):
        report.add(
            "BOUND003",
            Severity.ERROR,
            f"bank_pairing: claimed memory refs {cert['mem_ops']} differ from "
            f"the loop's {actual_mem}",
            loop=name,
        )
        return
    cover = cert["cover"]
    if not all(_valid_op(loop, c) and c in set(actual_mem) for c in cover):
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"bank_pairing: cover {cover!r} is not a set of memory refs",
            loop=name,
        )
        return
    cover_set = set(cover)
    if len(cover_set) != len(cover):
        report.add(
            "BOUND003",
            Severity.ERROR,
            "bank_pairing: duplicate vertices in the cover",
            loop=name,
        )
        return
    for i, a in enumerate(actual_mem):
        for b in actual_mem[i + 1 :]:
            rel = relative_bank(loop.ops[a].mem, loop.ops[b].mem, loop.known_parity)
            if rel == 1 and a not in cover_set and b not in cover_set:
                report.add(
                    "BOUND003",
                    Severity.ERROR,
                    f"bank_pairing: opposite-bank pair ({a}, {b}) is not "
                    f"covered; the matching bound does not hold",
                    loop=name,
                    ops=(a, b),
                )
                return
    if (
        cert["max_known_pairs"] != len(cover_set)
        or cert["bound"] != cert["n_refs"] - len(cover_set)
    ):
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"bank_pairing: arithmetic wrong (claimed bound {cert['bound']}, "
            f"pairs {cert['max_known_pairs']}; cover size {len(cover_set)}, "
            f"refs {cert['n_refs']})",
            loop=name,
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def check_certificate(
    loop: Loop, machine: MachineDescription, cert: Certificate
) -> Report:
    """Validate one certificate against the loop body and machine."""
    report = Report()
    kind = cert.get("kind")
    if kind not in _ALL_KINDS:
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"unknown certificate kind {kind!r}",
            loop=loop.name,
        )
        return report
    expected_regime = {
        "resource": "schedule",
        "recurrence": "schedule",
        "slot_conflict": "schedule",
        "offset_exclusion": "schedule",
        "window_density": "schedule",
        "register_pressure": "allocation",
        "bank_pairing": "pairing",
    }[kind]
    if cert.get("regime") != expected_regime:
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"{kind}: regime must be {expected_regime!r} "
            f"(got {cert.get('regime')!r})",
            loop=loop.name,
        )
        return report
    if kind == "resource":
        _check_resource(loop, machine, cert, report)
    elif kind == "recurrence":
        _check_recurrence(loop, cert, report)
    elif kind == "slot_conflict":
        _check_slot_conflict(loop, machine, cert, report)
    elif kind == "offset_exclusion":
        _check_offset_exclusion(loop, machine, cert, report)
    elif kind == "window_density":
        _check_window_density(loop, machine, cert, report)
    elif kind == "register_pressure":
        _check_register_pressure(loop, machine, cert, report)
    else:
        _check_bank_pairing(loop, machine, cert, report)
    return report


def check_bounds(
    loop: Loop, machine: MachineDescription, payload: Mapping[str, Any]
) -> Report:
    """Validate a full ``LoopBounds`` payload: certificates plus coverage.

    Every II strictly below ``schedulable_bound`` must be ruled out by a
    valid schedule-regime certificate (the base counting/circuit bounds
    cover the range up to their value; each higher II needs its own
    per-II certificate), and every II in ``[schedulable_bound,
    allocatable_bound)`` needs a valid allocation certificate.  A gap
    means the claimed bound was never proven.
    """
    report = Report()
    name = loop.name
    for key in ("schedulable_bound", "allocatable_bound", "certificates"):
        if key not in payload:
            report.add(
                "BOUND001",
                Severity.ERROR,
                f"bounds payload missing {key!r}",
                loop=name,
            )
            return report
    if payload.get("n_ops") != loop.n_ops:
        report.add(
            "BOUND001",
            Severity.ERROR,
            f"bounds payload claims {payload.get('n_ops')} ops, loop has "
            f"{loop.n_ops}",
            loop=name,
        )
        return report
    base = 1
    covered_schedule = set()
    covered_alloc = set()
    pairing = 1
    for cert in payload["certificates"]:
        sub = check_certificate(loop, machine, cert)
        report.extend(sub)
        if not sub.ok:
            continue
        kind = cert.get("kind")
        if kind in ("resource", "recurrence"):
            base = max(base, cert["bound"])
        elif kind in _SCHEDULE_KINDS:
            covered_schedule.add(cert["ii"])
        elif kind == "register_pressure":
            covered_alloc.add(cert["ii"])
        elif kind == "bank_pairing":
            pairing = max(pairing, cert["bound"])
    schedulable = payload["schedulable_bound"]
    allocatable = payload["allocatable_bound"]
    for ii in range(base, schedulable):
        if ii not in covered_schedule:
            report.add(
                "BOUND004",
                Severity.ERROR,
                f"schedulable_bound={schedulable} claimed but II={ii} has no "
                f"valid schedule-regime certificate (base bounds prove "
                f"only up to {base})",
                loop=name,
            )
    for ii in range(max(schedulable, base), allocatable):
        if ii not in covered_alloc:
            report.add(
                "BOUND004",
                Severity.ERROR,
                f"allocatable_bound={allocatable} claimed but II={ii} has no "
                f"valid allocation certificate",
                loop=name,
            )
    if payload.get("pairing_bound", 1) > pairing:
        report.add(
            "BOUND004",
            Severity.ERROR,
            f"pairing_bound={payload.get('pairing_bound')} claimed but the "
            f"certificates prove only {pairing}",
            loop=name,
        )
    return report


def check_achieved(
    payload: Mapping[str, Any],
    *,
    ii: Optional[int],
    spill_free: bool,
    source: str = "scheduler",
) -> Report:
    """BOUND005: an achieved (or proved-optimal) II must respect the bounds.

    ``spill_free`` gates the allocation bound: a result that spilled
    changed the loop body, so only the schedulability bound applies to it.
    """
    report = Report()
    name = str(payload.get("loop", ""))
    if ii is None:
        return report
    schedulable = payload.get("schedulable_bound")
    allocatable = payload.get("allocatable_bound")
    if isinstance(schedulable, int) and ii < schedulable:
        report.add(
            "BOUND005",
            Severity.ERROR,
            f"{source} achieved II={ii} below the certified schedulable "
            f"bound {schedulable}: the certificate or the schedule is wrong",
            loop=name,
        )
    elif spill_free and isinstance(allocatable, int) and ii < allocatable:
        report.add(
            "BOUND005",
            Severity.ERROR,
            f"{source} achieved a spill-free II={ii} below the certified "
            f"allocatable bound {allocatable}: the certificate or the "
            f"allocation is wrong",
            loop=name,
        )
    return report
