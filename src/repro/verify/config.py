"""Process-wide verification defaults.

The three pipeliner drivers accept ``verify=None`` meaning "use the
process default".  Tests turn the default on (every scheduled loop in the
suite is cross-checked); ``python -m repro <experiment> --strict`` does the
same so an experiment run fails loudly on any ERROR diagnostic.
"""

from __future__ import annotations

from typing import Optional

_DEFAULT_VERIFY = False


def set_default_verify(enabled: bool) -> None:
    """Turn independent verification of scheduled loops on/off by default."""
    global _DEFAULT_VERIFY
    _DEFAULT_VERIFY = bool(enabled)


def default_verify() -> bool:
    return _DEFAULT_VERIFY


def resolve_verify(verify: Optional[bool]) -> bool:
    """Resolve a driver's ``verify`` option against the process default."""
    return _DEFAULT_VERIFY if verify is None else bool(verify)
