"""Independent register-allocation verifier (rules REG001-REG004).

Rebuilds every cyclic live range from the schedule and the flow arcs —
without calling :mod:`repro.regalloc.rename` — and proves the colouring
interference-free and within the register files:

* a value defined at ``t(d)`` whose furthest use (over flow arcs, omega
  included) is at ``t(u) + omega * II`` lives ``max(end - start, 1)``
  cycles; the unroll factor must cover ``ceil(lifetime / II)`` (REG004);
* each of the ``kmin`` renamed replicas occupies the cyclic interval
  ``[(start + r*II) mod U, +lifetime)`` on the ``U = kmin * II`` cycle
  unrolled kernel; loop invariants are live for all of ``U``;
* every rebuilt range must have a physical register (REG001) inside its
  file (REG003), and no two cyclically overlapping ranges of the same
  file may share one (REG002).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..ir.operations import OpClass, RegClass, result_reg_class
from ..machine.descriptions import MachineDescription
from .diagnostics import Report, Severity


class _Range:
    """A rebuilt cyclic live interval (independent of regalloc.rename)."""

    __slots__ = ("name", "value", "start", "length")

    def __init__(self, name: str, value: str, start: int, length: int):
        self.name = name
        self.value = value
        self.start = start
        self.length = length

    def overlaps(self, other: "_Range", period: int) -> bool:
        if self.length >= period or other.length >= period:
            return True
        return ((other.start - self.start) % period) < self.length or (
            (self.start - other.start) % period
        ) < other.length


def _reg_class_of(loop: Loop, value: str) -> RegClass:
    for op in loop.ops:
        if value in op.dests:
            return result_reg_class(op.opclass)
    int_classes = (OpClass.IALU, OpClass.IMUL, OpClass.BRANCH)
    users = [op for op in loop.ops if value in op.srcs]
    if users and all(op.opclass in int_classes for op in users):
        return RegClass.INT
    return RegClass.FP


def _lifetimes(loop: Loop, ii: int, times: Mapping[int, int]) -> Dict[str, int]:
    """Value -> lifetime in cycles, straight from flow arcs and issue times."""
    lifetimes: Dict[str, int] = {}
    defs: Dict[str, int] = {}
    for op in loop.ops:
        for d in op.dests:
            defs[d] = op.index
    for value, d in defs.items():
        if d not in times:
            continue  # schedule coverage problems are SCHED003's job
        end: Optional[int] = None
        for arc in loop.ddg.arcs:
            if arc.kind is not DepKind.FLOW or arc.value != value or arc.src != d:
                continue
            if arc.dst not in times:
                continue
            use = times[arc.dst] + ii * arc.omega
            end = use if end is None else max(end, use)
        start = times[d]
        lifetimes[value] = max((end if end is not None else start + 1) - start, 1)
    return lifetimes


def check_allocation(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    times: Mapping[int, int],
    allocation,
) -> Report:
    """Verify an :class:`~repro.regalloc.coloring.AllocationResult`."""
    report = Report()
    name = loop.name
    if not getattr(allocation, "success", False):
        return report  # failed allocations carry no colouring to verify

    lifetimes = _lifetimes(loop, ii, times)
    kmin_required = 1
    worst_value = ""
    for value, life in lifetimes.items():
        need = max(1, -(-life // ii))  # ceil
        if need > kmin_required:
            kmin_required, worst_value = need, value
    kmin = allocation.kmin
    if kmin < kmin_required:
        report.add(
            "REG004",
            Severity.ERROR,
            f"kmin={kmin} but {worst_value!r} lives "
            f"{lifetimes[worst_value]} cycles, needing {kmin_required} replicas",
            loop=name,
            hint="successive iterations would clobber the value in one register",
        )
        kmin = kmin_required  # rebuild ranges at the sound factor anyway
    period = kmin * ii

    # Rebuild the renamed ranges.  Names follow the renaming contract
    # ("value@replica", "value@in") — that contract *is* the artifact's
    # interface, so a missing or differently named range is a finding.
    ranges: List[Tuple[_Range, RegClass]] = []
    defs = {d: op.index for op in loop.ops for d in op.dests}
    for value, life in lifetimes.items():
        cls = _reg_class_of(loop, value)
        start = times[defs[value]]
        for r in range(kmin):
            ranges.append(
                (_Range(f"{value}@{r}", value, (start + r * ii) % period, life), cls)
            )
    for value in sorted(loop.live_in):
        if value in defs:
            continue  # recurrences: the in-loop definition owns the register
        if not any(value in op.srcs for op in loop.ops):
            continue
        ranges.append((_Range(f"{value}@in", value, 0, period), _reg_class_of(loop, value)))

    assignment: Dict[str, Tuple[RegClass, int]] = {}
    for rng_name, color in getattr(allocation, "fp_assignment", {}).items():
        assignment[rng_name] = (RegClass.FP, color)
    for rng_name, color in getattr(allocation, "int_assignment", {}).items():
        assignment[rng_name] = (RegClass.INT, color)
    file_size = {RegClass.FP: machine.fp_regs, RegClass.INT: machine.int_regs}

    placed: List[Tuple[_Range, RegClass, int]] = []
    for rng, cls in ranges:
        got = assignment.get(rng.name)
        if got is None:
            report.add(
                "REG001",
                Severity.ERROR,
                f"live range {rng.name!r} (value {rng.value!r}) has no register",
                loop=name,
                where=f"interval [{rng.start}, +{rng.length}) on period {period}",
                hint="renaming dropped a replica, or the colouring lost a node",
            )
            continue
        got_cls, color = got
        if not (0 <= color < file_size[got_cls]):
            report.add(
                "REG003",
                Severity.ERROR,
                f"live range {rng.name!r} assigned register {color} outside the "
                f"{got_cls.value} file of {file_size[got_cls]}",
                loop=name,
            )
            continue
        placed.append((rng, got_cls, color))

    # Interference: same file, same colour, cyclically overlapping.
    by_reg: Dict[Tuple[RegClass, int], List[_Range]] = {}
    for rng, cls, color in placed:
        by_reg.setdefault((cls, color), []).append(rng)
    for (cls, color), group in sorted(by_reg.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                if a.value == b.value and a.name == b.name:
                    continue
                if a.overlaps(b, period):
                    report.add(
                        "REG002",
                        Severity.ERROR,
                        f"{a.name!r} [{a.start}, +{a.length}) and {b.name!r} "
                        f"[{b.start}, +{b.length}) overlap on period {period} "
                        f"but share {cls.value} register {color}",
                        loop=name,
                        where=f"{cls.value}{color}",
                        hint="the interference graph missed an edge or the "
                        "colouring ignored one",
                    )
    return report
