"""repro.verify — independent translation validation for pipelined loops.

Static analyzers that re-derive, from the IR and the machine description
alone, every property the pipeliners are trusted to establish — and check
the artifacts against them.  Nothing here calls into the scheduler,
renamer, colourer or emitter implementations being checked; see
DESIGN.md section 5 for the independence argument and the rule catalogue.

Checkers
--------
* :func:`lint_ddg` — DDG well-formedness (DDG001-DDG007)
* :func:`check_schedule` — modulo-schedule legality + MinII audit
  (SCHED001-SCHED004)
* :func:`check_allocation` — register colouring soundness (REG001-REG004)
* :func:`check_emitted` — dataflow over emitted code (EMIT001-EMIT003)
* :func:`check_banks` — compile-time bank claims vs concrete layouts
  (BANK001-BANK003)
* :func:`verify_all` / :func:`verify_result` — everything applicable at once
* :func:`verify_corpus` — sweep a workload corpus through all pipeliners
"""

from .api import (
    SweepEntry,
    SweepResult,
    corpus_loops,
    verify_all,
    verify_corpus,
    verify_result,
)
from .bankcheck import check_banks
from .config import default_verify, resolve_verify, set_default_verify
from .ddglint import lint_ddg
from .diagnostics import RULES, Diagnostic, Report, Severity, VerificationError
from .emitcheck import check_emitted
from .regcheck import check_allocation
from .schedcheck import check_schedule

__all__ = [
    "RULES",
    "Diagnostic",
    "Report",
    "Severity",
    "SweepEntry",
    "SweepResult",
    "VerificationError",
    "check_allocation",
    "check_banks",
    "check_emitted",
    "check_schedule",
    "corpus_loops",
    "default_verify",
    "lint_ddg",
    "resolve_verify",
    "set_default_verify",
    "verify_all",
    "verify_corpus",
    "verify_result",
]
