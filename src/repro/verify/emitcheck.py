"""Emitted-code dataflow analyzer (rules EMIT001-EMIT003).

Parses the textual listing produced by :mod:`repro.pipeline.emit` back into
(cycle, operation, iteration, registers) instances — trusting nothing but
the listing format itself — and replays a concrete execution (prologue, two
kernel passes, epilogue) to prove:

* every physical register read was previously written, or belongs to a
  live-in value initialised before the loop (EMIT001);
* between a value's write and each dependent read (derived from the loop's
  flow arcs), no other instruction writes the same physical register — the
  overlapped-stage clobber that modulo renaming exists to prevent (EMIT002);
* the prologue/kernel/epilogue sections cover exactly the instances a
  ``stages``-deep, ``kmin``-unrolled pipeline implies: ``kmin`` kernel
  instances per op, ``stages - 1 - stage(op)`` fill instances and
  ``stage(op)`` drain instances, with no duplicates (EMIT003).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.ddg import DepKind
from ..ir.loop import Loop
from .diagnostics import Report, Severity

_LABEL_RE = re.compile(r"^  (fill|drain)\+(\d+):$")
_KERNEL_LABEL_RE = re.compile(r"^  kernel\[(\d+)\]\+(\d+):$")
_INSTR_RE = re.compile(r"^    \S+.*;\s*op(\d+) iter\{i([+-]\d+)\}\s*$")
_REG_RE = re.compile(r"\$[fr]\d+")

#: Kernel passes replayed; two passes expose every cyclic def-use pattern.
_KERNEL_PASSES = 2


class _Instance:
    """One parsed instruction instance in the execution replay."""

    __slots__ = ("cycle", "op", "iteration", "dest", "srcs", "line")

    def __init__(self, cycle, op, iteration, dest, srcs, line):
        self.cycle = cycle
        self.op = op
        self.iteration = iteration
        self.dest = dest
        self.srcs = srcs
        self.line = line


def _parse_section(
    lines: List[str], section: str, report: Report, loop_name: str
) -> List[Tuple[int, int, int, Optional[str], List[str], str]]:
    """Parse one listing section into (cycle, op, iter, dest, srcs, line)."""
    out = []
    cycle: Optional[int] = None
    for line in lines:
        label = _LABEL_RE.match(line)
        if label:
            cycle = int(label.group(2))
            continue
        klabel = _KERNEL_LABEL_RE.match(line)
        if klabel:
            cycle = None  # kernel cycles are derived from (u, slot) below
            out.append((int(klabel.group(1)), int(klabel.group(2)), -1, None, [], line))
            continue
        m = _INSTR_RE.match(line)
        if not m:
            report.add(
                "EMIT003",
                Severity.ERROR,
                f"unparseable {section} line: {line.strip()!r}",
                loop=loop_name,
                where=section,
            )
            continue
        op, iteration = int(m.group(1)), int(m.group(2))
        body = line.split(";")[0]
        dest: Optional[str] = None
        if " <- " in body:
            lhs, body = body.split(" <- ", 1)
            regs = _REG_RE.findall(lhs)
            dest = regs[-1] if regs else None
        srcs = _REG_RE.findall(body)
        out.append((cycle if cycle is not None else -1, op, iteration, dest, srcs, line))
    return out


def check_emitted(
    loop: Loop,
    ii: int,
    times: Mapping[int, int],
    allocation,
    emitted,
) -> Report:
    """Verify a :class:`~repro.pipeline.emit.PipelinedCode` against its inputs."""
    report = Report()
    name = loop.name
    if any(op not in times for op in range(loop.n_ops)):
        return report  # coverage problems are SCHED003's job
    stages = 1 + max(times[op] // ii for op in range(loop.n_ops))
    kmin = emitted.kmin
    steady = (stages - 1) * ii
    if emitted.n_stages != stages:
        report.add(
            "EMIT003",
            Severity.ERROR,
            f"emitted code claims {emitted.n_stages} stages; the schedule has {stages}",
            loop=name,
        )

    # ------------------------------------------------------------------
    # Parse the three sections into instruction instances.
    # ------------------------------------------------------------------
    prologue: List[_Instance] = []
    for cycle, op, iteration, dest, srcs, line in _parse_section(
        emitted.prologue, "prologue", report, name
    ):
        if iteration == -1:
            continue  # kernel label leaked into prologue; already reported
        prologue.append(_Instance(cycle, op, iteration, dest, srcs, line))

    kernel: List[_Instance] = []
    kcycle: Optional[int] = None
    for cycle, op, iteration, dest, srcs, line in _parse_section(
        emitted.kernel, "kernel", report, name
    ):
        if iteration == -1:  # (u, slot) label
            kcycle = steady + cycle * ii + op  # cycle=u, op=slot here
            continue
        kernel.append(_Instance(kcycle if kcycle is not None else steady, op, iteration, dest, srcs, line))

    epilogue: List[_Instance] = []
    for cycle, op, iteration, dest, srcs, line in _parse_section(
        emitted.epilogue, "epilogue", report, name
    ):
        if iteration == -1:
            continue
        epilogue.append(_Instance(cycle, op, iteration, dest, srcs, line))

    _check_coverage(loop, ii, times, stages, kmin, prologue, kernel, epilogue, report)

    # ------------------------------------------------------------------
    # Replay a concrete execution: prologue, _KERNEL_PASSES kernel passes,
    # then the epilogue, with iterations renumbered absolutely.
    # ------------------------------------------------------------------
    trace: List[_Instance] = list(prologue)
    for p in range(_KERNEL_PASSES):
        for inst in kernel:
            trace.append(
                _Instance(
                    inst.cycle + p * kmin * ii,
                    inst.op,
                    inst.iteration + p * kmin,
                    inst.dest,
                    inst.srcs,
                    inst.line,
                )
            )
    drain_base = steady + _KERNEL_PASSES * kmin * ii
    for inst in epilogue:
        trace.append(
            _Instance(
                drain_base + inst.cycle,
                inst.op,
                inst.iteration + _KERNEL_PASSES * kmin,
                inst.dest,
                inst.srcs,
                inst.line,
            )
        )
    trace.sort(key=lambda i: (i.cycle, i.op))

    _check_def_before_use(loop, allocation, trace, report, name)
    _check_clobbers(loop, allocation, kmin, trace, report, name)
    return report


def _check_coverage(
    loop: Loop,
    ii: int,
    times: Mapping[int, int],
    stages: int,
    kmin: int,
    prologue: List[_Instance],
    kernel: List[_Instance],
    epilogue: List[_Instance],
    report: Report,
) -> None:
    """EMIT003: per-op instance counts implied by stage depth and unroll."""
    name = loop.name
    for section, instances in (("prologue", prologue), ("kernel", kernel), ("epilogue", epilogue)):
        seen: Dict[Tuple[int, int], int] = {}
        for inst in instances:
            seen[(inst.op, inst.iteration)] = seen.get((inst.op, inst.iteration), 0) + 1
        for (op, iteration), count in sorted(seen.items()):
            if count > 1:
                report.add(
                    "EMIT003",
                    Severity.ERROR,
                    f"op {op} iteration {iteration} emitted {count} times in the {section}",
                    loop=name,
                    ops=(op,),
                    where=section,
                )
    counts: Dict[str, Dict[int, int]] = {"prologue": {}, "kernel": {}, "epilogue": {}}
    for section, instances in (("prologue", prologue), ("kernel", kernel), ("epilogue", epilogue)):
        for inst in instances:
            counts[section][inst.op] = counts[section].get(inst.op, 0) + 1
    for op in range(loop.n_ops):
        stage = times[op] // ii
        expect = {"prologue": stages - 1 - stage, "kernel": kmin, "epilogue": stage}
        for section, want in expect.items():
            got = counts[section].get(op, 0)
            if got != want:
                what = (
                    "epilogue drain incomplete"
                    if section == "epilogue" and got < want
                    else f"{section} instance count wrong"
                )
                report.add(
                    "EMIT003",
                    Severity.ERROR,
                    f"{what} for op {op} (stage {stage}): "
                    f"{got} instance(s) emitted, {want} required",
                    loop=name,
                    ops=(op,),
                    where=section,
                    hint="an op at stage s must fill (stages-1-s) times, run kmin "
                    "times per kernel, and drain s times",
                )


def _register_names(allocation) -> Dict[str, str]:
    """Renamed live range -> textual physical register, e.g. 'v3@1' -> '$f2'."""
    names: Dict[str, str] = {}
    for rng, color in getattr(allocation, "fp_assignment", {}).items():
        names[rng] = f"$f{color}"
    for rng, color in getattr(allocation, "int_assignment", {}).items():
        names[rng] = f"$r{color}"
    return names


def _preinitialized(loop: Loop, allocation) -> set:
    """Registers holding values defined before the loop body runs.

    Loop invariants (``v@in``) and every replica of a recurrence's register
    (its first ``omega`` instances are initialised by the loop preamble,
    which the emitter does not print) count as defined at entry.
    """
    names = _register_names(allocation)
    defined = set()
    defs = {d for op in loop.ops for d in op.dests}
    for rng, reg in names.items():
        value = rng.rsplit("@", 1)[0]
        if rng.endswith("@in") or (value in loop.live_in and value in defs):
            defined.add(reg)
    return defined


def _check_def_before_use(
    loop: Loop, allocation, trace: List[_Instance], report: Report, name: str
) -> None:
    """EMIT001: replay the trace; reads must follow writes (or live-ins)."""
    defined = _preinitialized(loop, allocation)
    i = 0
    flagged = set()
    while i < len(trace):
        j = i
        while j < len(trace) and trace[j].cycle == trace[i].cycle:
            j += 1
        bundle = trace[i:j]
        # Within a cycle, register reads observe the *previous* cycle's
        # state: a same-cycle write cannot satisfy a read.
        for inst in bundle:
            for reg in inst.srcs:
                if reg not in defined and reg not in flagged:
                    flagged.add(reg)
                    report.add(
                        "EMIT001",
                        Severity.ERROR,
                        f"{reg} read at cycle {inst.cycle} by op {inst.op} "
                        f"(iteration {inst.iteration}) before any definition",
                        loop=name,
                        ops=(inst.op,),
                        where=inst.line.strip(),
                        hint="the operand selects a renamed copy nothing wrote; "
                        "check the iteration -> replica mapping",
                    )
        for inst in bundle:
            if inst.dest is not None:
                defined.add(inst.dest)
        i = j


def _check_clobbers(
    loop: Loop,
    allocation,
    kmin: int,
    trace: List[_Instance],
    report: Report,
    name: str,
) -> None:
    """EMIT002: no write may land between a def and its dependent reads."""
    names = _register_names(allocation)
    by_key: Dict[Tuple[int, int], _Instance] = {
        (inst.op, inst.iteration): inst for inst in trace
    }
    writes: Dict[str, List[Tuple[int, Tuple[int, int]]]] = {}
    for inst in trace:
        if inst.dest is not None:
            writes.setdefault(inst.dest, []).append((inst.cycle, (inst.op, inst.iteration)))
    for reg in writes:
        writes[reg].sort()

    flow = [
        (a.src, a.dst, a.value, a.omega)
        for a in loop.ddg.arcs
        if a.kind is DepKind.FLOW and a.value
    ]
    reported = set()
    for inst in trace:
        if inst.dest is None:
            continue
        expected = names.get(f"{_dest_value(loop, inst.op)}@{inst.iteration % kmin}")
        for src, dst, value, omega in flow:
            if src != inst.op:
                continue
            consumer = by_key.get((dst, inst.iteration + omega))
            if consumer is None:
                continue  # past the end of the replayed window
            if expected is not None and expected not in consumer.srcs:
                key = (inst.op, dst, inst.iteration)
                if key not in reported:
                    reported.add(key)
                    report.add(
                        "EMIT002",
                        Severity.ERROR,
                        f"op {dst} (iteration {consumer.iteration}) should read "
                        f"{value!r} from {expected} written by op {inst.op} "
                        f"(iteration {inst.iteration}) but reads {consumer.srcs}",
                        loop=name,
                        ops=(inst.op, dst),
                        where=consumer.line.strip(),
                    )
                continue
            for w_cycle, w_ident in writes.get(inst.dest, ()):
                if w_ident == (inst.op, inst.iteration):
                    continue
                clobbers = (
                    inst.cycle < w_cycle < consumer.cycle
                    or w_cycle == inst.cycle  # two writes, same register, same cycle
                )
                if clobbers:
                    key = (inst.dest, w_ident)
                    if key in reported:
                        continue
                    reported.add(key)
                    report.add(
                        "EMIT002",
                        Severity.ERROR,
                        f"{inst.dest} written by op {inst.op} (iteration "
                        f"{inst.iteration}, cycle {inst.cycle}) is overwritten by "
                        f"op {w_ident[0]} (iteration {w_ident[1]}, cycle {w_cycle}) "
                        f"before op {dst} reads it at cycle {consumer.cycle}",
                        loop=name,
                        ops=(inst.op, w_ident[0], dst),
                        hint="overlapped pipestages reuse a register too early; "
                        "kmin or the colouring is wrong",
                    )


def _dest_value(loop: Loop, op: int) -> str:
    dests = loop.ops[op].dests
    return dests[0] if dests else ""
