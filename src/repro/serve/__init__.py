"""repro.serve — scheduling as a service.

The pipeliners wrapped in a long-running daemon: an asyncio NDJSON front
end (TCP and/or unix socket), a batching dispatcher with single-flight
deduplication over a two-tier (in-process LRU + sharded disk) result
cache, and a persistent worker pool whose per-process scheduler memos
stay warm across requests.  A latency-instrumented load generator
(:mod:`repro.serve.loadgen`) replays the committed corpora through the
wire protocol and emits ``BENCH_service.json``.

Module map:

* :mod:`repro.serve.protocol` — the NDJSON wire protocol (requests,
  responses, error codes, LoopSpec-token payloads);
* :mod:`repro.serve.cachetier` — size-bounded LRU with in-flight
  pinning, tiered over :class:`repro.exec.cache.ScheduleCache`;
* :mod:`repro.serve.workers` — persistent per-slot worker processes
  with a kill-and-respawn watchdog (``jobs=0`` = thread mode);
* :mod:`repro.serve.service` — admission, batching, single-flight,
  budget clamping, graceful drain;
* :mod:`repro.serve.daemon` — the sockets + signal handling;
* :mod:`repro.serve.loadgen` — the load harness and selftest.
"""

from .cachetier import LRUCache, TieredCache
from .daemon import ServeDaemon, handle_payload, run_daemon
from .loadgen import LoadgenOptions, LoadReport, run_loadgen
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ScheduleRequest,
    parse_schedule_request,
)
from .service import SchedulerService, ServeConfig

__all__ = [
    "LRUCache",
    "TieredCache",
    "ServeDaemon",
    "handle_payload",
    "run_daemon",
    "LoadgenOptions",
    "LoadReport",
    "run_loadgen",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScheduleRequest",
    "parse_schedule_request",
    "SchedulerService",
    "ServeConfig",
]
