"""The latency-instrumented load harness for the scheduling daemon.

Replays the committed workloads through the NDJSON wire protocol at a
configurable concurrency and records what a serving system is judged by:
request latency percentiles (client-measured, p50/p99), throughput,
cache hit rate, shed/error counts — written as
``benchmarks/output/BENCH_service.json`` next to its batch cousins.

The request mix is the *quick bench grid* (livermore + recbound × three
schedulers, with the exact scheduler options the batch bench uses, so a
daemon round-trip is directly comparable to a ``repro bench --quick``
cell) plus the committed fuzz corpus specs riding through the LoopSpec
token codec with the oracle layers on.  Two phases:

* **warm** — every distinct request once, at full concurrency (all
  misses: this is the solve wave);
* **replay** — the remaining request budget cycles over the same mix in
  a seeded shuffle (all warm hits — memory or disk tier), which is what
  pushes the steady-state hit rate past 50% and measures the cache tier
  rather than the solver.

``python -m repro serve --selftest`` boots an in-process daemon on a
temporary unix socket, runs this harness against it, and (optionally)
re-runs every distinct cell through the direct exec engine to assert the
daemon is result-identical to batch execution.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exec.bench import BenchOptions, summarise, write_bench_json
from ..exec.cells import CellResult, corpus_loop_keys
from ..exec.hashing import code_version
from ..obs.history import append_history
from ..obs.provenance import provenance
from ..obs.service import LatencyStats
from .protocol import encode, parse_line

DEFAULT_FUZZ_CORPUS_DIR = pathlib.Path("tests") / "fuzz_corpus"


@dataclass
class LoadgenOptions:
    """Knobs of one load-generation session."""

    requests: int = 240
    concurrency: int = 16
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau", "portfolio")
    corpora: Tuple[str, ...] = ("livermore", "recbound")
    fuzz_corpus_dir: Optional[str] = str(DEFAULT_FUZZ_CORPUS_DIR)
    seed: int = 0
    budget: Optional[float] = 60.0
    verify: Optional[bool] = None
    simulate: bool = True
    output_dir: str = "benchmarks/output"
    # When set, the finished BENCH_service payload is also filed in the
    # run-history store (repro.obs.history) for the trend layer.  None
    # (the default) keeps tests and ad-hoc runs out of shared history.
    history_dir: Optional[str] = None

    def bench_options(self) -> BenchOptions:
        # The quick-grid configuration: identical scheduler options to
        # ``repro bench --quick`` so cells align across BENCH files.
        return BenchOptions(quick=True, schedulers=self.schedulers)


def corpus_spec_tokens(fuzz_corpus_dir) -> List[Tuple[str, str]]:
    """Distinct ``(name, token)`` pairs from the committed fuzz corpus."""
    from ..workloads.mutate import LoopSpec, spec_to_token

    directory = pathlib.Path(fuzz_corpus_dir)
    if not directory.is_dir():
        return []
    seen: Dict[str, str] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
            token = spec_to_token(LoopSpec.from_dict(entry["spec"]))
        except (ValueError, KeyError, OSError):
            continue
        fingerprint = entry.get("fingerprint", token)
        seen.setdefault(fingerprint, token)
    return [(fp[:12], token) for fp, token in sorted(seen.items())]


def build_request_specs(options: LoadgenOptions) -> List[Dict[str, Any]]:
    """The distinct request payloads of the mix (ids filled in later)."""
    bench = options.bench_options()
    specs: List[Dict[str, Any]] = []
    for corpus in options.corpora:
        for key in corpus_loop_keys(corpus):
            for scheduler in options.schedulers:
                specs.append({
                    "op": "schedule",
                    "loop": key,
                    "scheduler": scheduler,
                    "options": bench.scheduler_options(scheduler),
                    "budget": options.budget,
                    "seed": bench.seed,
                    "simulate": options.simulate,
                    "verify": options.verify,
                    "analyze": True,
                })
    if options.fuzz_corpus_dir:
        for name, token in corpus_spec_tokens(options.fuzz_corpus_dir):
            for scheduler in options.schedulers:
                specs.append({
                    "op": "schedule",
                    "spec": token,
                    "scheduler": scheduler,
                    "options": bench.scheduler_options(scheduler),
                    "budget": options.budget,
                    "seed": bench.seed,
                    "simulate": options.simulate,
                    # The fuzz-derived lanes run the oracle layers, so a
                    # verify regression shows up as a non-empty
                    # verify_errors list in BENCH_service.json.
                    "oracle": True,
                    "analyze": True,
                })
    return specs


@dataclass
class RequestRecord:
    """One request/response pair, client-side view."""

    spec_index: int
    phase: str                      # "warm" | "replay"
    ok: bool = False
    cached: Any = False
    deduped: bool = False
    latency_ms: float = 0.0
    error_code: Optional[str] = None
    result: Optional[Dict[str, Any]] = None


@dataclass
class LoadReport:
    """Everything one session measured."""

    options: LoadgenOptions
    connect: str
    specs: List[Dict[str, Any]] = field(default_factory=list)
    records: List[RequestRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    server_stats: Optional[Dict[str, Any]] = None
    protocol_errors: int = 0

    # -- derived -------------------------------------------------------
    @property
    def responses(self) -> int:
        return len(self.records)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.responses if self.responses else None

    def verify_error_count(self) -> int:
        return sum(
            len((r.result or {}).get("verify_errors") or []) for r in self.records
        )

    def cell_error_count(self) -> int:
        return sum(1 for r in self.records if (r.result or {}).get("error"))

    def funcsim_failures(self) -> int:
        return sum(
            1 for r in self.records if (r.result or {}).get("funcsim_ok") is False
        )

    def latency(self, phase: Optional[str] = None) -> LatencyStats:
        stats = LatencyStats()
        for record in self.records:
            if phase is None or record.phase == phase:
                stats.record(record.latency_ms)
        return stats

    def ok(self) -> bool:
        """The serve-smoke gate: no protocol, cell, verify or sim errors."""
        return (
            self.protocol_errors == 0
            and self.responses == len([r for r in self.records])
            and all(r.ok for r in self.records)
            and self.cell_error_count() == 0
            and self.verify_error_count() == 0
            and self.funcsim_failures() == 0
        )


# ----------------------------------------------------------------------
# The client
# ----------------------------------------------------------------------
async def _open(connect: str):
    """``unix:<path>`` or ``tcp:<host>:<port>`` to (reader, writer)."""
    kind, _, rest = connect.partition(":")
    if kind == "unix":
        return await asyncio.open_unix_connection(rest)
    if kind == "tcp":
        host, _, port = rest.rpartition(":")
        return await asyncio.open_connection(host, int(port))
    raise ValueError(f"connect must be unix:<path> or tcp:<host>:<port>, got {connect!r}")


async def _client_worker(
    connect: str,
    jobs: "asyncio.Queue[Optional[Tuple[int, str, Dict[str, Any]]]]",
    report: LoadReport,
    retry_limit: int = 50,
) -> None:
    """One connection pulling requests off the shared queue.

    An ``overloaded`` response is honoured: back off ``retry_after`` and
    retry the same request (counted once, at final latency) — the load
    generator models a well-behaved client.
    """
    reader, writer = await _open(connect)
    try:
        while True:
            job = await jobs.get()
            if job is None:
                return
            spec_index, phase, payload = job
            started = time.perf_counter()
            record = RequestRecord(spec_index=spec_index, phase=phase)
            for _ in range(retry_limit):
                writer.write(encode(payload))
                await writer.drain()
                raw = await reader.readline()
                if not raw:
                    report.protocol_errors += 1
                    report.records.append(record)
                    return
                try:
                    response = parse_line(raw.decode())
                except Exception:
                    report.protocol_errors += 1
                    break
                if response.get("id") != payload["id"]:
                    report.protocol_errors += 1
                    break
                error = response.get("error") or {}
                if not response.get("ok") and error.get("code") == "overloaded":
                    await asyncio.sleep(float(error.get("retry_after") or 0.05))
                    continue
                record.ok = bool(response.get("ok"))
                record.cached = response.get("cached", False)
                record.deduped = bool(response.get("deduped"))
                record.result = response.get("result")
                if not record.ok:
                    record.error_code = error.get("code")
                    report.protocol_errors += 1
                break
            record.latency_ms = (time.perf_counter() - started) * 1e3
            report.records.append(record)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def fetch_server_stats(connect: str) -> Optional[Dict[str, Any]]:
    try:
        reader, writer = await _open(connect)
    except OSError:
        return None
    try:
        writer.write(encode({"id": "loadgen-stats", "op": "stats"}))
        await writer.drain()
        raw = await reader.readline()
        response = parse_line(raw.decode())
        return response.get("stats")
    except Exception:
        return None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def run_loadgen(connect: str, options: Optional[LoadgenOptions] = None,
                      log=lambda line: None) -> LoadReport:
    """Drive one warm + replay session against a running daemon."""
    options = options or LoadgenOptions()
    specs = build_request_specs(options)
    report = LoadReport(options=options, connect=connect, specs=specs)
    rng = random.Random(options.seed)

    warm = list(range(len(specs)))
    rng.shuffle(warm)
    replay_budget = max(0, options.requests - len(warm))
    replay: List[int] = []
    while len(replay) < replay_budget:
        wave = list(range(len(specs)))
        rng.shuffle(wave)
        replay.extend(wave)
    replay = replay[:replay_budget]

    started = time.perf_counter()
    for phase, indices in (("warm", warm), ("replay", replay)):
        jobs: "asyncio.Queue[Optional[Tuple[int, str, Dict[str, Any]]]]" = asyncio.Queue()
        for serial, index in enumerate(indices):
            payload = dict(specs[index])
            payload["id"] = f"{phase}-{serial}-{index}"
            jobs.put_nowait((index, phase, payload))
        n_workers = min(options.concurrency, max(1, jobs.qsize()))
        for _ in range(n_workers):
            jobs.put_nowait(None)
        log(f"loadgen: {phase} phase, {len(indices)} requests, "
            f"concurrency {n_workers}")
        workers = [
            asyncio.create_task(_client_worker(connect, jobs, report))
            for _ in range(n_workers)
        ]
        await asyncio.gather(*workers)
    report.wall_seconds = time.perf_counter() - started
    report.server_stats = await fetch_server_stats(connect)
    return report


# ----------------------------------------------------------------------
# BENCH_service.json emission
# ----------------------------------------------------------------------
def build_service_report(report: LoadReport) -> Dict[str, Any]:
    """The BENCH payload: distinct cells + the service block."""
    options = report.options
    by_spec: Dict[int, List[RequestRecord]] = {}
    for record in report.records:
        by_spec.setdefault(record.spec_index, []).append(record)

    cells: List[Dict[str, Any]] = []
    results: List[CellResult] = []
    for index, spec in enumerate(report.specs):
        records = by_spec.get(index, [])
        solved = next((r.result for r in records if r.result), None)
        if solved is None:
            continue
        cell = dict(solved)
        # Per-cell service accounting rides along; the diff layer ignores
        # these (latency is warn-only at the totals level).
        stats = LatencyStats()
        for record in records:
            stats.record(record.latency_ms)
        cell["service_requests"] = len(records)
        cell["service_hits"] = sum(1 for r in records if r.cached)
        cell["service_latency_ms"] = stats.to_dict()
        cells.append(cell)
        results.append(CellResult.from_dict(solved))

    totals = summarise(results)
    overall = report.latency()
    totals["service"] = {
        "requests": report.responses,
        "concurrency": options.concurrency,
        "distinct_cells": len(cells),
        "protocol_errors": report.protocol_errors,
        "cell_errors": report.cell_error_count(),
        "verify_errors": report.verify_error_count(),
        "funcsim_failures": report.funcsim_failures(),
        "hit_rate": report.hit_rate,
        "hits": report.hits,
        "throughput_rps": (
            report.responses / report.wall_seconds if report.wall_seconds else None
        ),
        "latency_ms": overall.to_dict(),
        "latency_ms_warm": report.latency("warm").to_dict(),
        "latency_ms_replay": report.latency("replay").to_dict(),
        "server": report.server_stats,
    }
    return {
        "name": "service",
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "code_version": code_version(),
        "provenance": provenance(),
        "machine": "r8000",
        "connect": report.connect,
        "concurrency": options.concurrency,
        "requests": report.responses,
        "seed": options.seed,
        "wall_seconds": report.wall_seconds,
        "totals": totals,
        "cells": cells,
    }


def write_service_report(report: LoadReport,
                         output_dir: Optional[str] = None) -> pathlib.Path:
    payload = build_service_report(report)
    append_history(payload, history_dir=report.options.history_dir)
    return write_bench_json(payload, output_dir or report.options.output_dir)


def format_summary(report: LoadReport) -> str:
    overall = report.latency()
    replay = report.latency("replay")
    lines = [
        f"{report.responses} responses over {report.wall_seconds:.1f}s "
        f"at concurrency {report.options.concurrency} "
        f"({report.responses / report.wall_seconds:.1f} req/s)"
        if report.wall_seconds else f"{report.responses} responses",
        f"latency p50 {overall.percentile(50):.1f}ms  "
        f"p99 {overall.percentile(99):.1f}ms  max {overall.max_ms:.1f}ms"
        if overall.count else "no latency samples",
    ]
    if replay.count:
        lines.append(
            f"replay-phase latency p50 {replay.percentile(50):.1f}ms  "
            f"p99 {replay.percentile(99):.1f}ms"
        )
    hit_rate = report.hit_rate
    lines.append(
        f"cache hit rate {hit_rate:.1%} ({report.hits}/{report.responses}); "
        f"protocol errors {report.protocol_errors}, "
        f"cell errors {report.cell_error_count()}, "
        f"verify errors {report.verify_error_count()}, "
        f"funcsim failures {report.funcsim_failures()}"
        if hit_rate is not None else "no responses"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Selftest: boot an in-process daemon, load it, check the answers
# ----------------------------------------------------------------------
async def _selftest_async(options: LoadgenOptions, config, log) -> LoadReport:
    import os
    import tempfile
    from dataclasses import replace

    from .daemon import ServeDaemon

    with tempfile.TemporaryDirectory(prefix="repro-serve-selftest-") as tmp:
        sock = os.path.join(tmp, "serve.sock")
        # A fresh cache dir: the warm phase really solves (no carry-over
        # hits) and the equivalence check is against real daemon output.
        config = replace(config, cache_dir=os.path.join(tmp, "cache"))
        daemon = ServeDaemon(config, unix_path=sock, log=log)
        ready = asyncio.Event()
        task = asyncio.create_task(daemon.run(ready=lambda _d: ready.set()))
        await ready.wait()
        try:
            report = await run_loadgen(f"unix:{sock}", options, log=log)
        finally:
            daemon.request_stop("selftest complete")
            await task
        return report


def run_selftest(options: Optional[LoadgenOptions] = None, jobs: int = 2,
                 equivalence: bool = False, config=None,
                 log=lambda line: None):
    """Boot a daemon on a temporary unix socket, run the load harness
    against it, write ``BENCH_service.json`` and (optionally) assert the
    daemon answers match the direct exec engine.

    Returns ``(report, bench_path, problems)`` — ``problems`` is the
    combined gate: protocol/cell/verify errors plus any equivalence
    mismatches, empty on a clean pass.
    """
    from .service import ServeConfig

    options = options or LoadgenOptions()
    if config is None:
        config = ServeConfig(jobs=jobs)
    report = asyncio.run(_selftest_async(options, config, log))
    bench_path = write_service_report(report)
    problems: List[str] = []
    if report.protocol_errors:
        problems.append(f"{report.protocol_errors} protocol errors")
    bad = [r for r in report.records if not r.ok]
    if bad:
        problems.append(f"{len(bad)} non-ok responses "
                        f"(codes: {sorted({r.error_code for r in bad})})")
    if report.cell_error_count():
        problems.append(f"{report.cell_error_count()} cell errors")
    if report.verify_error_count():
        problems.append(f"{report.verify_error_count()} verify errors")
    if report.funcsim_failures():
        problems.append(f"{report.funcsim_failures()} funcsim failures")
    if equivalence:
        log("loadgen: checking daemon results against the direct engine ...")
        problems.extend(check_equivalence(report, jobs=max(1, jobs)))
    return report, bench_path, problems


# ----------------------------------------------------------------------
# Equivalence against the direct exec engine
# ----------------------------------------------------------------------
#: Result fields that must be identical between a daemon round-trip and a
#: direct engine run of the same cell (the quality contract; timings and
#: cache bookkeeping excluded by construction).
EQUIVALENCE_FIELDS = (
    "success", "ii", "min_ii", "n_stages", "registers_used",
    "overhead_cycles", "sim_cycles", "spill_rounds", "timeout", "fallback",
    "optimal", "producer", "order_name", "verify_errors", "funcsim_ok",
    "refined_bound",
)


def check_equivalence(report: LoadReport, jobs: int = 2) -> List[str]:
    """Re-run every distinct cell through the direct engine; return
    human-readable mismatches (empty = daemon is result-identical)."""
    from ..exec.runner import ExecEngine
    from .protocol import parse_schedule_request
    from .service import ServeConfig

    config = ServeConfig()
    problems: List[str] = []
    cells = []
    daemon_results: List[Dict[str, Any]] = []
    by_spec: Dict[int, Optional[Dict[str, Any]]] = {}
    for record in report.records:
        if record.result is not None:
            by_spec.setdefault(record.spec_index, record.result)
    for index, spec in enumerate(report.specs):
        solved = by_spec.get(index)
        if solved is None:
            continue
        payload = dict(spec)
        payload["id"] = f"eq-{index}"
        request = parse_schedule_request(payload)
        budget = request.budget if request.budget is not None else config.default_budget
        cells.append(request.to_cell(min(budget, config.max_budget)))
        daemon_results.append(solved)

    engine = ExecEngine(jobs=jobs, cache=None)
    direct = engine.run(cells)
    for cell, daemon_payload in zip(cells, daemon_results):
        direct_payload = direct[cell].to_dict()
        for name in EQUIVALENCE_FIELDS:
            if direct_payload.get(name) != daemon_payload.get(name):
                problems.append(
                    f"{cell.loop} × {cell.scheduler}: {name} differs "
                    f"(direct {direct_payload.get(name)!r} vs "
                    f"daemon {daemon_payload.get(name)!r})"
                )
    return problems
