"""The service cache: an in-process LRU tier over the sharded disk store.

The exec layer's :class:`~repro.exec.cache.ScheduleCache` is already
content-addressed (``ab/cd/key.json``), so promoting it into a serving
cache needs exactly two additions, both here:

* a **size-bounded in-process LRU** in front of it, so a hot working set
  is served without touching the filesystem, with eviction and
  hit/miss counters — and *pinning*: a key being solved right now
  (in-flight) is never evicted, which is what makes the dispatcher's
  single-flight bookkeeping sound even under memory pressure;
* a **tiered read path** (memory, then disk with promotion) and a
  write-through ``put``.

Single-flight deduplication itself lives in the dispatcher
(:mod:`repro.serve.service`) because it is an asyncio concern; this
module stays synchronous and event-loop-free so it can be unit- and
property-tested directly.
"""

from __future__ import annotations

import json
from collections import Counter, OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exec.cache import ScheduleCache


def payload_nbytes(payload: Mapping[str, Any]) -> int:
    """Deterministic size accounting: bytes of the canonical JSON."""
    return len(json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str))


class LRUCache:
    """A size-bounded LRU of cell-result payloads with pinned keys.

    Bounded both by entry count and by (canonical-JSON) bytes; inserting
    over budget evicts from the cold end, **skipping pinned keys** — a
    pinned entry represents an in-flight solve whose waiters hold the
    payload's identity, so evicting it would let a concurrent identical
    request miss and solve the same cell twice.  Pins are reference
    counted (several waves of waiters may pin the same key).
    """

    def __init__(self, max_entries: int = 1024, max_bytes: int = 64 << 20):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, Tuple[Dict[str, Any], int]]" = OrderedDict()
        self._pins: Counter = Counter()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pinned_skips = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction until a matching :meth:`unpin`."""
        self._pins[key] += 1

    def unpin(self, key: str) -> None:
        self._pins[key] -= 1
        if self._pins[key] <= 0:
            del self._pins[key]
            self._evict()  # a released pin may leave us over budget

    def pinned(self, key: str) -> bool:
        return self._pins.get(key, 0) > 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        payload = dict(payload)
        nbytes = payload_nbytes(payload)
        if key in self._entries:
            self.bytes -= self._entries[key][1]
        self._entries[key] = (payload, nbytes)
        self._entries.move_to_end(key)
        self.bytes += nbytes
        self._evict()

    def _evict(self) -> None:
        """Drop cold unpinned entries until both budgets hold.

        When everything left is pinned the cache is allowed to sit over
        budget — correctness (never evict in-flight) beats the bound.
        """
        while len(self._entries) > self.max_entries or self.bytes > self.max_bytes:
            victim = None
            for key in self._entries:  # coldest first
                if self.pinned(key):
                    self.pinned_skips += 1
                    continue
                victim = key
                break
            if victim is None:
                return
            _, nbytes = self._entries.pop(victim)
            self.bytes -= nbytes
            self.evictions += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pinned": len(self._pins),
            "pinned_skips": self.pinned_skips,
        }


class TieredCache:
    """Memory LRU in front of the content-addressed disk store.

    ``get`` returns ``(tier, payload)`` with ``tier`` one of ``"memory"``
    or ``"disk"`` (disk hits are promoted into the LRU), or ``None`` on a
    full miss.  ``put`` writes through to both tiers.  ``disk=None`` runs
    the service memory-only (``--no-cache``).
    """

    def __init__(self, lru: Optional[LRUCache] = None,
                 disk: Optional[ScheduleCache] = None):
        self.lru = lru if lru is not None else LRUCache()
        self.disk = disk

    def get(self, key: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        payload = self.lru.get(key)
        if payload is not None:
            return ("memory", payload)
        if self.disk is None:
            return None
        payload = self.disk.get(key)
        if payload is None:
            return None
        self.lru.put(key, payload)
        return ("disk", payload)

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        self.lru.put(key, payload)
        if self.disk is not None:
            self.disk.put(key, dict(payload))

    def pin(self, key: str) -> None:
        self.lru.pin(key)

    def unpin(self, key: str) -> None:
        self.lru.unpin(key)

    def stats(self) -> Dict[str, Any]:
        return {
            "memory": self.lru.stats(),
            "disk": None if self.disk is None else {
                **self.disk.stats.as_dict(), **self.disk.disk_stats(),
            },
        }
