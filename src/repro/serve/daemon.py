"""The asyncio front end: TCP + Unix-socket NDJSON servers, graceful drain.

``python -m repro serve`` boots this daemon around a
:class:`~repro.serve.service.SchedulerService`.  Each connection reads
one JSON request per line and writes one JSON response per line; requests
on one connection are handled concurrently (a connection can pipeline
many schedule requests and receive the results as they finish, matched
by ``id``).  ``SIGTERM``/``SIGINT`` trigger a graceful drain: listeners
close, queued and in-flight requests finish (bounded by the drain
timeout), new requests are refused with ``shutting-down``, and the
process exits 0.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Any, Awaitable, Callable, Dict, List, Optional

from ..obs.service import render_prometheus
from .protocol import (
    ProtocolError,
    encode,
    error_response,
    parse_line,
    parse_schedule_request,
)
from .service import SchedulerService, ServeConfig


async def handle_payload(service: SchedulerService, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Route one parsed request payload to its operation."""
    op = payload.get("op", "schedule")
    request_id = payload.get("id") if isinstance(payload.get("id"), str) else None
    if op == "ping":
        return {"id": request_id, "ok": True, "pong": True,
                "draining": service.draining}
    if op == "stats":
        return {"id": request_id, "ok": True, "stats": service.stats()}
    if op == "metrics":
        # The wire-level twin of the HTTP metrics listener: the same
        # Prometheus text exposition, for clients already on the socket.
        return {"id": request_id, "ok": True,
                "metrics": render_prometheus(service.metrics)}
    if op == "schedule":
        try:
            request = parse_schedule_request(payload)
        except ProtocolError as exc:
            service.metrics.rejected += 1
            return error_response(request_id, exc.code, str(exc), exc.retry_after)
        return await service.submit(request)
    return error_response(request_id, "bad-request", f"unknown op {op!r}")


class ServeDaemon:
    """Listeners + connection handling around one :class:`SchedulerService`."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 metrics_port: Optional[int] = None,
                 log: Callable[[str], None] = lambda line: print(line, file=sys.stderr, flush=True)):
        if port is None and unix_path is None:
            raise ValueError("daemon needs a TCP port and/or a unix socket path")
        self.service = SchedulerService(config)
        self.host = host or "127.0.0.1"
        self.port = port
        self.unix_path = unix_path
        self.metrics_port = metrics_port
        self.log = log
        self._servers: List[asyncio.AbstractServer] = []
        self._stop = asyncio.Event()
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        line_tasks: "set[asyncio.Task]" = set()

        async def respond(payload: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode(payload))
                await writer.drain()

        async def handle_line(raw: bytes) -> None:
            try:
                payload = parse_line(raw.decode("utf-8", errors="replace"))
            except ProtocolError as exc:
                self.service.metrics.rejected += 1
                await respond(error_response(None, exc.code, str(exc)))
                return
            try:
                response = await handle_payload(self.service, payload)
            except Exception as exc:  # never tear the connection down
                response = error_response(
                    payload.get("id") if isinstance(payload.get("id"), str) else None,
                    "internal", f"unhandled server error: {exc!r}",
                )
            await respond(response)

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                if not raw.strip():
                    continue
                task = asyncio.create_task(handle_line(raw))
                line_tasks.add(task)
                task.add_done_callback(line_tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            # Let already-admitted requests of this connection finish and
            # flush before closing (graceful even on client half-close).
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_metrics(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.1 responder for ``GET /metrics`` scrapes.

        Deliberately minimal (stdlib asyncio, close-after-response): a
        Prometheus scrape is one GET, and keeping this off the NDJSON
        port means a scraper never competes with schedule traffic.
        """
        try:
            request_line = await reader.readline()
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.split()
            path = parts[1] if len(parts) >= 2 else b"/"
            if path in (b"/metrics", b"/"):
                status = b"200 OK"
                body = render_prometheus(self.service.metrics).encode("utf-8")
                ctype = b"text/plain; version=0.0.4; charset=utf-8"
            else:
                status = b"404 Not Found"
                body = b"try /metrics\n"
                ctype = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + ctype + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _track_connection(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> Awaitable[None]:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        return task

    # -- lifecycle -----------------------------------------------------
    def request_stop(self, signame: str = "request") -> None:
        if not self._stop.is_set():
            self.log(f"serve: {signame} received, draining ...")
            self._stop.set()

    async def run(self, ready: Optional[Callable[["ServeDaemon"], None]] = None) -> int:
        await self.service.start()
        if self.port is not None:
            server = await asyncio.start_server(
                self._track_connection, host=self.host, port=self.port
            )
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]  # resolve port 0
            self.log(f"serve: listening on tcp {self.host}:{self.port}")
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._track_connection, path=self.unix_path
            )
            self._servers.append(server)
            self.log(f"serve: listening on unix {self.unix_path}")
        if self.metrics_port is not None:
            server = await asyncio.start_server(
                self._handle_metrics, host=self.host, port=self.metrics_port
            )
            self._servers.append(server)
            self.metrics_port = server.sockets[0].getsockname()[1]
            self.log(
                f"serve: metrics on http://{self.host}:{self.metrics_port}/metrics"
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_stop, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):  # non-unix / nested loops
                pass
        if ready is not None:
            ready(self)
        self.log("serve: ready")
        await self._stop.wait()

        # Graceful drain: stop accepting, finish what was admitted.
        for server in self._servers:
            server.close()
        drained = await self.service.drain()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        await self.service.stop(drain=False)
        stats = self.service.metrics
        self.log(
            f"serve: drained={drained} responses={stats.responses} "
            f"errors={stats.errors} shed={stats.shed} "
            f"hit_rate={stats.cache_hit_rate}"
        )
        return 0 if drained else 1


def run_daemon(config: Optional[ServeConfig] = None,
               host: Optional[str] = None, port: Optional[int] = None,
               unix_path: Optional[str] = None,
               metrics_port: Optional[int] = None) -> int:
    """Blocking entry point for the CLI."""
    daemon = ServeDaemon(config, host=host, port=port, unix_path=unix_path,
                         metrics_port=metrics_port)
    try:
        return asyncio.run(daemon.run())
    except KeyboardInterrupt:
        return 0
