"""The scheduling service core: bounded queue, batching, single-flight.

:class:`SchedulerService` is the daemon with the sockets peeled off — the
front end (:mod:`repro.serve.daemon`), the load generator's in-process
mode and the tests all drive this one object.  A request travels:

1. **admission** — ``submit`` rejects while draining (``shutting-down``)
   and sheds load when the bounded queue is full (``overloaded`` with a
   ``retry_after`` hint: the 429 of the NDJSON world);
2. **batching** — the dispatcher coalesces whatever arrives within a
   short window into one batch, computes each request's content-addressed
   cell key once, and groups identical cells;
3. **cache / single-flight** — memory hit, disk hit (promoted), attach to
   an identical in-flight solve, or start one: concurrent identical
   requests solve exactly once, and the LRU pins in-flight keys so they
   cannot be evicted from under their waiters;
4. **execution** — cells fan out to the persistent worker pool
   (:mod:`repro.serve.workers`), per-request budgets enforced in-worker
   with the pool watchdog as backstop; results stream back to every
   waiter as they finish, write-through cached on the way.

Budgets follow the anytime-solver contract from the combinatorial
scheduling literature: every request carries (or inherits) a wall-clock
budget, and blowing it degrades to the heuristic fallback tier inside the
worker rather than an error — quality tiers, not failures.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exec.cache import DEFAULT_CACHE_DIR, ScheduleCache
from ..exec.cells import Cell
from ..exec.runner import ExecEngine
from ..obs.recorder import get_recorder
from ..obs.service import ServiceMetrics, SlowRequestLog
from .cachetier import LRUCache, TieredCache
from .protocol import ProtocolError, ScheduleRequest, error_response, ok_response
from .workers import DEFAULT_GRACE, WorkerPool

#: Drop the engine's loop-fingerprint memo past this many entries (fuzz
#: tokens are one-shot keys; corpus keys simply re-fingerprint).
_FP_MEMO_LIMIT = 4096


@dataclass
class ServeConfig:
    """Everything the service (and daemon around it) is configured by."""

    jobs: int = 2                      # 0 = thread workers (in-process)
    queue_limit: int = 64              # bounded admission queue
    batch_window: float = 0.005        # seconds the dispatcher coalesces for
    batch_max: int = 32                # max requests per batch
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR  # None = memory-only
    lru_entries: int = 1024
    lru_bytes: int = 64 << 20
    default_budget: float = 60.0       # per-request deadline when unset
    max_budget: float = 300.0          # server-side clamp on request budgets
    watchdog_grace: float = DEFAULT_GRACE
    drain_timeout: float = 60.0        # max seconds to wait for in-flight work
    # Telemetry: NDJSON slow-request log (None = off), its latency
    # threshold, and the period of the queue-depth/hit-rate gauge sampler
    # (0 disables the sampler task).
    slow_log_path: Optional[str] = None
    slow_ms: float = 1000.0
    gauge_interval: float = 5.0

    def build_cache(self) -> TieredCache:
        disk = ScheduleCache(self.cache_dir) if self.cache_dir is not None else None
        return TieredCache(
            lru=LRUCache(max_entries=self.lru_entries, max_bytes=self.lru_bytes),
            disk=disk,
        )


@dataclass
class _Pending:
    """One admitted request waiting for its result.

    The three phase timestamps bracket the request's life for span
    emission: queued at admission (``enqueued_at``), keyed when the
    dispatcher pulled its batch (``keyed_at``), resolved when a result —
    cache hit, solve, or error — landed on the future (``resolved_at``).
    """

    request: ScheduleRequest
    cell: Cell
    future: "asyncio.Future[Dict[str, Any]]"
    enqueued_at: float = field(default_factory=time.perf_counter)
    keyed_at: Optional[float] = None
    resolved_at: Optional[float] = None

    def resolve(self, response: Dict[str, Any]) -> None:
        if not self.future.done():
            self.resolved_at = time.perf_counter()
            self.future.set_result(response)


class _Flight:
    """One in-flight solve and the pendings waiting on it."""

    def __init__(self, key: str, cell: Cell):
        self.key = key
        self.cell = cell
        self.waiters: List[_Pending] = []


class SchedulerService:
    """The queue → batcher → cache/single-flight → worker-pool pipeline."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.metrics = ServiceMetrics()
        self.cache = self.config.build_cache()
        self.pool = WorkerPool(self.config.jobs, grace=self.config.watchdog_grace)
        # key_of needs loop fingerprints; reuse the engine's memoised
        # hashing (the engine itself never runs cells here).
        self._keyer = ExecEngine(jobs=1, cache=None)
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=self.config.queue_limit
        )
        self._inflight: Dict[str, _Flight] = {}
        self._tasks: "set[asyncio.Task]" = set()
        self._dispatcher: Optional[asyncio.Task] = None
        self._gauge_task: Optional[asyncio.Task] = None
        self._draining = False
        self._started = False
        self.slow_log: Optional[SlowRequestLog] = (
            SlowRequestLog(self.config.slow_log_path, self.config.slow_ms)
            if self.config.slow_log_path
            else None
        )

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        await self.pool.start()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.config.gauge_interval > 0:
            self._gauge_task = asyncio.create_task(self._gauge_loop())

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, finish in-flight work; True if fully drained."""
        self._draining = True
        deadline = time.perf_counter() + (
            timeout if timeout is not None else self.config.drain_timeout
        )

        def busy() -> bool:
            return bool(self._queue.qsize() or self._inflight or self._tasks)

        while busy() and time.perf_counter() < deadline:
            await asyncio.sleep(0.02)
        return not busy()

    async def stop(self, drain: bool = True) -> None:
        if drain:
            await self.drain()
        self._draining = True
        for attr in ("_dispatcher", "_gauge_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        for task in list(self._tasks):
            task.cancel()
        self.pool.shutdown()

    # -- admission -----------------------------------------------------
    def _clamped_budget(self, request: ScheduleRequest) -> float:
        budget = request.budget if request.budget is not None else self.config.default_budget
        return min(budget, self.config.max_budget)

    async def submit(self, request: ScheduleRequest) -> Dict[str, Any]:
        """One schedule request through the whole pipeline; returns the
        wire-shaped response payload (never raises for per-request
        problems — they become error responses)."""
        self.metrics.requests += 1
        started = time.perf_counter()
        if self._draining:
            self.metrics.rejected += 1
            return error_response(
                request.id, "shutting-down", "service is draining; retry elsewhere"
            )
        try:
            cell = request.to_cell(self._clamped_budget(request))
        except (ProtocolError, ValueError) as exc:
            self.metrics.rejected += 1
            return error_response(request.id, "bad-request", str(exc))
        pending = _Pending(
            request=request, cell=cell,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.shed += 1
            # A full queue of budget-bounded work clears at pool rate; hint
            # one average in-flight budget's worth of backoff, floored.
            retry = max(0.05, min(1.0, self._queue.qsize() * 0.01))
            return error_response(
                request.id, "overloaded",
                f"queue full ({self.config.queue_limit} deep); retry later",
                retry_after=retry,
            )
        self.metrics.observe_queue(self._queue.qsize())
        response = await pending.future
        finished = time.perf_counter()
        latency_ms = (finished - started) * 1e3
        response["latency_ms"] = round(latency_ms, 3)
        result = response.get("result") or {}
        self.metrics.record_response(
            request.scheduler,
            latency_ms,
            schedule_seconds=float(result.get("schedule_seconds") or 0.0),
            error=bool(not response.get("ok") or result.get("error")),
        )
        self._emit_request_telemetry(pending, response, started, finished, latency_ms)
        return response

    def _emit_request_telemetry(
        self,
        pending: _Pending,
        response: Dict[str, Any],
        started: float,
        finished: float,
        latency_ms: float,
    ) -> None:
        """Per-request spans (admission→coalesce→solve→respond) + slow log."""
        keyed = pending.keyed_at if pending.keyed_at is not None else started
        resolved = pending.resolved_at if pending.resolved_at is not None else finished
        phases = (
            ("admission", started, pending.enqueued_at),
            ("coalesce", pending.enqueued_at, keyed),
            ("solve", keyed, resolved),
            ("respond", resolved, finished),
        )
        recorder = get_recorder()
        if recorder.enabled:
            # Back-to-back B/E pairs emitted synchronously (no awaits in
            # between), so strict nesting survives a multi-source trace
            # merge; the measured phase durations ride in args since the
            # emit-time timestamps are all "now".
            for phase, begin, end in phases:
                with recorder.span(
                    f"serve.{phase}",
                    request_id=pending.request.id,
                    scheduler=pending.request.scheduler,
                    ms=round(max(0.0, end - begin) * 1e3, 3),
                ):
                    pass
        if self.slow_log is not None:
            self.slow_log.observe({
                "request_id": pending.request.id,
                "loop": pending.cell.loop,
                "scheduler": pending.request.scheduler,
                "latency_ms": round(latency_ms, 3),
                "cached": response.get("cached", False),
                "deduped": bool(response.get("deduped")),
                "ok": bool(response.get("ok")),
                "phases_ms": {
                    name: round(max(0.0, end - begin) * 1e3, 3)
                    for name, begin, end in phases
                },
            })

    # -- dispatch ------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            window_ends = time.perf_counter() + self.config.batch_window
            while len(batch) < self.config.batch_max:
                remaining = window_ends - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._dispatch_batch(batch)

    async def _gauge_loop(self) -> None:
        """Sample queue depth and hit rate on a timer.

        Keeps the saturation gauges fresh between requests (an idle
        daemon's metrics endpoint still reports current depth) and, when
        a trace recorder is live, drops them into the timeline as
        instant events so the merged Chrome trace shows load over time.
        """
        while True:
            await asyncio.sleep(self.config.gauge_interval)
            depth = self._queue.qsize()
            self.metrics.observe_queue(depth)
            recorder = get_recorder()
            if recorder.enabled:
                recorder.event("serve.queue_depth", value=depth)
                hit_rate = self.metrics.cache_hit_rate
                recorder.event(
                    "serve.cache_hit_rate",
                    value=None if hit_rate is None else round(hit_rate, 4),
                )
                recorder.event("serve.inflight", value=len(self._inflight))

    def _dispatch_batch(self, batch: List[_Pending]) -> None:
        """Key every request once, then resolve each against the cache,
        an in-flight solve, or a fresh worker-pool execution."""
        if len(self._keyer._loop_fps) > _FP_MEMO_LIMIT:
            self._keyer.forget_loop_fingerprints()
        new_flights: List[_Flight] = []
        for pending in batch:
            pending.keyed_at = time.perf_counter()
            try:
                key = self._keyer.key_of(pending.cell)
            except Exception as exc:
                self.metrics.rejected += 1
                pending.resolve(error_response(
                    pending.request.id, "bad-request",
                    f"loop key does not resolve: {exc}",
                ))
                continue
            flight = self._inflight.get(key)
            if flight is not None:
                self.metrics.inflight_dedup += 1
                flight.waiters.append(pending)
                continue
            hit = self.cache.get(key)
            if hit is not None:
                tier, payload = hit
                if tier == "memory":
                    self.metrics.memory_hits += 1
                else:
                    self.metrics.disk_hits += 1
                payload = dict(payload)
                payload["cache_hit"] = True
                payload["cache_key"] = key
                pending.resolve(
                    ok_response(pending.request.id, payload, cached=tier)
                )
                continue
            self.metrics.misses += 1
            flight = _Flight(key, pending.cell)
            flight.waiters.append(pending)
            self._inflight[key] = flight
            self.cache.pin(key)  # never evicted while being solved
            new_flights.append(flight)
        for flight in new_flights:
            task = asyncio.create_task(self._solve(flight))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _solve(self, flight: _Flight) -> None:
        try:
            hard = None
            if flight.cell.timeout is not None:
                hard = flight.cell.timeout + self.config.watchdog_grace
            payload = await self.pool.run(flight.cell.to_dict(), hard)
            payload["cache_key"] = flight.key
            if not payload.get("error"):
                store = dict(payload)
                store["cache_hit"] = False
                self.cache.put(flight.key, store)
            self.metrics.worker_respawns = self.pool.respawns
            for i, pending in enumerate(flight.waiters):
                pending.resolve(ok_response(
                    pending.request.id, payload, cached=False, deduped=i > 0,
                ))
        except Exception as exc:  # defensive: a solve crash must not wedge waiters
            for pending in flight.waiters:
                pending.resolve(error_response(
                    pending.request.id, "internal", f"solve failed: {exc!r}"
                ))
        finally:
            self._inflight.pop(flight.key, None)
            self.cache.unpin(flight.key)

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "service": self.metrics.to_dict(),
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "queue": {
                "depth": self._queue.qsize(),
                "limit": self.config.queue_limit,
            },
            "inflight": len(self._inflight),
            "draining": self._draining,
        }
