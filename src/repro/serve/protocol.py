"""The wire format of the scheduling service: newline-delimited JSON.

One request per line, one response per line, matched by a client-chosen
``id`` (responses may arrive out of order — the dispatcher streams each
result back as its cell finishes).  The payload deliberately reuses the
two loop codecs the repo already ships: registry keys from
:mod:`repro.exec.cells` (``livermore:lk01_hydro``) and the serializable
:class:`~repro.workloads.mutate.LoopSpec` token codec (``spec``), which
keeps the format backend-neutral — a future SMT/CP portfolio serves the
same requests.

Request operations::

    {"id": "r1", "op": "schedule", "loop": "livermore:lk01_hydro",
     "scheduler": "sgi", "options": {}, "budget": 20.0}
    {"id": "r2", "op": "schedule", "spec": "<LoopSpec token>",
     "scheduler": "most", "options": {"time_limit": 5.0}}
    {"id": "p",  "op": "ping"}
    {"id": "s",  "op": "stats"}

Responses::

    {"id": "r1", "ok": true, "result": {<CellResult>}, "cached": "memory",
     "deduped": false, "latency_ms": 12.3}
    {"id": "r1", "ok": false,
     "error": {"code": "overloaded", "message": "...", "retry_after": 0.05}}

Error codes: ``bad-request`` (malformed line or unknown fields),
``overloaded`` (bounded queue full; honour ``retry_after``),
``shutting-down`` (graceful drain in progress), ``internal``.  The
``budget`` is the per-request wall-clock deadline in seconds; the server
clamps it to its configured maximum and enforces it off the main thread
(see :mod:`repro.exec.runner`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exec.cells import SCHEDULERS, Cell

PROTOCOL_VERSION = 1

#: Machine-readable error codes a response can carry.
ERROR_CODES = ("bad-request", "overloaded", "shutting-down", "internal")

_REQUEST_FIELDS = frozenset(
    {
        "id", "op", "loop", "spec", "scheduler", "options", "budget",
        "seed", "trips", "simulate", "verify", "trace", "explain",
        "oracle", "analyze",
    }
)


class ProtocolError(Exception):
    """A request the server refuses; carries the wire error code."""

    def __init__(self, message: str, code: str = "bad-request",
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


@dataclass
class ScheduleRequest:
    """One parsed ``op: schedule`` request."""

    id: str
    scheduler: str
    loop: str
    options: Dict[str, Any] = field(default_factory=dict)
    budget: Optional[float] = None
    seed: int = 0
    trips: Tuple[int, ...] = ()
    simulate: bool = True
    verify: Optional[bool] = None
    explain: bool = False
    oracle: bool = False
    analyze: bool = True

    def to_cell(self, budget: Optional[float]) -> Cell:
        """The exec cell this request schedules (budget already clamped)."""
        return Cell.make(
            self.loop,
            self.scheduler,
            self.options,
            trips=self.trips,
            seed=self.seed,
            timeout=budget,
            simulate=self.simulate,
            verify=self.verify,
            explain=self.explain,
            oracle=self.oracle,
            analyze=self.analyze,
        )


def parse_line(line: str) -> Dict[str, Any]:
    """One NDJSON line into a payload dict, or ``ProtocolError``."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload


def parse_schedule_request(payload: Mapping[str, Any]) -> ScheduleRequest:
    """Validate an ``op: schedule`` payload into a :class:`ScheduleRequest`."""
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ProtocolError(f"unknown request fields: {', '.join(sorted(unknown))}")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request needs a non-empty string 'id'")
    scheduler = payload.get("scheduler")
    if scheduler not in SCHEDULERS:
        raise ProtocolError(
            f"unknown scheduler {scheduler!r} (expected one of {', '.join(SCHEDULERS)})"
        )
    loop_key = payload.get("loop")
    spec_token = payload.get("spec")
    if (loop_key is None) == (spec_token is None):
        raise ProtocolError("request needs exactly one of 'loop' or 'spec'")
    if spec_token is not None:
        if not isinstance(spec_token, str):
            raise ProtocolError("'spec' must be a LoopSpec token string")
        from ..workloads.mutate import spec_from_token

        try:
            spec_from_token(spec_token)
        except Exception as exc:
            raise ProtocolError(f"'spec' is not a valid LoopSpec token: {exc}") from None
        loop_key = f"fuzz:{spec_token}"
    if not isinstance(loop_key, str) or ":" not in loop_key:
        raise ProtocolError(
            f"'loop' must be a registry key like 'livermore:lk01_hydro', got {loop_key!r}"
        )
    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    budget = payload.get("budget")
    if budget is not None:
        if not isinstance(budget, (int, float)) or isinstance(budget, bool) or budget <= 0:
            raise ProtocolError("'budget' must be a positive number of seconds")
        budget = float(budget)
    trips = payload.get("trips", ())
    if not isinstance(trips, (list, tuple)) or not all(
        isinstance(t, int) and not isinstance(t, bool) and t > 0 for t in trips
    ):
        raise ProtocolError("'trips' must be a list of positive integers")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("'seed' must be an integer")
    flags = {}
    for name, default in (
        ("simulate", True), ("explain", False), ("oracle", False), ("analyze", True),
    ):
        value = payload.get(name, default)
        if not isinstance(value, bool):
            raise ProtocolError(f"'{name}' must be a boolean")
        flags[name] = value
    verify = payload.get("verify")
    if verify is not None and not isinstance(verify, bool):
        raise ProtocolError("'verify' must be a boolean or omitted")
    return ScheduleRequest(
        id=request_id,
        scheduler=scheduler,
        loop=loop_key,
        options=dict(options),
        budget=budget,
        seed=seed,
        trips=tuple(trips),
        verify=verify,
        **flags,
    )


# ----------------------------------------------------------------------
# Response construction / encoding
# ----------------------------------------------------------------------
def ok_response(
    request_id: str,
    result: Mapping[str, Any],
    cached: Any = False,
    deduped: bool = False,
    latency_ms: float = 0.0,
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": True,
        "result": dict(result),
        "cached": cached,
        "deduped": deduped,
        "latency_ms": latency_ms,
    }


def error_response(
    request_id: Optional[str],
    code: str,
    message: str,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"id": request_id, "ok": False, "error": error}


def encode(payload: Mapping[str, Any]) -> bytes:
    """One response (or request) as a single NDJSON line."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode()
