"""The daemon's persistent worker pool: warm processes, hard watchdog.

The per-invocation :class:`~repro.exec.runner.ExecEngine` builds a fresh
``ProcessPoolExecutor`` per run; a long-running service wants the
opposite: **long-lived workers** whose per-process memos stay warm across
requests — the loop registry memo, the B&B ``_IIPlan``/distance caches
and the attempt memoization from the raw-speed campaign all amortise
beautifully when the same worker schedules the corpus again and again.

Each worker owns a single-process executor, so the pool can kill and
respawn exactly one wedged worker without disturbing its siblings:

* the *first* line of deadline defence runs **inside** the worker
  (:func:`repro.exec.runner.execute_cell`'s portable deadline), producing
  the same ``timeout``/``fallback`` statuses the CLI path records;
* the pool-side **watchdog** is the backstop for solves wedged in C code
  beyond the in-worker deadline's reach: after ``budget + grace`` seconds
  the worker process is killed, a fresh one is spawned, and the cell is
  recorded as a hard timeout error.

``jobs=0`` selects thread workers instead: cells run in-process on
executor threads (exercising the off-main-thread deadline), which is the
fast path for tests and small selftests — no spawn cost, shared GIL.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional

from ..exec.cells import CellResult
from ..exec.runner import execute_cell

#: Seconds past the in-worker deadline before the watchdog kills a worker.
DEFAULT_GRACE = 10.0


def _hard_timeout_result(spec: Dict[str, Any], seconds: float) -> Dict[str, Any]:
    out = CellResult(
        loop=spec.get("loop", "?"),
        scheduler=spec.get("scheduler", "?"),
        options_json=spec.get("options_json", "{}"),
    )
    out.timeout = True
    out.error = (
        f"worker exceeded the hard deadline ({seconds:.1f}s incl. grace); "
        "killed and respawned by the pool watchdog"
    )
    out.wall_seconds = seconds
    return out.to_dict()


class _Worker:
    """One respawnable worker slot (process- or thread-backed)."""

    def __init__(self, index: int, threads: bool):
        self.index = index
        self.threads = threads
        self.cells = 0
        self.respawns = 0
        self._executor: Optional[Executor] = None

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            if self.threads:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"serve-worker-{self.index}"
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=1)
        return self._executor

    def submit(self, spec: Dict[str, Any]):
        self.cells += 1
        # Thread workers run in-process: harness hooks that kill the
        # worker (``_test_crash_once``) must not kill the daemon.
        return self.executor.submit(execute_cell, spec, not self.threads)

    def respawn(self) -> None:
        """Kill the backing process (if any) and start a clean executor.

        Thread workers cannot be killed — the in-worker deadline is their
        only enforcement — so respawn just drops the executor reference
        and lets the wedged thread die with its daemon flag.
        """
        self.respawns += 1
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if isinstance(executor, ProcessPoolExecutor):
            for proc in list(getattr(executor, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


class WorkerPool:
    """Fans cells out to persistent workers with a hard watchdog.

    Use from one asyncio event loop only.  ``run`` borrows an idle worker
    (waiting when all are busy — the service's bounded queue provides the
    actual back-pressure), executes the cell, and returns the result
    payload dict.  A worker that outlives ``hard_timeout`` or dies is
    respawned and the cell reported as an error result rather than an
    exception: the service always has *something* to stream back.
    """

    def __init__(self, jobs: int, grace: float = DEFAULT_GRACE):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.threads = jobs == 0
        self.size = max(1, jobs)
        self.grace = grace
        self.respawns = 0
        self._workers: List[_Worker] = [
            _Worker(i, threads=self.threads) for i in range(self.size)
        ]
        self._idle: "asyncio.Queue[_Worker]" = asyncio.Queue()
        for worker in self._workers:
            self._idle.put_nowait(worker)

    async def start(self) -> None:
        """Pre-spawn every worker (optional; first use also spawns)."""
        for worker in self._workers:
            worker.executor  # touch

    async def run(self, spec: Dict[str, Any],
                  hard_timeout: Optional[float] = None) -> Dict[str, Any]:
        worker = await self._idle.get()
        try:
            future = asyncio.wrap_future(worker.submit(spec))
            try:
                if hard_timeout is not None:
                    return await asyncio.wait_for(future, hard_timeout)
                return await future
            except asyncio.TimeoutError:
                worker.respawn()
                self.respawns += 1
                return _hard_timeout_result(spec, hard_timeout or 0.0)
            except (BrokenProcessPool, RuntimeError, OSError) as exc:
                worker.respawn()
                self.respawns += 1
                out = CellResult(
                    loop=spec.get("loop", "?"),
                    scheduler=spec.get("scheduler", "?"),
                    options_json=spec.get("options_json", "{}"),
                    error=f"worker died: {exc!r} (respawned)",
                )
                return out.to_dict()
        finally:
            self._idle.put_nowait(worker)

    def stats(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "mode": "thread" if self.threads else "process",
            "respawns": self.respawns,
            "cells": sum(w.cells for w in self._workers),
        }

    def shutdown(self) -> None:
        for worker in self._workers:
            worker.shutdown()
