"""Simulation: data layout, functional correctness, cycle-level performance."""

from .functional import ExecutionResult, run_pipelined, run_sequential
from .layout import DataLayout
from .perf import BankedMemory, SimReport, simulate_pipelined, simulate_sequential_body

__all__ = [
    "BankedMemory",
    "DataLayout",
    "ExecutionResult",
    "SimReport",
    "run_pipelined",
    "run_sequential",
    "simulate_pipelined",
    "simulate_sequential_body",
]
