"""Concrete data layout for simulating a loop's memory behaviour.

The compiler reasons about symbolic references; the simulators need real
addresses.  ``DataLayout`` assigns each base symbol a region big enough for
every reference over the simulated trip count, honouring any double-word
parity the loop declares known (``Loop.known_parity``) and giving the rest
deterministic pseudo-random parities — at run time every address *has* a
bank, whether or not the compiler could predict it.

Indirect references (``offset is None``) draw a deterministic per-operation
pseudo-random address stream inside their base's region, mirroring the
pointer chases of mdljdp2 (Section 4.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..ir.loop import Loop

_INDIRECT_REGION = 4096  # bytes reserved for each indirectly addressed base


def _stable_hash(*parts) -> int:
    text = ":".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


@dataclass
class DataLayout:
    """Concrete base addresses for one loop at one trip count."""

    loop: Loop
    trip_count: int
    seed: int = 0
    bases: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._regions: Dict[str, Tuple[int, int]] = {}  # base -> [lo, hi) addresses
        cursor = 0x1000_0000
        extents: Dict[str, Tuple[int, int]] = {}
        for op in self.loop.memory_ops():
            m = op.mem
            if not m.is_direct:
                lo, hi = extents.get(m.base, (0, _INDIRECT_REGION))
                extents[m.base] = (min(lo, 0), max(hi, _INDIRECT_REGION))
                continue
            first = m.offset
            last = m.offset + (self.trip_count - 1) * m.stride
            lo, hi = min(first, last), max(first, last) + m.width
            old = extents.get(m.base)
            if old is not None:
                lo, hi = min(lo, old[0]), max(hi, old[1])
            extents[m.base] = (lo, hi)
        for base in sorted(extents):
            lo, hi = extents[base]
            start = cursor - lo  # base address such that lowest ref >= cursor
            # Align the base itself to 16 bytes, then fix its parity.
            start = (start + 15) & ~15
            parity = self.loop.known_parity.get(base)
            if parity is None:
                parity = _stable_hash("parity", self.seed, base) % 2
            if ((start >> 3) & 1) != parity:
                start += 8
            self.bases[base] = start
            self._regions[base] = (start + lo, start + hi)
            cursor = start + hi + 64  # pad between regions

    # ------------------------------------------------------------------
    def address(self, op_index: int, iteration: int) -> int:
        """Concrete address of memory operation ``op_index`` at ``iteration``."""
        m = self.loop.ops[op_index].mem
        if m is None:
            raise ValueError(f"op {op_index} is not a memory operation")
        base_addr = self.bases[m.base]
        if m.is_direct:
            return m.address(base_addr, iteration)
        # Deterministic pseudo-random stream inside the base's region,
        # aligned to the access width.
        span = _INDIRECT_REGION - m.width
        raw = _stable_hash("indirect", self.seed, m.base, op_index, iteration) % span
        return base_addr + (raw // m.width) * m.width

    def bank(self, op_index: int, iteration: int) -> int:
        """Memory bank (0/1) hit by this reference at run time."""
        return (self.address(op_index, iteration) >> 3) & 1

    def live_in_value(self, name: str) -> float:
        """Deterministic initial value of a live-in virtual register.

        Unroll copies (``name~k``) share the base name's value, so an
        unrolled loop is a drop-in semantic replacement for its original.
        """
        base = name.split("~", 1)[0]
        return ((_stable_hash("livein", self.seed, base) % 2_000_001) - 1_000_000) / 1e4

    def initial_value(self, addr: int) -> float:
        """Deterministic initial memory contents.

        Addresses inside a spilled-invariant region (``__spill_<name>``,
        created when register pressure forces a loop invariant to be
        reloaded from memory) hold that invariant's live-in value.
        """
        for base, (lo, hi) in self._regions.items():
            if base.startswith("__spill_") and lo <= addr < hi:
                return self.live_in_value(base[len("__spill_") :])
        return ((_stable_hash("mem", self.seed, addr) % 2_000_001) - 1_000_000) / 1e4
