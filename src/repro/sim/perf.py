"""Cycle-level performance simulation with the R8000 banked memory system.

The dynamic effect that decides Figures 2, 4, 5 and 6 is the interaction
between dual-issued memory references and the two-banked streaming cache
(Section 2.9): two same-cycle references to the same bank push one into a
one-element queue (the "bellows"); when the queue is already full the
processor stalls, in the worst case every cycle — half speed.

Pipelined execution: operation instances issue at ``t(op) + n * II``; total
time is ``span + (trips - 1) * II`` plus memory stall cycles plus the
fill/drain/save-restore overhead from :mod:`repro.pipeline.overhead`.

Baseline (non-pipelined) execution: iterations run back to back, each
taking the list schedule's completion time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.sched import Schedule
from ..machine.descriptions import MachineDescription
from ..pipeline.overhead import OverheadReport
from .layout import DataLayout


@dataclass
class SimReport:
    """Outcome of a performance simulation."""

    cycles: int
    stall_cycles: int
    memory_refs: int
    trips: int
    overhead_cycles: int = 0

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles / max(self.trips, 1)


class BankedMemory:
    """The two banks + bellows queue, stepped one cycle at a time.

    Each bank services one reference per cycle.  Same-cycle arrivals beyond
    a bank's bandwidth spill into a single shared overflow queue of depth
    ``bellows_depth``; arrivals that find the queue full stall the
    processor until the queue drains enough to accept them.

    ``step`` returns the number of stall cycles the cycle's arrivals cost.
    """

    def __init__(self, banks: int = 2, bellows_depth: int = 1):
        self.banks = banks
        self.depth = bellows_depth
        self._queued: List[int] = []  # bank ids of queued references

    def step(self, arrivals: List[int]) -> int:
        # Queued references from earlier cycles get first claim on banks.
        free = set(range(self.banks))
        still_queued: List[int] = []
        for bank in self._queued:
            if bank in free:
                free.discard(bank)
            else:
                still_queued.append(bank)
        overflow: List[int] = []
        for bank in arrivals:
            if bank % self.banks in free:
                free.discard(bank % self.banks)
            else:
                overflow.append(bank % self.banks)
        stalls = 0
        for bank in overflow:
            while len(still_queued) >= self.depth:
                # Processor stalls one cycle; banks service the queue.
                stalls += 1
                drained = set(range(self.banks))
                remaining: List[int] = []
                for queued_bank in still_queued:
                    if queued_bank in drained:
                        drained.discard(queued_bank)
                    else:
                        remaining.append(queued_bank)
                still_queued = remaining
            still_queued.append(bank)
        self._queued = still_queued
        return stalls


def _memory_issue_slots(schedule: Schedule) -> Dict[int, List[int]]:
    """Map modulo slot -> memory operation indices issued there."""
    slots: Dict[int, List[int]] = {}
    for op in schedule.loop.memory_ops():
        slots.setdefault(schedule.slot(op.index), []).append(op.index)
    return slots


def simulate_pipelined(
    schedule: Schedule,
    layout: DataLayout,
    machine: MachineDescription,
    trips: Optional[int] = None,
    overhead: Optional[OverheadReport] = None,
) -> SimReport:
    """Simulate the pipelined loop for ``trips`` iterations."""
    loop = schedule.loop
    ii = schedule.ii
    if trips is None:
        trips = loop.trip_count
    n_refs = len(loop.memory_ops()) * trips
    stalls = 0
    if machine.has_banked_memory and loop.memory_ops():
        memory = BankedMemory(machine.memory_banks, machine.bellows_depth)
        # Instance (op, n) issues at t(op) + n*II; walk issue cycles in order.
        events: Dict[int, List[int]] = {}
        for op in loop.memory_ops():
            t0 = schedule.time(op.index)
            for n in range(trips):
                events.setdefault(t0 + n * ii, []).append(layout.bank(op.index, n))
        last = max(events) if events else 0
        for cycle in range(0, last + 1):
            stalls += memory.step(events.get(cycle, []))
    span = schedule.span
    base_cycles = span + (trips - 1) * ii
    extra = overhead.total if overhead is not None else 0
    return SimReport(
        cycles=base_cycles + stalls + extra,
        stall_cycles=stalls,
        memory_refs=n_refs,
        trips=trips,
        overhead_cycles=extra,
    )


def simulate_sequential_body(
    schedule: Schedule,
    layout: DataLayout,
    machine: MachineDescription,
    trips: Optional[int] = None,
) -> SimReport:
    """Simulate a non-pipelined loop: iterations execute back to back.

    ``schedule`` here is a single-iteration (list) schedule; each
    iteration occupies ``completion`` cycles — the last issue plus its
    latency — before the next one starts (plus one cycle of loop-control
    overhead per iteration).
    """
    loop = schedule.loop
    if trips is None:
        trips = loop.trip_count
    # One iteration occupies its issue length plus a cycle of loop control;
    # an in-order machine additionally stalls the next iteration until any
    # loop-carried producer has completed.
    issue_len = 2 + max(schedule.time(op.index) for op in loop.ops)
    carried_stall = 0
    for arc in loop.ddg.arcs:
        if arc.omega <= 0:
            continue
        need = schedule.time(arc.src) + arc.latency - schedule.time(arc.dst)
        carried_stall = max(carried_stall, math.ceil(need / arc.omega))
    completion = max(issue_len, carried_stall)
    stalls = 0
    if machine.has_banked_memory and loop.memory_ops():
        memory = BankedMemory(machine.memory_banks, machine.bellows_depth)
        mem_ops = loop.memory_ops()
        for n in range(trips):
            base = n * completion
            events: Dict[int, List[int]] = {}
            for op in mem_ops:
                events.setdefault(base + schedule.time(op.index), []).append(
                    layout.bank(op.index, n)
                )
            for cycle in sorted(events):
                stalls += memory.step(events[cycle])
    cycles = trips * completion + stalls
    return SimReport(
        cycles=cycles,
        stall_cycles=stalls,
        memory_refs=len(loop.memory_ops()) * trips,
        trips=trips,
    )
