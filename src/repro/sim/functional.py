"""Functional simulation: does the pipelined, register-allocated code
compute the same thing as the sequential loop?

Two executions are compared:

* :func:`run_sequential` — the reference semantics: iterations one at a
  time, operations in program order, values kept per (register, iteration).
* :func:`run_pipelined` — the software-pipelined code as it would execute:
  every operation instance ``(op, iteration)`` issues at its scheduled
  cycle ``t(op) + iteration * II``, reads and writes the *physical*
  registers chosen by modulo renaming + colouring, with all of a cycle's
  reads happening before its writes.

If modulo renaming picked too small an unroll factor, or colouring shared
a register between overlapping ranges, the pipelined run clobbers a live
value and the results diverge — this is the end-to-end correctness oracle
for the whole code-generation pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.sched import Schedule
from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..regalloc.coloring import AllocationResult
from .layout import DataLayout


@dataclass
class ExecutionResult:
    """Observable outcome of running a loop to completion."""

    memory: Dict[int, float]  # addresses written -> final values
    live_out: Dict[str, float]

    def matches(self, other: "ExecutionResult") -> bool:
        return self.memory == other.memory and self.live_out == other.live_out


def _live_in_value(layout: DataLayout, name: str) -> float:
    return layout.live_in_value(name)


def _evaluate(opcode: str, srcs: List[float]) -> float:
    """Evaluate one operation; total functions only, so both executions
    perform bit-identical arithmetic."""
    if opcode in ("fadd", "iadd"):
        return srcs[0] + srcs[1]
    if opcode == "fsub":
        return srcs[0] - srcs[1]
    if opcode in ("fmul", "imul"):
        return srcs[0] * srcs[1]
    if opcode == "fmadd":
        return srcs[0] * srcs[1] + srcs[2]
    if opcode == "fdiv":
        d = srcs[1] if abs(srcs[1]) > 1e-9 else 1.0
        return srcs[0] / d
    if opcode == "fsqrt":
        return math.sqrt(abs(srcs[0]))
    if opcode == "fcmp":
        return 1.0 if srcs[0] < srcs[1] else 0.0
    if opcode == "fmov":
        return srcs[1] if srcs[0] != 0.0 else srcs[2]
    raise ValueError(f"no semantics for opcode {opcode!r}")


def _use_omegas(loop: Loop) -> Dict[int, List[int]]:
    """Per-operation iteration distances, positionally aligned with srcs.

    Values not defined in the loop are invariants (omega irrelevant,
    encoded 0).  When an operation reads the same value at two different
    distances, the distances are assigned to its source positions in
    ascending order.
    """
    defs = loop.defs_of()
    arcs_by_use: Dict[Tuple[int, str], List[int]] = {}
    for arc in loop.ddg.arcs:
        if arc.kind is DepKind.FLOW and arc.value:
            arcs_by_use.setdefault((arc.dst, arc.value), []).append(arc.omega)
    for omegas in arcs_by_use.values():
        omegas.sort()
    result: Dict[int, List[int]] = {}
    for op in loop.ops:
        taken: Dict[str, int] = {}
        row: List[int] = []
        for src in op.srcs:
            if src not in defs:
                row.append(0)
                continue
            omegas = arcs_by_use.get((op.index, src), [0])
            k = taken.get(src, 0)
            row.append(omegas[min(k, len(omegas) - 1)])
            taken[src] = k + 1
        result[op.index] = row
    return result


def run_sequential(loop: Loop, layout: DataLayout, trips: int) -> ExecutionResult:
    """Reference execution: iteration at a time, program order."""
    defs = loop.defs_of()
    omegas = _use_omegas(loop)
    invariants = {name: _live_in_value(layout, name) for name in loop.live_in}
    memory: Dict[int, float] = {}
    written: Dict[int, float] = {}
    history: Dict[Tuple[str, int], float] = {}

    def read_mem(addr: int) -> float:
        if addr in memory:
            return memory[addr]
        return layout.initial_value(addr)

    for n in range(trips):
        for op in loop.ops:
            vals: List[float] = []
            for pos, src in enumerate(op.srcs):
                if src not in defs:
                    vals.append(invariants[src])
                    continue
                m = n - omegas[op.index][pos]
                if m < 0:
                    vals.append(invariants.get(src, 0.0))
                else:
                    vals.append(history[(src, m)])
            if op.opclass.name == "LOAD":
                result = read_mem(layout.address(op.index, n))
            elif op.opclass.name == "STORE":
                addr = layout.address(op.index, n)
                memory[addr] = vals[0]
                written[addr] = vals[0]
                continue
            else:
                result = _evaluate(op.opcode, vals)
            history[(op.dest, n)] = result
    live_out = {
        name: history[(name, trips - 1)] for name in loop.live_out if (name, trips - 1) in history
    }
    return ExecutionResult(memory=written, live_out=live_out)


def run_pipelined(
    schedule: Schedule,
    allocation: AllocationResult,
    layout: DataLayout,
    trips: int,
) -> ExecutionResult:
    """Execute the software-pipelined code on physical registers.

    Instances issue at ``t(op) + n * II``; each cycle performs all reads,
    then all writes (register files and memory behave like hardware with
    write-back at end of cycle).
    """
    loop = schedule.loop
    ii = schedule.ii
    kmin = allocation.kmin
    defs = loop.defs_of()
    omegas = _use_omegas(loop)
    invariants = {name: _live_in_value(layout, name) for name in loop.live_in}

    colors: Dict[str, Tuple[str, int]] = {}
    for name, color in allocation.fp_assignment.items():
        colors[name] = ("fp", color)
    for name, color in allocation.int_assignment.items():
        colors[name] = ("int", color)

    regfile: Dict[Tuple[str, int], float] = {}
    for name in loop.live_in:
        if name in defs:
            continue
        key = colors.get(f"{name}@in")
        if key is not None:
            regfile[key] = invariants[name]

    memory: Dict[int, float] = {}
    written: Dict[int, float] = {}
    last_def_value: Dict[str, float] = {}

    def read_mem(addr: int) -> float:
        return memory.get(addr, layout.initial_value(addr))

    # Group instances by issue cycle.
    by_cycle: Dict[int, List[Tuple[int, int]]] = {}
    for op in loop.ops:
        t0 = schedule.time(op.index)
        for n in range(trips):
            by_cycle.setdefault(t0 + n * ii, []).append((op.index, n))

    for cycle in sorted(by_cycle):
        reads: List[Tuple[int, int, List[float]]] = []
        for op_index, n in sorted(by_cycle[cycle]):
            op = loop.ops[op_index]
            vals: List[float] = []
            for pos, src in enumerate(op.srcs):
                if src not in defs:
                    vals.append(regfile[colors[f"{src}@in"]])
                    continue
                m = n - omegas[op_index][pos]
                if m < 0:
                    vals.append(invariants.get(src, 0.0))
                else:
                    vals.append(regfile[colors[f"{src}@{m % kmin}"]])
            if op.opclass.name == "LOAD":
                vals = [read_mem(layout.address(op_index, n))]
            reads.append((op_index, n, vals))
        for op_index, n, vals in reads:
            op = loop.ops[op_index]
            if op.opclass.name == "STORE":
                addr = layout.address(op_index, n)
                memory[addr] = vals[0]
                written[addr] = vals[0]
                continue
            result = vals[0] if op.opclass.name == "LOAD" else _evaluate(op.opcode, vals)
            regfile[colors[f"{op.dest}@{n % kmin}"]] = result
            if n == trips - 1:
                last_def_value[op.dest] = result
    live_out = {name: last_def_value[name] for name in loop.live_out if name in last_def_value}
    return ExecutionResult(memory=written, live_out=live_out)
