"""repro — reproduction of "Software Pipelining Showdown: Optimal vs.
Heuristic Methods in a Production Compiler" (PLDI 1996).

Two software pipeliners with identical goals:

* :func:`pipeline_loop` — the SGI MIPSpro-style heuristic pipeliner
  (branch-and-bound modulo scheduling, four priority-list heuristics,
  two-phase binary II search, spilling, memory-bank pairing);
* :func:`most_pipeline_loop` — the McGill MOST-style optimal pipeliner
  (time-indexed integer linear programming with buffer minimisation,
  time limits, and a heuristic fallback).

Plus everything both need: a loop IR with a builder DSL, an R8000 machine
model with its two-banked streaming cache, modulo renaming and
Chaitin-Briggs register allocation, code emission, functional and
cycle-level simulators, the Livermore/SPEC92-like workload corpora, and
the experiment harness reproducing every table and figure in the paper.

Quick start::

    from repro import LoopBuilder, pipeline_loop, most_pipeline_loop

    b = LoopBuilder("sdot", trip_count=1000)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=4, width=4)
    y = b.load("y", offset=0, stride=4, width=4)
    s.close(b.fadd(b.fmul(x, y), s.use()))
    b.live_out_value(s)
    loop = b.build()

    heuristic = pipeline_loop(loop)
    optimal = most_pipeline_loop(loop)
    print(heuristic.ii, optimal.ii)
"""

from .baseline import list_schedule
from .core import (
    BnBConfig,
    PipelineResult,
    PipelinerOptions,
    Schedule,
    max_ii,
    min_ii,
    pipeline_loop,
    rec_mii,
    res_mii,
)
from .ir import (
    DDG,
    Dependence,
    DepKind,
    Loop,
    LoopBuilder,
    MemRef,
    OpClass,
    Operation,
    interleave_reduction,
    promote_inter_iteration_loads,
    unroll,
)
from .machine import MachineDescription, r8000, single_issue, two_wide
from .most import MostOptions, MostResult, most_pipeline_loop
from .pipeline import emit_pipelined_code, pipeline_overhead
from .rau import RauOptions, RauResult, rau_pipeline_loop
from .regalloc import allocate_schedule, rename_kernel
from .sim import DataLayout, run_pipelined, run_sequential, simulate_pipelined
from .workloads import livermore_kernel, livermore_kernels, random_loop, spec92_benchmark, spec92_suite

__version__ = "1.0.0"

__all__ = [
    "BnBConfig",
    "DDG",
    "DataLayout",
    "Dependence",
    "DepKind",
    "Loop",
    "LoopBuilder",
    "MachineDescription",
    "MemRef",
    "MostOptions",
    "MostResult",
    "OpClass",
    "Operation",
    "PipelineResult",
    "PipelinerOptions",
    "Schedule",
    "allocate_schedule",
    "emit_pipelined_code",
    "list_schedule",
    "livermore_kernel",
    "livermore_kernels",
    "max_ii",
    "min_ii",
    "most_pipeline_loop",
    "pipeline_loop",
    "pipeline_overhead",
    "r8000",
    "random_loop",
    "rau_pipeline_loop",
    "RauOptions",
    "RauResult",
    "rec_mii",
    "rename_kernel",
    "res_mii",
    "run_pipelined",
    "run_sequential",
    "simulate_pipelined",
    "single_issue",
    "interleave_reduction",
    "promote_inter_iteration_loads",
    "unroll",
    "spec92_benchmark",
    "spec92_suite",
    "two_wide",
]
