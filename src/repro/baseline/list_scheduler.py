"""Non-pipelined baseline: a simple list scheduler for one iteration.

"When software pipelining is disabled a fairly simple list scheduler is
used" (Section 4.1).  This is the Figure 2 baseline: it respects
intra-iteration dependences and machine resources but never overlaps
iterations, so long-latency chains are exposed in every iteration.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.sched import Schedule
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..machine.resources import ModuloReservationTable


def list_schedule(loop: Loop, machine: MachineDescription) -> Schedule:
    """Greedy height-priority list schedule of a single iteration."""
    heights = loop.ddg.height_map()
    times: Dict[int, int] = {}
    remaining = set(range(loop.n_ops))

    # Earliest start induced by scheduled intra-iteration predecessors.
    def ready_time(op: int) -> Optional[int]:
        start = 0
        for arc in loop.ddg.preds(op):
            if arc.omega > 0 or arc.src == op:
                continue  # carried arcs are satisfied by iteration sequencing
            if arc.src not in times:
                return None
            start = max(start, times[arc.src] + arc.latency)
        return start

    # A generous horizon: worst case fully serial.
    horizon = sum(max(machine.latency(op.opclass), 1) for op in loop.ops) + loop.n_ops
    usage = ModuloReservationTable(horizon, machine.availability)

    cycle = 0
    while remaining:
        ready = sorted(
            (op for op in remaining if (rt := ready_time(op)) is not None and rt <= cycle),
            key=lambda op: (-heights[op], op),
        )
        placed_any = False
        for op in ready:
            table = machine.table(loop.ops[op].opclass)
            if usage.fits(table, cycle):
                usage.place(table, cycle)
                times[op] = cycle
                remaining.discard(op)
                placed_any = True
        cycle += 1
        if cycle > horizon:
            raise RuntimeError(f"list scheduler failed to converge on {loop.name!r}")

    completion = 1 + max(
        times[op.index] + machine.latency(op.opclass) for op in loop.ops
    )
    return Schedule(
        loop=loop, machine=machine, ii=completion, times=times, producer="baseline/list"
    )


def body_latency(schedule: Schedule, machine: MachineDescription) -> int:
    """Cycles one iteration occupies when run back to back (incl. branch)."""
    loop = schedule.loop
    return 1 + max(schedule.time(op.index) + machine.latency(op.opclass) for op in loop.ops)
