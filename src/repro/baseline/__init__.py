"""Non-pipelined baseline code generation."""

from .list_scheduler import body_latency, list_schedule

__all__ = ["body_latency", "list_schedule"]
