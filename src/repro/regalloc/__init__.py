"""Modulo renaming and Chaitin-Briggs register allocation."""

from .coloring import (
    AllocationResult,
    ColoringResult,
    InterferenceGraph,
    allocate,
    allocate_schedule,
    color_graph,
)
from .rename import LiveRange, RenamedKernel, rename_kernel, value_reg_class

__all__ = [
    "AllocationResult",
    "ColoringResult",
    "InterferenceGraph",
    "LiveRange",
    "RenamedKernel",
    "allocate",
    "allocate_schedule",
    "color_graph",
    "rename_kernel",
    "value_reg_class",
]
