"""Modulo renaming (modulo variable expansion) and live-range construction.

The R8000 has no rotating register files, so the MIPSpro pipeliner borrows
Lam's *modulo renaming* (Section 2.6): if a value's lifetime exceeds II,
successive iterations' instances would clobber each other in a single
register, so the kernel is replicated ``kmin = max_v ceil(lifetime_v / II)``
times and each value gets one register per replica.

Live ranges are cyclic intervals on the unrolled kernel of ``U = kmin * II``
cycles; two ranges of the same register class interfere when their cyclic
intervals overlap.  Loop invariants are live for the whole kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..ir.operations import OpClass, RegClass, result_reg_class
from ..core.sched import Schedule


@dataclass
class LiveRange:
    """One cyclic live interval on the unrolled kernel."""

    name: str  # renamed register, e.g. "v7@2"
    value: str  # the original virtual register
    reg_class: RegClass
    start: int  # cycle in [0, U)
    length: int  # cycles; U for invariants
    refs: int  # definition + uses, for the spill ratio of Section 2.8
    span: int  # the value's un-renamed lifetime in cycles
    is_invariant: bool = False
    carried: bool = False  # has a loop-carried use (not spillable simply)

    @property
    def spill_ratio(self) -> float:
        """Cycles spanned per reference: the spill priority of Section 2.8."""
        return self.span / max(self.refs, 1)

    def overlaps(self, other: "LiveRange", period: int) -> bool:
        """Cyclic interval overlap on a kernel of ``period`` cycles."""
        if self.length >= period or other.length >= period:
            return True
        return ((other.start - self.start) % period) < self.length or (
            (self.start - other.start) % period
        ) < other.length


@dataclass
class RenamedKernel:
    """The result of modulo renaming a schedule."""

    schedule: Schedule
    kmin: int  # kernel replication (unroll) factor
    ranges: List[LiveRange]
    lifetimes: Dict[str, int]  # original value -> lifetime in cycles

    @property
    def period(self) -> int:
        return self.kmin * self.schedule.ii


def value_reg_class(loop: Loop, value: str) -> RegClass:
    """Register class of a virtual register.

    Values defined in the loop take the class of their defining operation's
    result; live-in values are integer only if used exclusively by integer
    operations (address arithmetic), floating-point otherwise.
    """
    for op in loop.ops:
        if value in op.dests:
            return result_reg_class(op.opclass)
    int_classes = (OpClass.IALU, OpClass.IMUL, OpClass.BRANCH)
    users = [op for op in loop.ops if value in op.srcs]
    if users and all(op.opclass in int_classes for op in users):
        return RegClass.INT
    return RegClass.FP


def rename_kernel(schedule: Schedule) -> RenamedKernel:
    """Compute the unroll factor and all cyclic live ranges for a schedule."""
    loop = schedule.loop
    ii = schedule.ii

    lifetimes: Dict[str, int] = {}
    refs: Dict[str, int] = {}
    carried: Dict[str, bool] = {}
    defs = loop.defs_of()
    for value, d in defs.items():
        end: Optional[int] = None
        count = 1
        has_carried = False
        for arc in loop.ddg.arcs:
            if arc.kind is not DepKind.FLOW or arc.value != value or arc.src != d:
                continue
            use_time = schedule.time(arc.dst) + ii * arc.omega
            end = use_time if end is None else max(end, use_time)
            count += 1
            if arc.omega > 0:
                has_carried = True
        start = schedule.time(d)
        if end is None:
            end = start + 1  # dead in the kernel (result only needed at exit)
        lifetimes[value] = max(end - start, 1)
        refs[value] = count
        carried[value] = has_carried

    kmin = 1
    for value, life in lifetimes.items():
        kmin = max(kmin, math.ceil(life / ii))
    period = kmin * ii

    ranges: List[LiveRange] = []
    for value, d in defs.items():
        life = lifetimes[value]
        cls = value_reg_class(loop, value)
        for r in range(kmin):
            ranges.append(
                LiveRange(
                    name=f"{value}@{r}",
                    value=value,
                    reg_class=cls,
                    start=(schedule.time(d) + r * ii) % period,
                    length=life,
                    refs=refs[value],
                    span=life,
                    carried=carried[value],
                )
            )
    for value in sorted(loop.live_in):
        if value in defs:
            continue  # recurrences: the in-loop definition owns the register
        used = sum(1 for op in loop.ops if value in op.srcs)
        if not used:
            continue
        ranges.append(
            LiveRange(
                name=f"{value}@in",
                value=value,
                reg_class=value_reg_class(loop, value),
                start=0,
                length=period,
                refs=used,
                span=period,
                is_invariant=True,
            )
        )
    return RenamedKernel(schedule=schedule, kmin=kmin, ranges=ranges, lifetimes=lifetimes)
