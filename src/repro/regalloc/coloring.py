"""Chaitin-Briggs graph colouring over cyclic live ranges (Section 2.6).

The modulo-renamed live ranges feed "a standard global register allocator
that uses the Chaitin-Briggs algorithm with minor modifications"
[BrCoKeTo89, Briggs92]: build the interference graph, *simplify* by
repeatedly removing nodes of insignificant degree, push potential spills
optimistically, then *select* colours in reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..ir.operations import RegClass
from ..obs import get_recorder
from .rename import LiveRange, RenamedKernel


@dataclass
class InterferenceGraph:
    """Interference graph over one register class's live ranges."""

    nodes: List[LiveRange]
    adjacency: Dict[str, Set[str]]

    @classmethod
    def build(cls, ranges: Sequence[LiveRange], period: int) -> "InterferenceGraph":
        nodes = list(ranges)
        adjacency: Dict[str, Set[str]] = {r.name: set() for r in nodes}
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if a.overlaps(b, period):
                    adjacency[a.name].add(b.name)
                    adjacency[b.name].add(a.name)
        return cls(nodes=nodes, adjacency=adjacency)

    def degree(self, name: str) -> int:
        return len(self.adjacency[name])


@dataclass
class ColoringResult:
    assignment: Dict[str, int]  # live-range name -> colour
    uncolored: List[LiveRange]

    @property
    def success(self) -> bool:
        return not self.uncolored

    @property
    def colors_used(self) -> int:
        return len(set(self.assignment.values())) if self.assignment else 0


def color_graph(graph: InterferenceGraph, k: int) -> ColoringResult:
    """Colour with at most ``k`` colours; optimistic (Briggs) spilling."""
    by_name = {r.name: r for r in graph.nodes}
    remaining: Set[str] = set(by_name)
    degree = {name: len(graph.adjacency[name] & remaining) for name in remaining}
    stack: List[str] = []
    simplify_steps = 0
    optimistic_pushes = 0

    while remaining:
        # Simplify: any node with degree < k is trivially colourable.
        trivial = [n for n in remaining if degree[n] < k]
        if trivial:
            # Deterministic order; removing low-degree nodes first.
            node = min(trivial, key=lambda n: (degree[n], n))
            simplify_steps += 1
        else:
            # Potential spill: push the worst cost/benefit node optimistically.
            node = max(remaining, key=lambda n: (by_name[n].spill_ratio, degree[n], n))
            optimistic_pushes += 1
        remaining.discard(node)
        stack.append(node)
        for neigh in graph.adjacency[node]:
            if neigh in remaining:
                degree[neigh] -= 1

    assignment: Dict[str, int] = {}
    uncolored: List[LiveRange] = []
    for node in reversed(stack):
        taken = {
            assignment[neigh]
            for neigh in graph.adjacency[node]
            if neigh in assignment
        }
        color = next((c for c in range(k) if c not in taken), None)
        if color is None:
            uncolored.append(by_name[node])
        else:
            assignment[node] = color
    rec = get_recorder()
    if rec.enabled:
        rec.counter("regalloc.colorings")
        rec.counter("regalloc.simplify_steps", simplify_steps)
        rec.counter("regalloc.optimistic_pushes", optimistic_pushes)
        rec.counter("regalloc.uncolored", len(uncolored))
    return ColoringResult(assignment=assignment, uncolored=uncolored)


@dataclass
class AllocationResult:
    """Outcome of register allocation for a modulo schedule."""

    success: bool
    kmin: int
    fp_assignment: Dict[str, int]
    int_assignment: Dict[str, int]
    fp_used: int
    int_used: int
    uncolored: List[LiveRange] = field(default_factory=list)
    renamed: Optional[RenamedKernel] = None

    @property
    def registers_used(self) -> int:
        """Total registers, the static measure of Figure 7."""
        return self.fp_used + self.int_used


def allocate(renamed: RenamedKernel, fp_regs: int, int_regs: int) -> AllocationResult:
    """Allocate registers for a renamed kernel; both classes must fit."""
    period = renamed.period
    results: Dict[RegClass, ColoringResult] = {}
    for reg_class, k in ((RegClass.FP, fp_regs), (RegClass.INT, int_regs)):
        ranges = [r for r in renamed.ranges if r.reg_class is reg_class]
        graph = InterferenceGraph.build(ranges, period)
        results[reg_class] = color_graph(graph, k)
    fp_result = results[RegClass.FP]
    int_result = results[RegClass.INT]
    uncolored = fp_result.uncolored + int_result.uncolored
    return AllocationResult(
        success=not uncolored,
        kmin=renamed.kmin,
        fp_assignment=fp_result.assignment,
        int_assignment=int_result.assignment,
        fp_used=fp_result.colors_used,
        int_used=int_result.colors_used,
        uncolored=uncolored,
        renamed=renamed,
    )


def allocate_schedule(schedule, machine) -> AllocationResult:
    """Convenience wrapper: rename then allocate against a machine's files."""
    from .rename import rename_kernel

    with get_recorder().span(
        "regalloc.allocate", loop=schedule.loop.name, ii=schedule.ii
    ):
        renamed = rename_kernel(schedule)
        return allocate(renamed, machine.fp_regs, machine.int_regs)
