"""Pre-scheduling static analysis: certified II lower bounds.

``repro.analyze`` sharpens the paper's ``MinII = max(ResMII, RecMII)``
yardstick with refined lower bounds — combined recurrence x resource
arguments, register-pressure counting, bank-pairing feasibility — each
shipping a machine-checkable certificate that the independent checker in
:mod:`repro.verify.boundcheck` validates without importing anything from
this package.  See :mod:`repro.analyze.bounds` for the certificate
catalogue and ``python -m repro analyze`` for the corpus report.
"""

from .bounds import (
    Certificate,
    LoopBounds,
    compute_bounds,
    pairing_certificate,
    prove_alloc_infeasible,
    prove_ii_infeasible,
    recurrence_certificate,
    resource_certificate,
    schedulable_bound,
)

__all__ = [
    "Certificate",
    "LoopBounds",
    "compute_bounds",
    "pairing_certificate",
    "prove_alloc_infeasible",
    "prove_ii_infeasible",
    "recurrence_certificate",
    "resource_certificate",
    "schedulable_bound",
]
